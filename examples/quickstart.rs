//! Quickstart: open a database on a simulated 3D XPoint SSD, write, read,
//! scan, crash-recover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use xlsm_suite::device::{profiles, Device, SimDevice};
use xlsm_suite::engine::{Db, DbOptions, WriteBatch};
use xlsm_suite::simfs::{FsOptions, SimFs};

fn main() {
    // Everything runs under the deterministic virtual clock.
    xlsm_suite::sim::Runtime::new().run(|| {
        // 1. Build the stack: device → filesystem → database.
        let device = SimDevice::shared(profiles::optane_900p());
        let fs = SimFs::new(Arc::clone(&device) as _, FsOptions::default());
        let db = Db::open(Arc::clone(&fs), DbOptions::default()).expect("open");

        // 2. Point writes and reads.
        db.put(b"meaning", b"42").expect("put");
        assert_eq!(db.get(b"meaning").expect("get"), Some(b"42".to_vec()));

        // 3. Atomic batches.
        let mut batch = WriteBatch::new();
        batch.put(b"user:1001", b"alice");
        batch.put(b"user:1002", b"bob");
        batch.delete(b"meaning");
        db.write(batch).expect("batch");

        // 4. Snapshots isolate readers from later writes.
        let snap = db.snapshot();
        db.put(b"user:1001", b"ALICE v2").expect("put");
        assert_eq!(
            db.get_at(b"user:1001", snap.sequence()).expect("get_at"),
            Some(b"alice".to_vec())
        );
        assert_eq!(
            db.get(b"user:1001").expect("get"),
            Some(b"ALICE v2".to_vec())
        );
        drop(snap);

        // 5. Ordered scans across memtable and SSTs.
        for i in 0..1000u32 {
            db.put(format!("key{i:04}").as_bytes(), b"v").expect("put");
        }
        db.flush().expect("flush");
        let mut scan = db.scan().expect("scan");
        let mut n = 0;
        let mut ok = scan.seek(b"key0500").expect("seek");
        while ok && scan.key() < &b"key0510"[..] {
            n += 1;
            ok = scan.next().expect("next");
        }
        assert_eq!(n, 10);
        drop(scan);

        // 6. Close, reopen: the WAL recovers unflushed writes.
        db.put(b"durable", b"survives-reopen").expect("put");
        db.close();
        let db2 = Db::open(Arc::clone(&fs), DbOptions::default()).expect("reopen");
        assert_eq!(
            db2.get(b"durable").expect("get"),
            Some(b"survives-reopen".to_vec())
        );

        println!("quickstart OK:");
        println!(
            "  virtual time elapsed : {:.3} ms",
            xlsm_suite::sim::now_nanos() as f64 / 1e6
        );
        println!("  LSM shape            : {:?}", db2.shape().files_per_level);
        println!(
            "  device served        : {} reads, {} writes",
            device.stats().reads,
            device.stats().writes
        );
        db2.close();
    });
}
