//! Device-level tour: watch the flash FTL's garbage collection develop as a
//! drive fills, and contrast it with the 3D XPoint SSD that has none.
//!
//! This exercises the `xlsm-device` public API directly — the layer the
//! paper's Fig. 1 raw experiment runs on.
//!
//! ```text
//! cargo run --release --example ftl_wear
//! ```

use std::time::Duration;
use xlsm_suite::device::{profiles, Device, SimDevice};
use xlsm_suite::sim::rng::Xoshiro256;
use xlsm_suite::sim::Runtime;

fn main() {
    Runtime::new().run(|| {
        // A deliberately small flash device so GC dynamics show quickly.
        let profile = profiles::intel_530_sata().with_capacity_bytes(32 << 20);
        let pages = profile.capacity_pages;
        let flash = SimDevice::new(profile);
        let mut rng = Xoshiro256::new(2024);

        println!("phase 1: sequential fill (no GC expected)");
        let t0 = xlsm_suite::sim::now_nanos();
        for lpn in 0..pages {
            flash.write(lpn, 1);
        }
        let fill = flash.stats();
        println!(
            "  wrote {} pages in {:?}; write amp {:.2}, erases {}",
            fill.pages_written,
            Duration::from_nanos(xlsm_suite::sim::now_nanos() - t0),
            fill.write_amp,
            fill.erases
        );

        println!("phase 2: random overwrites at full utilization (GC territory)");
        let t1 = xlsm_suite::sim::now_nanos();
        for _ in 0..pages * 2 {
            flash.write(rng.next_below(pages), 1);
        }
        let after = flash.stats();
        println!(
            "  wrote {} more pages in {:?}; write amp {:.2}, GC moved {} pages, erases {}",
            after.pages_written - fill.pages_written,
            Duration::from_nanos(xlsm_suite::sim::now_nanos() - t1),
            after.write_amp,
            after.gc_moved_pages,
            after.erases
        );
        println!(
            "  sustained write latency grew to {} us mean (stalls: {} ms total)",
            after.mean_write_ns() / 1_000,
            after.write_stall_ns / 1_000_000
        );

        println!("phase 3: TRIM half the space, overwrite again (GC relief)");
        flash.trim(0, pages / 2);
        let moved_before = flash.stats().gc_moved_pages;
        for _ in 0..pages / 2 {
            flash.write(rng.next_below(pages / 2), 1);
        }
        let relief = flash.stats();
        println!(
            "  GC moved only {} pages this phase (write amp now {:.2})",
            relief.gc_moved_pages - moved_before,
            relief.write_amp
        );

        println!("phase 4: the same abuse on 3D XPoint — no FTL, no GC");
        let xpoint = SimDevice::new(profiles::optane_900p().with_capacity_bytes(32 << 20));
        let t2 = xlsm_suite::sim::now_nanos();
        for _ in 0..10_000 {
            xpoint.write(rng.next_below(8192), 1);
        }
        let xp = xpoint.stats();
        println!(
            "  10k random overwrites in {:?}; write amp {:.2}, erases {}, mean write {} us",
            Duration::from_nanos(xlsm_suite::sim::now_nanos() - t2),
            xp.write_amp,
            xp.erases,
            xp.mean_write_ns() / 1_000
        );
    });
}
