//! Storage-evolution comparison: the same mixed key-value workload on the
//! three SSD generations of the ISPASS'20 paper, plus the analytic
//! throttling model of Section IV-A.
//!
//! ```text
//! cargo run --release --example storage_comparison
//! ```

use std::time::Duration;
use xlsm_suite::device::profiles;
use xlsm_suite::engine::DbOptions;
use xlsm_suite::sim::Runtime;
use xlsm_suite::study::experiment::Testbed;
use xlsm_suite::study::model;
use xlsm_suite::workload::{fill_db, run_workload, KeyDistribution, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        key_count: 16 << 10,
        value_size: 1024,
        write_fraction: 0.5,
        threads: 4,
        duration: Duration::from_secs(1),
        seed: 7,
        burst: None,
        distribution: KeyDistribution::Uniform,
    };

    println!(
        "workload: {} keys x {} B, {} threads, 1:1 read/write, {:?}\n",
        spec.key_count, spec.value_size, spec.threads, spec.duration
    );
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "device", "kop/s", "read p50", "read p90", "write p50", "write p90"
    );

    for profile in profiles::paper_devices() {
        let spec = spec.clone();
        let name = profile.kind.label();
        let r = Runtime::new().run(move || {
            let dataset = spec.key_count * (spec.value_size as u64 + 16);
            let tb = Testbed::new(profile, DbOptions::default(), dataset).expect("testbed");
            fill_db(&tb.db, spec.key_count, spec.value_size, spec.seed).expect("fill");
            let r = run_workload(&tb.db, &spec);
            tb.close();
            r
        });
        println!(
            "{:<12} {:>9.1} {:>9.0} us {:>9.0} us {:>9.0} us {:>9.0} us",
            name,
            r.kops(),
            r.read_latency.p50_ns as f64 / 1e3,
            r.read_latency.p90_ns as f64 / 1e3,
            r.write_latency.p50_ns as f64 / 1e3,
            r.write_latency.p90_ns as f64 / 1e3,
        );
    }

    // The paper's Section IV-A model: once Algorithm 1 engages, throughput
    // collapses to a level the hardware can barely influence.
    println!("\nSection IV-A analytic model (Eq. 2), throttled throughput:");
    for (name, lambda_s) in [("3d-xpoint", 190.0), ("sata-flash", 130.0)] {
        println!(
            "  {name:<12} λs = {lambda_s:>5.0} kop/s → λa = {:.2} kop/s",
            model::throttled_throughput_default_kops(lambda_s, 15.0)
        );
    }
    println!(
        "  i.e. once Algorithm 1 engages, BOTH devices collapse below 3 kop/s — from\n  unthrottled rates that differ by ~4x. The refill interval, not the hardware,\n  sets the floor."
    );
}
