//! Case-study tour: surviving periodic write bursts with the paper's three
//! optimizations — two-stage throttling (V-A), dynamic Level-0 management
//! (V-B), and NVM-resident logging (V-C) — all enabled at once, versus the
//! stock configuration.
//!
//! ```text
//! cargo run --release --example burst_survivor
//! ```

use std::sync::Arc;
use std::time::Duration;
use xlsm_suite::device::profiles;
use xlsm_suite::engine::DbOptions;
use xlsm_suite::sim::Runtime;
use xlsm_suite::study::casestudy::dynamic_l0::{DynamicL0Config, DynamicL0Manager};
use xlsm_suite::study::casestudy::nvm_wal::{apply_wal_placement, WalPlacement};
use xlsm_suite::study::experiment::Testbed;
use xlsm_suite::study::TwoStageThrottlePolicy;
use xlsm_suite::workload::{fill_db, run_workload, BurstSpec, KeyDistribution, WorkloadSpec};

fn burst_spec() -> WorkloadSpec {
    WorkloadSpec {
        key_count: 24 << 10,
        value_size: 1024,
        write_fraction: 0.5,
        threads: 6,
        duration: Duration::from_secs(8),
        seed: 99,
        burst: Some(BurstSpec {
            period: Duration::from_secs(4),
            burst_len: Duration::from_secs(2),
            burst_write_fraction: 0.9,
        }),
        distribution: KeyDistribution::Uniform,
    }
}

fn run(name: &str, optimized: bool) {
    let spec = burst_spec();
    let r = Runtime::new().run(move || {
        let mut opts = DbOptions::default();
        let mut nvm = None;
        if optimized {
            // V-A: two-stage throttling with the floor at the configured rate.
            opts.throttle_policy = Arc::new(TwoStageThrottlePolicy::new(opts.delayed_write_rate));
            // V-C: WAL on byte-addressable NVM.
            let (o, n) = apply_wal_placement(opts, WalPlacement::Nvm);
            opts = o;
            nvm = n;
        }
        let dataset = spec.key_count * (spec.value_size as u64 + 16);
        let tb = Testbed::new(profiles::optane_900p(), opts, dataset).expect("testbed");
        fill_db(&tb.db, spec.key_count, spec.value_size, spec.seed).expect("fill");
        // V-B: dynamic Level-0 management reacting to the burst phases.
        let mgr = optimized.then(|| {
            DynamicL0Manager::start(
                Arc::clone(&tb.db),
                DynamicL0Config {
                    aggregate_l0_bytes: 12 << 20,
                    sample_interval_nanos: 200_000_000,
                    ..DynamicL0Config::default()
                },
            )
        });
        let r = run_workload(&tb.db, &spec);
        if let Some(m) = mgr {
            let decisions = m.stop();
            println!(
                "  [{name}] dynamic-L0 retargeted the memtable {} times",
                decisions.len()
            );
        }
        let _ = nvm;
        tb.close();
        r
    });
    println!(
        "  [{name}] total {:>6.1} kop/s | worst 100ms bucket {:>5.1} kop/s | write p90 {:>6.0} us | write p99 {:>7.0} us",
        r.kops(),
        r.min_bucket_kops(),
        r.write_latency.p90_ns as f64 / 1e3,
        r.write_latency.p99_ns as f64 / 1e3,
    );
}

fn main() {
    println!("periodic write bursts on a 3D XPoint SSD (90% writes for 2s of every 4s):\n");
    run("stock RocksDB-style", false);
    run("all three case studies", true);
    println!("\nThe optimized configuration lifts the near-stop throughput floor (worst");
    println!("bucket ~3x higher) and bounds the extreme write tail (p99), at the cost of");
    println!("spreading throttle delay across more writes (higher p90) — the smooth-pacing");
    println!("trade-off behind the paper's Section V-A case study.");
}
