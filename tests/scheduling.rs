//! Cross-crate integration: the pluggable compaction-scheduling subsystem.
//!
//! Three properties the scheduler PR promises:
//!
//! * **equivalence** — which level the compactor services next (and how
//!   fast the background I/O runs) must never change the *logical*
//!   database: every policy ends a fixed workload with byte-identical
//!   contents, including deletions (a policy that resurrects a tombstoned
//!   key by compacting levels in the wrong order fails this);
//! * **fairness** — the deficit-based picker bounds per-level starvation:
//!   an eligible level is serviced within a bounded number of picks no
//!   matter how hot another level runs;
//! * **budget** — the shared background-I/O token bucket never admits more
//!   bytes than `rate × elapsed` virtual time, under any interleaving of
//!   flush- and compaction-priority acquires.

use std::sync::Arc;
use xlsm_suite::device::{profiles, SimDevice};
use xlsm_suite::engine::{
    BgIoLimiter, BgIoPriority, CompactionScheduler, Db, DbOptions, FairScheduler, GreedyScheduler,
    RoundRobinScheduler,
};
use xlsm_suite::sim::Runtime;
use xlsm_suite::simfs::{FsOptions, SimFs};

const KEYS: u64 = 400;
const OPS: u64 = 4000;

fn key(k: u64) -> Vec<u8> {
    format!("sched-{k:06}").into_bytes()
}

/// Deterministic xorshift so every policy replays the exact same op tape.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Applies a fixed operation sequence — puts whose value depends on the op
/// index (so the final value per key is decided by the tape, not by
/// scheduling), deletions, and periodic explicit flushes to pile up
/// Level-0 files — then settles compactions and dumps the logical state.
fn final_state(opts: DbOptions) -> Vec<u8> {
    Runtime::new().run(move || {
        let device = SimDevice::shared(profiles::optane_900p());
        let fs = SimFs::new(device as _, FsOptions::default());
        let db = Arc::new(Db::open(Arc::clone(&fs), opts).unwrap());
        let mut rng = 0x5EEDu64;
        for i in 0..OPS {
            let k = xorshift(&mut rng) % KEYS;
            if xorshift(&mut rng).is_multiple_of(10) {
                db.delete(&key(k)).unwrap();
            } else {
                let value = format!("v-{k}-{i}-{}", "x".repeat((i % 40) as usize));
                db.put(&key(k), value.as_bytes()).unwrap();
            }
            if i % 250 == 249 {
                db.flush().unwrap();
            }
        }
        db.flush().unwrap();
        db.wait_for_compactions();
        let mut dump = Vec::new();
        for k in 0..KEYS {
            dump.extend_from_slice(&key(k));
            match db.get(&key(k)).unwrap() {
                Some(v) => {
                    dump.push(b'=');
                    dump.extend_from_slice(&v);
                }
                None => dump.push(b'!'),
            }
            dump.push(b'\n');
        }
        db.close();
        dump
    })
}

/// A geometry small enough that the op tape drives multi-level compaction
/// (so the policies genuinely diverge in *which* compactions run when).
fn tight_opts(scheduler: Arc<dyn CompactionScheduler>) -> DbOptions {
    DbOptions {
        compaction_scheduler: scheduler,
        write_buffer_size: 64 << 10,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        level0_file_num_compaction_trigger: 2,
        ..DbOptions::default()
    }
}

#[test]
fn every_policy_yields_byte_identical_final_state() {
    let greedy = final_state(tight_opts(Arc::new(GreedyScheduler)));
    let greedy_again = final_state(tight_opts(Arc::new(GreedyScheduler)));
    assert_eq!(
        greedy, greedy_again,
        "same policy, same tape must be deterministic"
    );
    let round_robin = final_state(tight_opts(Arc::new(RoundRobinScheduler::default())));
    assert_eq!(
        greedy, round_robin,
        "round-robin scheduling changed the logical database"
    );
    let fair = final_state(DbOptions {
        bg_io_rate_bytes_per_sec: 8 << 20,
        bg_io_auto_tune: true,
        ..tight_opts(Arc::new(FairScheduler::default()))
    });
    assert_eq!(
        greedy, fair,
        "fair scheduling + I/O budget changed the logical database"
    );
}

#[test]
fn fair_picker_bounds_per_level_starvation() {
    // Level 1 stays pinned far hotter than level 2; greedy would starve
    // level 2 forever. The deficit picker must service every eligible
    // level within K consecutive picks.
    const K: usize = 8;
    let fair = FairScheduler::default();
    let mut since_l2 = 0usize;
    let mut l2_picks = 0usize;
    for round in 0..200 {
        // Scores wobble so the test is not a fixed-point special case.
        let hot = 5.0 + (round % 3) as f64;
        let scores = [0.0, hot, 1.2, 0.0];
        let picked = fair.pick_level(&scores).expect("eligible levels exist");
        assert!(picked == 1 || picked == 2, "only eligible levels");
        if picked == 2 {
            since_l2 = 0;
            l2_picks += 1;
        } else {
            since_l2 += 1;
            assert!(
                since_l2 < K,
                "level 2 (score 1.2) starved for {since_l2} consecutive picks"
            );
        }
    }
    assert!(l2_picks >= 200 / K, "level 2 serviced implausibly rarely");

    // Greedy, for contrast, starves level 2 on the same score stream.
    let greedy = GreedyScheduler;
    assert!((0..200).all(|_| greedy.pick_level(&[0.0, 5.0, 1.2, 0.0]) == Some(1)));
}

#[test]
fn limiter_never_admits_more_than_budget_times_elapsed() {
    const RATE: u64 = 4 << 20; // 4 MiB per virtual second
    Runtime::new().run(|| {
        let limiter = BgIoLimiter::new(RATE, None);
        assert!(limiter.enabled());
        let t0 = xlsm_suite::sim::now_nanos();
        let mut admitted: u64 = 0;
        let mut rng = 0xB06E7u64;
        for i in 0..64 {
            let bytes = 1 + xorshift(&mut rng) % (2 << 20);
            let pri = if i % 3 == 0 {
                BgIoPriority::Flush
            } else {
                BgIoPriority::Compaction
            };
            limiter.acquire(bytes, pri);
            admitted += bytes;
            let elapsed = (xlsm_suite::sim::now_nanos() - t0) as u128;
            assert!(
                (admitted as u128) * 1_000_000_000 <= (RATE as u128) * elapsed,
                "admitted {admitted} B after {elapsed} ns exceeds the {RATE} B/s budget"
            );
            // Idle gaps must not bank more than one burst of credit.
            if i % 16 == 15 {
                xlsm_suite::sim::sleep_nanos(3_000_000_000);
            }
        }
    });
}
