//! Crash-consistency and background-error harness.
//!
//! Drives the engine through injected filesystem faults ([`FaultPlan`]) and
//! power cuts, then asserts the durability contract on recovery:
//!
//! * every synced (acknowledged) write is present after reopen;
//! * no unsynced suffix is resurrected;
//! * recovery itself never errors on torn tails;
//! * transient background I/O errors are retried with backoff and
//!   auto-resume — no worker panics;
//! * hard errors flip the database to read-only (writes fail fast, reads
//!   keep serving) until an explicit `Db::resume`.

use std::collections::HashMap;
use std::sync::Arc;
use xlsm_suite::device::{profiles, SimDevice};
use xlsm_suite::engine::{Db, DbError, DbOptions, ErrorSeverity, Ticker};
use xlsm_suite::sim::Runtime;
use xlsm_suite::simfs::{FaultPlan, FsOptions, SimFs};

/// A buffered (SATA) device, so unsynced writes really are lost on power
/// cut, with small memtables/files to exercise flush + compaction quickly.
fn crash_fs() -> Arc<SimFs> {
    SimFs::new(
        SimDevice::shared(profiles::intel_530_sata()),
        FsOptions::default(),
    )
}

fn crash_opts() -> DbOptions {
    DbOptions {
        write_buffer_size: 64 << 10,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        level0_file_num_compaction_trigger: 2,
        // Acknowledged writes must be durable for the power-cut contract.
        wal_sync: true,
        ..DbOptions::default()
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(12))]

    /// The tentpole contract: run a randomized workload, cut power at an
    /// arbitrary scripted operation (mid-WAL-append, mid-flush,
    /// mid-compaction, mid-MANIFEST-write — wherever the counter lands),
    /// reopen, and check that every acknowledged write survived, nothing
    /// unacknowledged beyond the single in-flight operation resurfaced,
    /// and recovery reported no corruption.
    #[test]
    fn power_cut_preserves_every_acked_write(
        seed in 0u64..10_000u64,
        cut_op in 1u64..6_000u64,
    ) {
        Runtime::new().run(move || {
            let fs = crash_fs();
            let db = Db::open(Arc::clone(&fs), crash_opts()).unwrap();
            // Arm the plan after open so the operation counter starts at
            // the workload, not at recovery I/O.
            fs.set_fault_plan(FaultPlan {
                seed,
                power_cut_at_op: Some(cut_op),
                ..FaultPlan::default()
            });
            let mut acked: HashMap<String, String> = HashMap::new();
            let mut in_flight: Option<(String, String)> = None;
            for i in 0..600u32 {
                let key = format!("k{:02}", i % 32);
                let value = format!("v{i:08}");
                in_flight = Some((key.clone(), value.clone()));
                match db.put(key.as_bytes(), value.as_bytes()) {
                    Ok(()) => {
                        acked.insert(key, value);
                        in_flight = None;
                    }
                    Err(_) => break,
                }
            }
            if !fs.is_powered_off() {
                // The scripted cut never fired; pull the plug now.
                fs.power_cut();
            }
            db.close();
            fs.power_restore();

            let db2 = Db::open(Arc::clone(&fs), crash_opts())
                .expect("recovery after power cut must not error");
            for (k, v) in &acked {
                let got = db2.get(k.as_bytes()).unwrap();
                // The one in-flight (unacknowledged) write may have become
                // durable before the cut; its key may hold either value.
                let in_flight_ok = in_flight.as_ref().is_some_and(|(ik, iv)| {
                    ik == k && got == Some(iv.clone().into_bytes())
                });
                assert!(
                    got == Some(v.clone().into_bytes()) || in_flight_ok,
                    "acked write lost or corrupted after power cut: \
                     key={k} expected={v} got={got:?} (seed={seed} cut={cut_op})"
                );
            }
            if let Some((ik, iv)) = &in_flight {
                if !acked.contains_key(ik) {
                    let got = db2.get(ik.as_bytes()).unwrap();
                    assert!(
                        got.is_none() || got == Some(iv.clone().into_bytes()),
                        "unsynced data resurrected for in-flight key {ik}: {got:?}"
                    );
                }
            }
            db2.close();
        });
    }
}

#[test]
fn transient_flush_error_retries_and_auto_resumes() {
    Runtime::new().run(|| {
        let fs = crash_fs();
        let db = Db::open(Arc::clone(&fs), crash_opts()).unwrap();
        for i in 0..100u32 {
            db.put(format!("key{i:04}").as_bytes(), &[b'v'; 100])
                .unwrap();
        }
        // Fail the first SST write; the flush worker must back off, retry,
        // and auto-resume instead of panicking or going read-only.
        fs.set_fault_plan(FaultPlan {
            fail_nth_write: Some(1),
            path_filter: Some(".sst".into()),
            retryable: true,
            ..FaultPlan::default()
        });
        db.flush()
            .expect("transient flush fault must be retried, not surfaced");
        assert!(db.stats().ticker(Ticker::BackgroundErrors) >= 1);
        assert!(db.stats().ticker(Ticker::BackgroundErrorRetries) >= 1);
        assert!(db.stats().ticker(Ticker::BackgroundAutoResumes) >= 1);
        let m = db.metrics();
        assert!(!m.read_only, "transient fault must not enter read-only");
        assert!(m.background_error.is_none(), "auto-resume clears the error");
        fs.clear_fault_plan();
        db.put(b"after", b"ok").unwrap();
        assert_eq!(db.get(b"after").unwrap(), Some(b"ok".to_vec()));
        assert_eq!(db.get(b"key0042").unwrap(), Some(vec![b'v'; 100]));
        db.close();
    });
}

#[test]
fn hard_flush_error_enters_read_only_and_resume_recovers() {
    Runtime::new().run(|| {
        let fs = crash_fs();
        let db = Db::open(Arc::clone(&fs), crash_opts()).unwrap();
        for i in 0..100u32 {
            db.put(format!("key{i:04}").as_bytes(), b"durable").unwrap();
        }
        db.flush().unwrap();
        for i in 100..200u32 {
            db.put(format!("key{i:04}").as_bytes(), b"pending").unwrap();
        }
        // Every SST write fails hard: the retry budget cannot help, so the
        // database must transition to read-only.
        fs.set_fault_plan(FaultPlan {
            write_error_prob: 1.0,
            path_filter: Some(".sst".into()),
            retryable: false,
            ..FaultPlan::default()
        });
        let err = db.flush().expect_err("hard fault must surface");
        assert!(matches!(err, DbError::ReadOnly(_)), "got {err:?}");
        // Writes fail fast...
        assert!(matches!(db.put(b"x", b"y"), Err(DbError::ReadOnly(_))));
        // ...while reads keep serving, from SSTs and the stuck memtable.
        assert_eq!(db.get(b"key0000").unwrap(), Some(b"durable".to_vec()));
        assert_eq!(db.get(b"key0150").unwrap(), Some(b"pending".to_vec()));
        let m = db.metrics();
        assert!(m.read_only);
        assert!(m.tickers.get(Ticker::ReadOnlyTransitions) >= 1);
        let be = m.background_error.expect("error state must be surfaced");
        assert_eq!(be.severity, ErrorSeverity::Hard);

        // Clear the fault and resume: the failed flush re-runs, read-only
        // lifts, and writes work again.
        fs.clear_fault_plan();
        db.resume().unwrap();
        let m = db.metrics();
        assert!(!m.read_only);
        assert!(m.background_error.is_none());
        db.put(b"post", b"resume").unwrap();
        assert_eq!(db.get(b"post").unwrap(), Some(b"resume".to_vec()));
        assert_eq!(db.get(b"key0150").unwrap(), Some(b"pending".to_vec()));
        db.close();
    });
}

/// Builds several L0 files with compaction held back, then releases the
/// compaction with a 100% read bit-flip rate on SSTs.
fn corrupt_compaction_setup(paranoid: bool) -> (Arc<SimFs>, Db) {
    let fs = crash_fs();
    let opts = DbOptions {
        paranoid_checks: paranoid,
        level0_file_num_compaction_trigger: 4,
        ..crash_opts()
    };
    let db = Db::open(Arc::clone(&fs), opts).unwrap();
    db.set_l0_compaction_trigger(100); // hold compaction back
    for round in 0..4u32 {
        for i in 0..100u32 {
            db.put(
                format!("key{i:04}").as_bytes(),
                format!("r{round}").as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
    }
    assert_eq!(db.num_l0_files(), 4);
    // The compaction opens all four L0 readers first (footer + index +
    // properties = 3 raw reads each, bloom disabled), then starts on data
    // blocks. Flip a bit in the first data-block read — data blocks are
    // CRC-framed, so the flip must surface as checksum corruption.
    fs.set_fault_plan(FaultPlan {
        bit_flip_nth_read: Some(13),
        path_filter: Some(".sst".into()),
        retryable: false,
        ..FaultPlan::default()
    });
    db.set_l0_compaction_trigger(2); // release the compaction
    (fs, db)
}

#[test]
fn bit_flipped_compaction_reads_are_detected_and_escalate() {
    Runtime::new().run(|| {
        let (fs, db) = corrupt_compaction_setup(true);
        // With paranoid_checks (default), detected corruption is a hard
        // error: wait for the read-only transition.
        let mut spins = 0u32;
        while !db.metrics().read_only {
            xlsm_suite::sim::sleep_nanos(200_000);
            spins += 1;
            assert!(spins < 50_000, "compaction corruption never escalated");
        }
        let m = db.metrics();
        assert!(m.tickers.get(Ticker::CorruptionDetected) >= 1);
        let be = m.background_error.expect("corruption must be recorded");
        assert_eq!(be.severity, ErrorSeverity::Hard);
        assert!(matches!(be.error, DbError::Corruption(_)), "{:?}", be.error);
        // The flips were transient (returned copy only): with the plan
        // cleared, the stored bytes read back clean.
        fs.clear_fault_plan();
        assert_eq!(db.get(b"key0000").unwrap(), Some(b"r3".to_vec()));
        assert!(matches!(db.put(b"x", b"y"), Err(DbError::ReadOnly(_))));
        db.resume().unwrap();
        db.put(b"x", b"y").unwrap();
        db.close();
    });
}

#[test]
fn without_paranoid_checks_corrupt_compaction_keeps_db_writable() {
    Runtime::new().run(|| {
        let (fs, db) = corrupt_compaction_setup(false);
        let mut spins = 0u32;
        while db.metrics().tickers.get(Ticker::CorruptionDetected) == 0 {
            xlsm_suite::sim::sleep_nanos(200_000);
            spins += 1;
            assert!(spins < 50_000, "compaction corruption never detected");
        }
        let m = db.metrics();
        assert!(!m.read_only, "paranoid_checks=false must not escalate");
        fs.clear_fault_plan();
        db.put(b"still", b"writable").unwrap();
        assert_eq!(db.get(b"still").unwrap(), Some(b"writable".to_vec()));
        assert_eq!(db.get(b"key0000").unwrap(), Some(b"r3".to_vec()));
        db.close();
    });
}
