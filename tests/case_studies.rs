//! Integration tests for the three case studies (paper Section V), at
//! reduced scale so they run in CI time.

use std::sync::Arc;
use std::time::Duration;
use xlsm_suite::device::profiles;
use xlsm_suite::engine::{Db, DbOptions};
use xlsm_suite::sim::Runtime;
use xlsm_suite::simfs::{FsOptions, SimFs};
use xlsm_suite::study::casestudy::dynamic_l0::{DynamicL0Config, DynamicL0Manager};
use xlsm_suite::study::casestudy::nvm_wal::{apply_wal_placement, WalPlacement};
use xlsm_suite::study::TwoStageThrottlePolicy;
use xlsm_suite::workload::{fill_db, run_workload, BurstSpec, KeyDistribution, WorkloadSpec};

fn burst_workload() -> WorkloadSpec {
    WorkloadSpec {
        key_count: 8 << 10,
        value_size: 1024,
        write_fraction: 0.9, // sustained write pressure keeps L0 loaded
        threads: 6,
        duration: Duration::from_secs(2),
        seed: 31,
        burst: Some(BurstSpec {
            period: Duration::from_secs(1),
            burst_len: Duration::from_millis(500),
            burst_write_fraction: 1.0,
        }),
        distribution: KeyDistribution::Uniform,
    }
}

/// Triggers engage at CI scale: tight L0 thresholds so the slowdown zone is
/// actually visited during the run.
fn throttle_prone_opts() -> DbOptions {
    DbOptions {
        write_buffer_size: 256 << 10,
        target_file_size_base: 256 << 10,
        max_bytes_for_level_base: 1 << 20,
        level0_file_num_compaction_trigger: 2,
        level0_slowdown_writes_trigger: 4,
        level0_stop_writes_trigger: 12,
        ..DbOptions::default()
    }
}

struct PolicyRun {
    total_kops: f64,
    /// Lowest delayed_write_rate the controller ever reached (bytes/s).
    min_rate: u64,
    /// Fraction of samples spent in any throttled state.
    throttled_frac: f64,
}

fn run_with_policy(two_stage: bool) -> PolicyRun {
    let spec = burst_workload();
    Runtime::new().run(move || {
        let mut opts = throttle_prone_opts();
        if two_stage {
            opts.throttle_policy = Arc::new(TwoStageThrottlePolicy::new(opts.delayed_write_rate));
        }
        let fs = SimFs::new(
            xlsm_suite::device::SimDevice::shared(profiles::optane_900p()) as _,
            FsOptions::default(),
        );
        let db = Arc::new(Db::open(fs, opts).unwrap());
        fill_db(&db, spec.key_count, spec.value_size, spec.seed).unwrap();
        let db2 = Arc::clone(&db);
        let sampler = xlsm_suite::workload::Sampler::start("ctl", 5_000_000, move || {
            use xlsm_suite::engine::controller::StallLevel;
            let snap = db2.controller_snapshot();
            match snap.level {
                StallLevel::Clear => -1.0,
                _ => snap.delayed_write_rate as f64,
            }
        });
        let r = run_workload(&db, &spec);
        let series = sampler.finish();
        db.close();
        let throttled: Vec<f64> = series
            .iter()
            .filter(|&&(_, v)| v >= 0.0)
            .map(|&(_, v)| v)
            .collect();
        PolicyRun {
            total_kops: r.kops(),
            min_rate: throttled.iter().fold(f64::INFINITY, |a, &b| a.min(b)) as u64,
            throttled_frac: throttled.len() as f64 / series.len() as f64,
        }
    })
}

/// Case study V-A: under sustained write pressure the original Algorithm 1
/// rate compounds downward, while the two-stage policy's stage-1 floor
/// keeps the rate at the configured level — without costing throughput.
#[test]
fn two_stage_throttle_holds_a_rate_floor() {
    let orig = run_with_policy(false);
    let two = run_with_policy(true);
    // Both configurations must actually visit the throttled regime for the
    // comparison to be meaningful.
    assert!(
        orig.throttled_frac > 0.05 && two.throttled_frac > 0.05,
        "throttling must engage: orig {:.2} two {:.2}",
        orig.throttled_frac,
        two.throttled_frac
    );
    let floor = DbOptions::default().delayed_write_rate;
    assert!(
        orig.min_rate < floor,
        "original policy should adapt below the initial rate: {} vs {floor}",
        orig.min_rate
    );
    assert!(
        two.min_rate >= floor,
        "two-stage stage-1 floor must hold: {} vs {floor}",
        two.min_rate
    );
    assert!(
        two.total_kops > orig.total_kops * 0.8,
        "two-stage must not sacrifice overall throughput: {:.1} vs {:.1}",
        orig.total_kops,
        two.total_kops
    );
}

/// Case study V-B: the dynamic Level-0 manager tracks the workload mix,
/// choosing large memtables for read-heavy phases and small ones for
/// write-heavy phases.
#[test]
fn dynamic_l0_follows_workload_mix() {
    Runtime::new().run(|| {
        let fs = SimFs::new(
            xlsm_suite::device::SimDevice::shared(profiles::optane_900p()) as _,
            FsOptions::default(),
        );
        let db = Arc::new(Db::open(fs, DbOptions::default()).unwrap());
        fill_db(&db, 2 << 10, 512, 5).unwrap();
        let cfg = DynamicL0Config {
            aggregate_l0_bytes: 12 << 20,
            sample_interval_nanos: 100_000_000,
            ..DynamicL0Config::default()
        };
        let mgr = DynamicL0Manager::start(Arc::clone(&db), cfg);
        // Read-heavy phase.
        let read_spec = WorkloadSpec {
            key_count: 2 << 10,
            value_size: 512,
            write_fraction: 0.05,
            threads: 2,
            duration: Duration::from_millis(500),
            seed: 6,
            burst: None,
            distribution: KeyDistribution::Uniform,
        };
        run_workload(&db, &read_spec);
        let read_target = db.write_buffer_size();
        // Write-heavy phase.
        run_workload(&db, &read_spec.clone().with_write_fraction(0.9));
        let write_target = db.write_buffer_size();
        let log = mgr.stop();
        assert!(
            read_target > write_target,
            "read-heavy phases should use larger memtables: {read_target} vs {write_target}"
        );
        assert!(!log.is_empty(), "the manager should have acted");
        db.close();
    });
}

/// Case study V-C: with per-commit WAL syncs, moving the log to NVM
/// drastically cuts the write tail; disabling the WAL entirely is the
/// lower bound.
#[test]
fn nvm_wal_cuts_synced_write_tail() {
    fn p90(placement: WalPlacement) -> u64 {
        Runtime::new().run(move || {
            let fs = SimFs::new(
                xlsm_suite::device::SimDevice::shared(profiles::intel_750_pcie()) as _,
                FsOptions::default(),
            );
            let (opts, _nvm) = apply_wal_placement(
                DbOptions {
                    wal_sync: true,
                    ..DbOptions::default()
                },
                placement,
            );
            let db = Arc::new(Db::open(fs, opts).unwrap());
            let spec = WorkloadSpec {
                key_count: 2 << 10,
                value_size: 512,
                write_fraction: 1.0,
                threads: 2,
                duration: Duration::from_millis(400),
                seed: 4,
                burst: None,
                distribution: KeyDistribution::Uniform,
            };
            fill_db(&db, spec.key_count, spec.value_size, spec.seed).unwrap();
            let r = run_workload(&db, &spec);
            db.close();
            r.write_latency.p90_ns
        })
    }
    let ssd = p90(WalPlacement::SameDevice);
    let nvm = p90(WalPlacement::Nvm);
    let off = p90(WalPlacement::Disabled);
    assert!(
        nvm < ssd,
        "NVM WAL should beat same-device WAL: {nvm} vs {ssd} ns"
    );
    assert!(
        off <= nvm,
        "disabled WAL is the lower bound: {off} vs {nvm} ns"
    );
}

/// The paper's overall narrative in one test: on 3D XPoint, a write-heavy
/// workload gains far less over SATA flash than the raw device speedup,
/// because software bottlenecks dominate.
#[test]
fn software_bottleneck_narrows_the_hardware_gap() {
    fn kops(profile: xlsm_suite::device::DeviceProfile) -> f64 {
        Runtime::new().run(move || {
            let fs = SimFs::new(
                xlsm_suite::device::SimDevice::shared(profile) as _,
                FsOptions::default(),
            );
            let db = Arc::new(Db::open(fs, DbOptions::default()).unwrap());
            let spec = WorkloadSpec {
                key_count: 8 << 10,
                value_size: 1024,
                write_fraction: 0.9,
                threads: 4,
                duration: Duration::from_secs(1),
                seed: 17,
                burst: None,
                distribution: KeyDistribution::Uniform,
            };
            fill_db(&db, spec.key_count, spec.value_size, spec.seed).unwrap();
            let r = run_workload(&db, &spec);
            db.close();
            r.kops()
        })
    }
    let sata = kops(profiles::intel_530_sata());
    let xpoint = kops(profiles::optane_900p());
    let kv_gain = xpoint / sata;
    // Raw device gap is ~15x; the KV-level gap at 90% writes must collapse
    // to a single digit (paper: 1.8x at 1:1 with 4K values).
    assert!(
        kv_gain < 10.0,
        "KV gain should be far below the ~15x raw gap, got {kv_gain:.1}x"
    );
    assert!(kv_gain > 1.0, "XPoint should still win: {kv_gain:.2}x");
}
