//! Cross-crate integration: full stack (device → simfs → engine → workload)
//! exercised end to end.

use std::sync::Arc;
use std::time::Duration;
use xlsm_suite::device::{profiles, SimDevice};
use xlsm_suite::engine::{Db, DbOptions};
use xlsm_suite::sim::Runtime;
use xlsm_suite::simfs::{FsOptions, SimFs};
use xlsm_suite::workload::{
    fill_db, run_workload, KeyDistribution, KeySpace, ValueGenerator, WorkloadSpec,
};

fn small_spec() -> WorkloadSpec {
    WorkloadSpec {
        key_count: 4 << 10,
        value_size: 512,
        write_fraction: 0.5,
        threads: 4,
        duration: Duration::from_millis(600),
        seed: 0xABCD,
        burst: None,
        distribution: KeyDistribution::Uniform,
    }
}

fn stack(profile: xlsm_suite::device::DeviceProfile) -> (Arc<SimFs>, Arc<Db>) {
    let device = SimDevice::shared(profile);
    let fs = SimFs::new(device as _, FsOptions::default());
    let db = Arc::new(
        Db::open(
            Arc::clone(&fs),
            DbOptions {
                write_buffer_size: 256 << 10,
                target_file_size_base: 256 << 10,
                max_bytes_for_level_base: 1 << 20,
                ..DbOptions::default()
            },
        )
        .unwrap(),
    );
    (fs, db)
}

#[test]
fn mixed_workload_runs_on_every_device() {
    for profile in profiles::paper_devices() {
        let name = profile.name;
        let kops = Runtime::new().run(move || {
            let (_fs, db) = stack(profile);
            let spec = small_spec();
            fill_db(&db, spec.key_count, spec.value_size, spec.seed).unwrap();
            let r = run_workload(&db, &spec);
            db.close();
            r.kops()
        });
        assert!(kops > 1.0, "{name}: implausibly low throughput {kops}");
    }
}

#[test]
fn device_speed_ordering_propagates_to_kv_reads() {
    // Read-only after fill, with a page cache far smaller than the dataset
    // so reads actually reach the device: read latency must order
    // SATA > PCIe > XPoint.
    let mut p90s = Vec::new();
    for profile in profiles::paper_devices() {
        let p90 = Runtime::new().run(move || {
            let device = SimDevice::shared(profile);
            let fs = SimFs::new(
                device as _,
                FsOptions {
                    page_cache_pages: 1024, // 4 MiB vs ~8 MiB dataset
                    ..FsOptions::default()
                },
            );
            let db = Arc::new(
                Db::open(
                    Arc::clone(&fs),
                    DbOptions {
                        write_buffer_size: 256 << 10,
                        target_file_size_base: 256 << 10,
                        max_bytes_for_level_base: 1 << 20,
                        ..DbOptions::default()
                    },
                )
                .unwrap(),
            );
            let spec = WorkloadSpec {
                write_fraction: 0.0,
                key_count: 16 << 10,
                ..small_spec()
            };
            fill_db(&db, spec.key_count, spec.value_size, spec.seed).unwrap();
            let r = run_workload(&db, &spec);
            db.close();
            r.read_latency.p90_ns
        });
        p90s.push(p90);
    }
    assert!(
        p90s[0] > p90s[1] && p90s[1] > p90s[2],
        "read p90 ordering should be SATA > PCIe > XPoint: {p90s:?}"
    );
}

#[test]
fn data_integrity_after_heavy_churn_and_reopen() {
    Runtime::new().run(|| {
        let (fs, db) = stack(profiles::optane_900p());
        let ks = KeySpace::new(2_000);
        let vg = ValueGenerator::new(256);
        // Three overwrite passes force flushes and compactions.
        for pass in 0..3u64 {
            for i in 0..2_000 {
                let idx = (i * 7 + pass * 13) % 2_000;
                db.put(&ks.key(idx), &vg.value(idx + pass * 10_000))
                    .unwrap();
            }
        }
        // Delete a stripe.
        for i in (0..2_000).step_by(10) {
            db.delete(&ks.key(i)).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions();
        db.close();

        // Reopen and verify every key against the model.
        let db2 = Db::open(
            Arc::clone(&fs),
            DbOptions {
                write_buffer_size: 256 << 10,
                target_file_size_base: 256 << 10,
                max_bytes_for_level_base: 1 << 20,
                ..DbOptions::default()
            },
        )
        .unwrap();
        for i in 0..2_000u64 {
            let got = db2.get(&ks.key(i)).unwrap();
            if i % 10 == 0 {
                assert_eq!(got, None, "key {i} should be deleted");
            } else {
                // Every pass rewrites every index (gcd(7, 2000) = 1), so the
                // last writer is pass 2.
                assert_eq!(
                    got,
                    Some(vg.value(i + 2 * 10_000)),
                    "key {i} corrupt after reopen"
                );
            }
        }
        db2.close();
    });
}

#[test]
fn whole_stack_is_deterministic() {
    fn run_once() -> (u64, u64, u64) {
        Runtime::new().run(|| {
            let (fs, db) = stack(profiles::intel_750_pcie());
            let spec = small_spec();
            fill_db(&db, spec.key_count, spec.value_size, spec.seed).unwrap();
            let r = run_workload(&db, &spec);
            let dev_reads = {
                let d = fs.device();
                d.stats().reads
            };
            db.close();
            (r.total_ops, xlsm_suite::sim::now_nanos(), dev_reads)
        })
    }
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "same seed must reproduce bit-for-bit");
}

#[test]
fn scan_is_consistent_under_concurrent_writes() {
    Runtime::new().run(|| {
        let (_fs, db) = stack(profiles::optane_900p());
        for i in 0..500u32 {
            db.put(format!("stable{i:04}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        let db2 = Arc::clone(&db);
        let writer = xlsm_suite::sim::spawn("writer", move || {
            for i in 0..500u32 {
                db2.put(format!("new{i:04}").as_bytes(), b"w").unwrap();
            }
        });
        // The scan pins a snapshot: it must see exactly the 500 stable keys
        // regardless of concurrent inserts sorting before/after.
        let mut scan = db.scan().unwrap();
        let mut count = 0;
        let mut ok = scan.seek(b"stable").unwrap();
        while ok && scan.key().starts_with(b"stable") {
            count += 1;
            ok = scan.next().unwrap();
        }
        assert_eq!(count, 500);
        drop(scan);
        writer.join();
        db.close();
    });
}
