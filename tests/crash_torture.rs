//! Exhaustive power-cut torture harness.
//!
//! The contract under test: run a seeded mixed workload (puts, deletes,
//! flush churn) once to completion under an empty fault plan to *learn*
//! how many filesystem operations it performs, then for a dense sample of
//! cut points `k` rerun the identical workload with `power_cut_at_op = k`,
//! restore power, reopen, and check point-in-time consistency against a
//! shadow model:
//!
//! * every acknowledged (`wal_sync = true`) write is present;
//! * no phantom keys or values appear;
//! * the recovered state is exactly the acked prefix of commit order,
//!   plus at most the single in-flight operation;
//! * `AbsoluteConsistency` may refuse to open on a torn tail — but then a
//!   `PointInTimeRecovery` reopen of the same directory must succeed;
//! * recovery is deterministic: the same seed and cut point recover a
//!   byte-identical state twice;
//! * when the cut (or the test) destroys the MANIFEST, `repair_db`
//!   rebuilds an openable database from the surviving SSTs and logs.
//!
//! `XLSM_TORTURE_CUTS` bounds the sweep density (default 16 for plain
//! `cargo test`; `scripts/check.sh` runs the smoke at 64).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use xlsm_suite::device::{profiles, SimDevice};
use xlsm_suite::engine::{repair_db, Db, DbOptions, Ticker, WalRecoveryMode};
use xlsm_suite::sim::rng::Xoshiro256;
use xlsm_suite::sim::Runtime;
use xlsm_suite::simfs::{FaultPlan, FsOptions, SimFs};
use xlsm_suite::study::report;

const WORKLOAD_SEED: u64 = 0x0005_5eed;
const WORKLOAD_OPS: u32 = 400;
const KEYSPACE: u64 = 48;

/// A buffered (SATA) device: unsynced writes really die on power cut.
fn torture_fs() -> Arc<SimFs> {
    SimFs::new(
        SimDevice::shared(profiles::intel_530_sata()),
        FsOptions::default(),
    )
}

fn torture_opts(mode: WalRecoveryMode) -> DbOptions {
    DbOptions {
        write_buffer_size: 64 << 10,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        level0_file_num_compaction_trigger: 2,
        // Acknowledged writes must be durable for the shadow model to be
        // exact.
        wal_sync: true,
        wal_recovery_mode: mode,
        ..DbOptions::default()
    }
}

fn cut_count() -> u64 {
    std::env::var("XLSM_TORTURE_CUTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
        .max(2)
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Op {
    Put(String, String),
    Delete(String),
    Flush,
}

/// The op sequence is a pure function of the seed — the clean learning run
/// and every cut run replay the exact same commands.
fn workload(seed: u64, ops: u32) -> Vec<Op> {
    let mut rng = Xoshiro256::new(seed);
    (0..ops)
        .map(|i| {
            let key = format!("key{:03}", rng.next_below(KEYSPACE));
            let roll = rng.next_below(100);
            if roll < 70 {
                Op::Put(key, format!("v{:08}-{:06}", i, rng.next_below(1_000_000)))
            } else if roll < 90 {
                Op::Delete(key)
            } else {
                Op::Flush
            }
        })
        .collect()
}

fn apply(model: &mut BTreeMap<String, String>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            model.insert(k.clone(), v.clone());
        }
        Op::Delete(k) => {
            model.remove(k);
        }
        Op::Flush => {}
    }
}

/// Drives the workload until the power cut kills an operation (or the
/// workload completes). Returns the acked shadow model and the one op that
/// was in flight when the lights went out.
fn run_workload(db: &Db, ops: &[Op]) -> (BTreeMap<String, String>, Option<Op>) {
    let mut model = BTreeMap::new();
    for op in ops {
        let res = match op {
            Op::Put(k, v) => db.put(k.as_bytes(), v.as_bytes()),
            Op::Delete(k) => db.delete(k.as_bytes()),
            Op::Flush => db.flush(),
        };
        match res {
            Ok(()) => apply(&mut model, op),
            Err(_) => return (model, Some(op.clone())),
        }
    }
    (model, None)
}

fn dump(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut scan = db.scan().unwrap();
    let mut out = Vec::new();
    if scan.seek_to_first().unwrap() {
        loop {
            out.push((scan.key().to_vec(), scan.value().to_vec()));
            if !scan.next().unwrap() {
                break;
            }
        }
    }
    out
}

fn dump_as_model(db: &Db) -> BTreeMap<String, String> {
    dump(db)
        .into_iter()
        .map(|(k, v)| (String::from_utf8(k).unwrap(), String::from_utf8(v).unwrap()))
        .collect()
}

/// The states recovery is allowed to land on: the acked prefix, or the
/// acked prefix plus the single in-flight op (which may have hit the disk
/// just before the cut).
fn acceptable_states(
    acked: &BTreeMap<String, String>,
    in_flight: &Option<Op>,
) -> Vec<BTreeMap<String, String>> {
    let mut states = vec![acked.clone()];
    if let Some(op) = in_flight {
        let mut with = acked.clone();
        apply(&mut with, op);
        if with != states[0] {
            states.push(with);
        }
    }
    states
}

fn assert_point_in_time(
    db: &Db,
    acked: &BTreeMap<String, String>,
    in_flight: &Option<Op>,
    context: &str,
) {
    let got = dump_as_model(db);
    let states = acceptable_states(acked, in_flight);
    if states.contains(&got) {
        return;
    }
    let expected = &states[0];
    let missing: Vec<&String> = expected.keys().filter(|k| !got.contains_key(*k)).collect();
    let phantom: Vec<&String> = got.keys().filter(|k| !expected.contains_key(*k)).collect();
    let diverged: Vec<&String> = expected
        .iter()
        .filter(|(k, v)| got.get(*k).is_some_and(|g| g != *v))
        .map(|(k, _)| k)
        .collect();
    panic!(
        "{context}: recovered state is not a point-in-time view \
         (acked={} got={} missing={missing:?} phantom={phantom:?} \
         diverged={diverged:?} in_flight={in_flight:?})",
        expected.len(),
        got.len(),
    );
}

/// Clean run under an empty (but armed) fault plan: nothing is injected,
/// the plan's global operation counter just ticks, and its final value is
/// the sweep's upper bound.
fn learn_op_count() -> u64 {
    Runtime::new().run(|| {
        let fs = torture_fs();
        let db = Db::open(
            Arc::clone(&fs),
            torture_opts(WalRecoveryMode::PointInTimeRecovery),
        )
        .unwrap();
        fs.set_fault_plan(FaultPlan::default());
        let (model, in_flight) = run_workload(&db, &workload(WORKLOAD_SEED, WORKLOAD_OPS));
        assert!(in_flight.is_none(), "clean run must not fail");
        assert!(!model.is_empty());
        db.close();
        // Read the counter *before* power events: restore clears the plan.
        let n = fs.fault_ops();
        assert!(n > 0, "fault plan must have observed the workload");
        n
    })
}

/// Evenly samples `count` cut points across `[1, n]`.
fn sampled_cuts(n: u64, count: u64) -> Vec<u64> {
    let count = count.min(n).max(2);
    let mut cuts: Vec<u64> = (0..count).map(|j| 1 + j * (n - 1) / (count - 1)).collect();
    cuts.dedup();
    cuts
}

/// One torture iteration: identical workload, power cut at op `k`, power
/// restore, reopen under `mode`, shadow-model check. Returns the recovered
/// dump for determinism comparisons.
fn torture_once(k: u64, mode: WalRecoveryMode) -> Vec<(Vec<u8>, Vec<u8>)> {
    Runtime::new().run(move || {
        let fs = torture_fs();
        let db = Db::open(Arc::clone(&fs), torture_opts(mode)).unwrap();
        fs.set_fault_plan(FaultPlan {
            seed: WORKLOAD_SEED,
            power_cut_at_op: Some(k),
            ..FaultPlan::default()
        });
        let (acked, in_flight) = run_workload(&db, &workload(WORKLOAD_SEED, WORKLOAD_OPS));
        if !fs.is_powered_off() {
            // The cut landed in close-time (or never fired): pull the plug
            // so the recovery path still faces a dead filesystem.
            fs.power_cut();
        }
        db.close();
        fs.power_restore();
        let context = format!("cut={k} mode={}", mode.name());
        match Db::open(Arc::clone(&fs), torture_opts(mode)) {
            Ok(db2) => {
                assert_point_in_time(&db2, &acked, &in_flight, &context);
                println!(
                    "{}",
                    report::recovery_table(&context, &db2.stats().ticker_snapshot(), None)
                );
                let d = dump(&db2);
                db2.close();
                d
            }
            Err(err) => {
                // Only the strictest mode may refuse a legitimate power
                // cut, and only with a corruption verdict (the torn tail).
                assert_eq!(
                    mode,
                    WalRecoveryMode::AbsoluteConsistency,
                    "{context}: open failed: {err:?}"
                );
                assert!(err.is_corruption(), "{context}: {err:?}");
                let db2 = Db::open(
                    Arc::clone(&fs),
                    torture_opts(WalRecoveryMode::PointInTimeRecovery),
                )
                .expect("point-in-time reopen after absolute refusal");
                assert_point_in_time(&db2, &acked, &in_flight, &context);
                let d = dump(&db2);
                db2.close();
                d
            }
        }
    })
}

/// The dense sweep in the default mode: every sampled cut point must
/// recover to a point-in-time view.
#[test]
fn power_cut_sweep_recovers_point_in_time() {
    let n = learn_op_count();
    for k in sampled_cuts(n, cut_count()) {
        torture_once(k, WalRecoveryMode::PointInTimeRecovery);
    }
}

/// A sparser sweep across all four recovery modes: a pure power cut (no
/// scripted corruption) must satisfy the same point-in-time contract in
/// every mode — absolute may refuse, but never recover wrong data.
#[test]
fn power_cut_matrix_covers_all_recovery_modes() {
    let n = learn_op_count();
    let per_mode = (cut_count() / 4).max(4);
    for mode in WalRecoveryMode::ALL {
        for k in sampled_cuts(n, per_mode) {
            torture_once(k, mode);
        }
    }
}

/// Same seed, same cut point ⇒ byte-identical recovered state.
#[test]
fn recovery_is_deterministic_for_seed_and_cut() {
    let n = learn_op_count();
    for k in [n / 3, n / 2] {
        let a = torture_once(k, WalRecoveryMode::PointInTimeRecovery);
        let b = torture_once(k, WalRecoveryMode::PointInTimeRecovery);
        assert_eq!(a, b, "recovery diverged between identical runs (cut={k})");
    }
}

fn destroy_manifest(fs: &Arc<SimFs>, truncate: bool) {
    let paths: Vec<String> = fs
        .list("db/")
        .into_iter()
        .filter(|p| p.contains("MANIFEST") || p.ends_with("CURRENT"))
        .collect();
    assert!(!paths.is_empty(), "no manifest to destroy");
    for path in paths {
        if truncate && path.contains("MANIFEST") {
            // SimFs has no truncate: rewrite the file as a half-length
            // prefix, emulating a crash mid-append.
            let h = fs.open(&path).unwrap();
            let keep = (h.len() / 2) as usize;
            let prefix = h.read_at(0, keep).unwrap();
            drop(h);
            fs.delete(&path).unwrap();
            let h = fs.create(&path).unwrap();
            if !prefix.is_empty() {
                h.append(&prefix).unwrap();
            }
            h.sync().unwrap();
        } else {
            fs.delete(&path).unwrap();
        }
    }
}

/// MANIFEST is the casualty: after the cut the test deletes it outright,
/// so a plain reopen would start an empty database — `repair_db` must
/// instead rebuild a version from the surviving SSTs and logs that still
/// contains every acknowledged write.
#[test]
fn repair_restores_acked_writes_after_manifest_destruction() {
    let n = learn_op_count();
    for k in sampled_cuts(n, 6) {
        Runtime::new().run(move || {
            let fs = torture_fs();
            let opts = torture_opts(WalRecoveryMode::PointInTimeRecovery);
            let db = Db::open(Arc::clone(&fs), opts.clone()).unwrap();
            fs.set_fault_plan(FaultPlan {
                seed: WORKLOAD_SEED,
                power_cut_at_op: Some(k),
                ..FaultPlan::default()
            });
            let (acked, in_flight) = run_workload(&db, &workload(WORKLOAD_SEED, WORKLOAD_OPS));
            if !fs.is_powered_off() {
                fs.power_cut();
            }
            db.close();
            fs.power_restore();
            destroy_manifest(&fs, false);
            let report = repair_db(Arc::clone(&fs), &opts).expect("repair after manifest loss");
            assert!(
                report.tables() > 0 || acked.is_empty(),
                "cut={k}: repair salvaged nothing from a non-empty workload"
            );
            let db2 = Db::open(Arc::clone(&fs), opts.clone())
                .expect("second open after repair must succeed");
            report.record(db2.stats());
            assert_eq!(
                db2.stats().ticker(Ticker::RepairSstsRecovered),
                report.tables() as u64
            );
            assert_point_in_time(&db2, &acked, &in_flight, &format!("repair cut={k}"));
            println!(
                "{}",
                report::recovery_table(
                    &format!("repair cut={k}"),
                    &db2.stats().ticker_snapshot(),
                    Some(&report),
                )
            );
            db2.close();
        });
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(8))]

    /// Satellite: arbitrary seed and cut point, MANIFEST deleted *or*
    /// truncated mid-record, optionally a random subset of WALs deleted
    /// too — `repair_db` must always produce an openable database; when
    /// the WALs survive, every durably-synced key must be readable, and in
    /// all cases nothing is fabricated (every recovered value was actually
    /// written to that key at some point).
    #[test]
    fn repair_survives_arbitrary_cut_and_manifest_damage(
        seed in 0u64..1_000u64,
        cut in 50u64..4_000u64,
        truncate in proptest::strategies::bool::ANY,
        drop_wals in proptest::strategies::bool::ANY,
    ) {
        Runtime::new().run(move || {
            let fs = torture_fs();
            let opts = torture_opts(WalRecoveryMode::PointInTimeRecovery);
            let db = Db::open(Arc::clone(&fs), opts.clone()).unwrap();
            fs.set_fault_plan(FaultPlan {
                seed,
                power_cut_at_op: Some(cut),
                ..FaultPlan::default()
            });
            let ops = workload(seed, 250);
            // Every value ever sent toward a key, acked or in flight: the
            // universe recovered values must come from.
            let mut history: HashMap<String, HashSet<String>> = HashMap::new();
            for op in &ops {
                if let Op::Put(k, v) = op {
                    history.entry(k.clone()).or_default().insert(v.clone());
                }
            }
            let (acked, in_flight) = run_workload(&db, &ops);
            if !fs.is_powered_off() {
                fs.power_cut();
            }
            db.close();
            fs.power_restore();
            destroy_manifest(&fs, truncate);
            if drop_wals {
                // Delete every other surviving log: repair must still
                // produce a usable (if lossy) database.
                for (i, path) in fs
                    .list("db/")
                    .into_iter()
                    .filter(|p| p.ends_with(".log"))
                    .enumerate()
                {
                    if i % 2 == 0 {
                        fs.delete(&path).unwrap();
                    }
                }
            }
            repair_db(Arc::clone(&fs), &opts).expect("repair must not fail");
            let db2 = Db::open(Arc::clone(&fs), opts.clone()).expect("open after repair");
            let got = dump_as_model(&db2);
            if !drop_wals {
                assert_point_in_time(
                    &db2,
                    &acked,
                    &in_flight,
                    &format!("proptest seed={seed} cut={cut} truncate={truncate}"),
                );
            }
            for (k, v) in &got {
                assert!(
                    history.get(k).is_some_and(|vals| vals.contains(v)),
                    "fabricated value recovered: {k}={v} \
                     (seed={seed} cut={cut} truncate={truncate} drop_wals={drop_wals})"
                );
            }
            db2.close();
        });
    }
}
