//! # xlsm-suite — facade for the `xlsm` storage-evolution study
//!
//! Re-exports every layer of the workspace so examples and integration tests
//! can depend on a single crate:
//!
//! * [`sim`] — deterministic virtual-time runtime ([`xlsm_sim`])
//! * [`device`] — simulated SSD/NVM devices ([`xlsm_device`])
//! * [`simfs`] — in-memory filesystem over devices ([`xlsm_simfs`])
//! * [`engine`] — the LSM-tree key-value store ([`xlsm_engine`])
//! * [`workload`] — db_bench-equivalent harness ([`xlsm_workload`])
//! * [`study`] — the paper's analyses and case studies ([`xlsm_core`])
//!
//! See the repository README for a quickstart.

pub use xlsm_core as study;
pub use xlsm_device as device;
pub use xlsm_engine as engine;
pub use xlsm_sim as sim;
pub use xlsm_simfs as simfs;
pub use xlsm_workload as workload;
