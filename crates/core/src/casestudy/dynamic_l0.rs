//! Case study V-B: **dynamic Level-0 management**.
//!
//! Finding #2's tradeoff: fewer/larger Level-0 files reduce READ latency
//! (fewer per-file probes), while smaller files reduce WRITE latency
//! (cheaper skiplist inserts into a smaller memtable). With the aggregate
//! Level-0 volume held constant, this manager watches the read/write ratio
//! online and retargets the memtable size (which sets the L0 file size):
//!
//! * write-intensive (> `write_intensive_threshold` writes) → many small
//!   files (`aggregate / files_when_write_heavy`);
//! * read-intensive → few large files (`aggregate / files_when_read_heavy`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xlsm_engine::{Db, Ticker};
use xlsm_sim::JoinHandle;

/// Configuration for [`DynamicL0Manager`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicL0Config {
    /// Total Level-0 volume to split into files (bytes).
    pub aggregate_l0_bytes: u64,
    /// File count when the workload is write-intensive (paper: 24).
    pub files_when_write_heavy: u64,
    /// File count when the workload is read-intensive (paper: 6).
    pub files_when_read_heavy: u64,
    /// A workload is write-intensive when its write fraction exceeds this
    /// (paper: 0.25).
    pub write_intensive_threshold: f64,
    /// Sampling interval in virtual nanoseconds.
    pub sample_interval_nanos: u64,
}

impl Default for DynamicL0Config {
    fn default() -> DynamicL0Config {
        DynamicL0Config {
            aggregate_l0_bytes: 24 * (2 << 20) / 4, // 24 quarter-scale files
            files_when_write_heavy: 24,
            files_when_read_heavy: 6,
            write_intensive_threshold: 0.25,
            sample_interval_nanos: 200_000_000, // 200 ms
        }
    }
}

/// The online manager: a background sim thread that watches the observed
/// read/write mix and retargets [`Db::set_write_buffer_size`].
pub struct DynamicL0Manager {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<(u64, usize)>>>,
}

impl std::fmt::Debug for DynamicL0Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicL0Manager").finish_non_exhaustive()
    }
}

impl DynamicL0Manager {
    /// Computes the target memtable size for an observed write fraction.
    pub fn target_bytes(cfg: &DynamicL0Config, write_fraction: f64) -> usize {
        let files = if write_fraction > cfg.write_intensive_threshold {
            cfg.files_when_write_heavy
        } else {
            cfg.files_when_read_heavy
        };
        (cfg.aggregate_l0_bytes / files.max(1)) as usize
    }

    /// The target L0 file-count (and compaction trigger) for an observed
    /// write fraction.
    pub fn target_files(cfg: &DynamicL0Config, write_fraction: f64) -> u64 {
        if write_fraction > cfg.write_intensive_threshold {
            cfg.files_when_write_heavy
        } else {
            cfg.files_when_read_heavy
        }
    }

    /// Starts managing `db`. Returns the manager handle; call
    /// [`DynamicL0Manager::stop`] before closing the database.
    ///
    /// The manager holds the *aggregate* Level-0 volume constant: a
    /// write-intensive phase gets many small files (cheap memtable inserts,
    /// fewer compaction runs), a read-intensive phase gets few large files
    /// (fewer per-file probes on the read path) — Section V-B.
    pub fn start(db: Arc<Db>, cfg: DynamicL0Config) -> DynamicL0Manager {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = xlsm_sim::spawn("dynamic-l0", move || {
            let mut decisions = Vec::new();
            let mut last_gets = db.stats().ticker(Ticker::Gets);
            let mut last_puts = db.stats().ticker(Ticker::Puts);
            while !stop2.load(Ordering::Relaxed) {
                xlsm_sim::sleep_nanos(cfg.sample_interval_nanos);
                let gets = db.stats().ticker(Ticker::Gets);
                let puts = db.stats().ticker(Ticker::Puts);
                let dg = gets - last_gets;
                let dp = puts - last_puts;
                last_gets = gets;
                last_puts = puts;
                if dg + dp == 0 {
                    continue;
                }
                let wf = dp as f64 / (dg + dp) as f64;
                let target = Self::target_bytes(&cfg, wf);
                let files = Self::target_files(&cfg, wf) as usize;
                if target != db.write_buffer_size() || files != db.l0_compaction_trigger() {
                    db.set_write_buffer_size(target);
                    db.set_l0_compaction_trigger(files);
                    decisions.push((xlsm_sim::now_nanos(), target));
                }
            }
            decisions
        });
        DynamicL0Manager {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the manager; returns the `(time, target_bytes)` decision log.
    pub fn stop(mut self) -> Vec<(u64, usize)> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.take().expect("stopped twice").join()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_engine::DbOptions;
    use xlsm_sim::Runtime;
    use xlsm_simfs::{FsOptions, SimFs};

    #[test]
    fn target_bytes_follows_ratio() {
        let cfg = DynamicL0Config {
            aggregate_l0_bytes: 24 << 20,
            ..DynamicL0Config::default()
        };
        let write_heavy = DynamicL0Manager::target_bytes(&cfg, 0.9);
        let read_heavy = DynamicL0Manager::target_bytes(&cfg, 0.1);
        assert_eq!(write_heavy, 1 << 20); // 24 MiB / 24 files
        assert_eq!(read_heavy, 4 << 20); // 24 MiB / 6 files
                                         // Boundary: exactly at the threshold counts as read-intensive.
        assert_eq!(DynamicL0Manager::target_bytes(&cfg, 0.25), read_heavy);
    }

    #[test]
    fn manager_adapts_live_database() {
        Runtime::new().run(|| {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let db = Arc::new(
                Db::open(
                    fs,
                    DbOptions {
                        write_buffer_size: 256 << 10,
                        ..DbOptions::default()
                    },
                )
                .unwrap(),
            );
            let cfg = DynamicL0Config {
                aggregate_l0_bytes: 24 << 20,
                sample_interval_nanos: 50_000_000,
                ..DynamicL0Config::default()
            };
            let mgr = DynamicL0Manager::start(Arc::clone(&db), cfg);
            // Read-heavy phase: mostly gets.
            db.put(b"k", b"v").unwrap();
            for _ in 0..50 {
                let _ = db.get(b"k").unwrap();
            }
            xlsm_sim::sleep_nanos(60_000_000);
            assert_eq!(
                db.write_buffer_size(),
                4 << 20,
                "read-heavy → large memtable"
            );
            // Write-heavy phase.
            for i in 0..60u32 {
                db.put(format!("w{i}").as_bytes(), b"v").unwrap();
            }
            xlsm_sim::sleep_nanos(60_000_000);
            assert_eq!(
                db.write_buffer_size(),
                1 << 20,
                "write-heavy → small memtable"
            );
            let log = mgr.stop();
            assert!(log.len() >= 2);
            db.close();
        });
    }
}
