//! Case study V-A: **two-stage throttling** removes the near-stop situation.
//!
//! The original policy jumps straight from "no throttling" to the full
//! adaptive Algorithm 1 at `level0_slowdown_writes_trigger`, letting the
//! adaptive rate spiral down to a few kop/s during periodic write bursts
//! (the "flash of crowd" near-stop in Fig. 5/18). The two-stage variant:
//!
//! * **Stage 1 — slight throttling**: at the slowdown trigger, rate-limit
//!   conservatively, never below a user-set floor (`min_rate`).
//! * **Stage 2 — aggressive throttling**: only when L0 grows past
//!   `(slowdown_threshold + stop_threshold) / 2` does the full Algorithm 1
//!   adaptation apply.

use xlsm_engine::controller::{StallLevel, StallSignals, ThrottlePolicy};
use xlsm_engine::options::DbOptions;

/// The two-stage policy of Section V-A.
#[derive(Clone, Copy, Debug)]
pub struct TwoStageThrottlePolicy {
    /// Stage-1 rate floor in bytes/s ("the maximum acceptable
    /// delayed_write_rate").
    pub min_rate: u64,
}

impl TwoStageThrottlePolicy {
    /// Creates the policy with the given stage-1 floor.
    pub fn new(min_rate: u64) -> TwoStageThrottlePolicy {
        TwoStageThrottlePolicy { min_rate }
    }

    /// The stage-2 threshold: `(slowdown + stop) / 2`.
    pub fn stage2_threshold(opts: &DbOptions) -> usize {
        (opts.level0_slowdown_writes_trigger + opts.level0_stop_writes_trigger) / 2
    }
}

impl ThrottlePolicy for TwoStageThrottlePolicy {
    fn evaluate(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel {
        if sig.memtables >= opts.max_write_buffer_number {
            return StallLevel::Stop;
        }
        if sig.l0_files >= opts.level0_stop_writes_trigger {
            return StallLevel::Stop;
        }
        if sig.l0_files >= Self::stage2_threshold(opts) {
            return StallLevel::Delay;
        }
        if sig.l0_files >= opts.level0_slowdown_writes_trigger {
            return StallLevel::GentleDelay {
                min_rate: self.min_rate,
            };
        }
        StallLevel::Clear
    }

    fn name(&self) -> &'static str {
        "two-stage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(l0: usize) -> StallSignals {
        StallSignals {
            l0_files: l0,
            memtables: 1,
            ..StallSignals::default()
        }
    }

    #[test]
    fn stages_follow_thresholds() {
        let opts = DbOptions::default(); // slowdown 20, stop 36 → stage2 at 28
        let p = TwoStageThrottlePolicy::new(8 << 20);
        assert_eq!(p.evaluate(&sig(10), &opts), StallLevel::Clear);
        assert_eq!(
            p.evaluate(&sig(20), &opts),
            StallLevel::GentleDelay { min_rate: 8 << 20 }
        );
        assert_eq!(
            p.evaluate(&sig(27), &opts),
            StallLevel::GentleDelay { min_rate: 8 << 20 }
        );
        assert_eq!(p.evaluate(&sig(28), &opts), StallLevel::Delay);
        assert_eq!(p.evaluate(&sig(36), &opts), StallLevel::Stop);
    }

    #[test]
    fn memtable_pressure_still_stops() {
        let opts = DbOptions::default();
        let p = TwoStageThrottlePolicy::new(1);
        // Stops when the unflushed memtable count reaches the maximum.
        let s = StallSignals {
            l0_files: 0,
            memtables: 2,
            ..StallSignals::default()
        };
        assert_eq!(p.evaluate(&s, &opts), StallLevel::Stop);
    }

    #[test]
    fn stage2_threshold_matches_paper_formula() {
        let opts = DbOptions::default();
        assert_eq!(TwoStageThrottlePolicy::stage2_threshold(&opts), 28);
    }
}
