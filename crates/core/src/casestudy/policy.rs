//! The **stability-policy family**: one enum naming every performance-
//! stability intervention studied by the suite, so the benches and figure
//! harnesses can sweep them uniformly.
//!
//! The paper's two case-study mechanisms (two-stage throttling of V-A and
//! dynamic Level-0 management of V-B) attack write-stall instability from
//! the *foreground* side — pacing writers or resizing the memtable. The
//! scheduler work re-expresses them as members of a wider family that also
//! includes *background* interventions: which level the compactor services
//! next ([`xlsm_engine::scheduler::CompactionScheduler`]) and how fast the
//! background I/O may run ([`xlsm_engine::scheduler::BgIoLimiter`]).
//!
//! Each variant knows how to configure a fresh database
//! ([`StabilityPolicy::apply`]) and, for policies that need a live
//! companion thread, how to attach one ([`StabilityPolicy::attach`]).

use std::sync::Arc;
use xlsm_engine::{Db, DbOptions, FairScheduler, GreedyScheduler, RoundRobinScheduler};

use super::dynamic_l0::{DynamicL0Config, DynamicL0Manager};
use super::two_stage::TwoStageThrottlePolicy;

/// Background I/O budget granted to the [`StabilityPolicy::Fair`] variant,
/// in bytes per second of virtual time. Chosen to sit above the steady
/// compaction demand of the scaled testbeds on every device (so the mean
/// throughput stays within a few percent of greedy) while clipping the
/// bursts where flush and compaction I/O gang up on the device at once.
/// Auto-tuning scales it up with measured compaction debt (to 4× under
/// sustained pressure), so a temporarily undersized budget self-corrects
/// instead of wedging the LSM.
pub const FAIR_BG_IO_RATE: u64 = 256 << 20;

/// Stage-1 rate floor handed to [`TwoStageThrottlePolicy`] (bytes/s),
/// matching the value used by the V-A case-study harness.
pub const TWO_STAGE_MIN_RATE: u64 = 8 << 20;

/// One member of the stability-policy family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StabilityPolicy {
    /// Baseline: greedy max-score compaction picking, unlimited background
    /// I/O, the stock Algorithm-1 write controller.
    Greedy,
    /// Round-robin compaction picking across eligible levels; otherwise the
    /// baseline configuration.
    RoundRobin,
    /// Deficit-based fair compaction picking **plus** the shared
    /// background-I/O budget with flush priority and debt-scaled
    /// auto-tuning — the full scheduler-side intervention.
    Fair,
    /// Case study V-A: two-stage throttling (foreground-side), greedy
    /// compaction picking.
    TwoStage,
    /// Case study V-B: dynamic Level-0 management (foreground-side), greedy
    /// compaction picking. Requires [`StabilityPolicy::attach`] on the open
    /// database.
    DynamicL0,
}

impl StabilityPolicy {
    /// Every member, in the order the stability tables report them.
    pub const ALL: [StabilityPolicy; 5] = [
        StabilityPolicy::Greedy,
        StabilityPolicy::RoundRobin,
        StabilityPolicy::Fair,
        StabilityPolicy::TwoStage,
        StabilityPolicy::DynamicL0,
    ];

    /// Stable identifier used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            StabilityPolicy::Greedy => "greedy",
            StabilityPolicy::RoundRobin => "round-robin",
            StabilityPolicy::Fair => "fair",
            StabilityPolicy::TwoStage => "two-stage",
            StabilityPolicy::DynamicL0 => "dynamic-l0",
        }
    }

    /// Configures `opts` for this policy. Builds a **fresh** scheduler for
    /// every call: schedulers are stateful (cursors, banked credits), so
    /// sharing one `Arc` across databases would leak scheduling state
    /// between runs and break run-to-run determinism.
    pub fn apply(self, opts: &mut DbOptions) {
        match self {
            StabilityPolicy::Greedy => {
                opts.compaction_scheduler = Arc::new(GreedyScheduler);
            }
            StabilityPolicy::RoundRobin => {
                opts.compaction_scheduler = Arc::new(RoundRobinScheduler::default());
            }
            StabilityPolicy::Fair => {
                opts.compaction_scheduler = Arc::new(FairScheduler::default());
                opts.bg_io_rate_bytes_per_sec = FAIR_BG_IO_RATE;
                opts.bg_io_auto_tune = true;
            }
            StabilityPolicy::TwoStage => {
                opts.compaction_scheduler = Arc::new(GreedyScheduler);
                opts.throttle_policy = Arc::new(TwoStageThrottlePolicy::new(TWO_STAGE_MIN_RATE));
            }
            StabilityPolicy::DynamicL0 => {
                opts.compaction_scheduler = Arc::new(GreedyScheduler);
            }
        }
    }

    /// Attaches any live companion the policy needs to the open database.
    /// Only [`StabilityPolicy::DynamicL0`] starts one (the V-B manager
    /// thread); every other variant is fully described by its options.
    ///
    /// The manager's geometry is derived from the database's own: the
    /// aggregate Level-0 volume is the configured trigger × memtable size,
    /// write-heavy phases keep the configured file count, read-heavy phases
    /// consolidate to a quarter of it. Deriving (rather than using the
    /// paper's absolute 24/6 split) keeps the manager's file-count targets
    /// below the stall triggers on any geometry — a target *above*
    /// `level0_stop_writes_trigger` would stop writes before compaction
    /// ever became eligible and wedge the database.
    pub fn attach(self, db: &Arc<Db>) -> PolicyRuntime {
        match self {
            StabilityPolicy::DynamicL0 => {
                let trigger = (db.l0_compaction_trigger() as u64).max(1);
                let cfg = DynamicL0Config {
                    aggregate_l0_bytes: db.write_buffer_size() as u64 * trigger,
                    files_when_write_heavy: trigger,
                    files_when_read_heavy: (trigger / 4).max(1),
                    ..DynamicL0Config::default()
                };
                PolicyRuntime(Some(DynamicL0Manager::start(Arc::clone(db), cfg)))
            }
            _ => PolicyRuntime(None),
        }
    }
}

/// A running policy companion; [`PolicyRuntime::stop`] it before closing
/// the database.
#[derive(Debug)]
pub struct PolicyRuntime(Option<DynamicL0Manager>);

impl PolicyRuntime {
    /// Stops the companion thread, if any.
    pub fn stop(self) {
        if let Some(mgr) = self.0 {
            let _ = mgr.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_installs_the_named_scheduler() {
        for policy in StabilityPolicy::ALL {
            let mut opts = DbOptions::default();
            policy.apply(&mut opts);
            let expect = match policy {
                StabilityPolicy::RoundRobin => "round-robin",
                StabilityPolicy::Fair => "fair",
                _ => "greedy",
            };
            assert_eq!(opts.compaction_scheduler.name(), expect, "{policy:?}");
        }
    }

    #[test]
    fn only_fair_enables_the_io_budget() {
        for policy in StabilityPolicy::ALL {
            let mut opts = DbOptions::default();
            policy.apply(&mut opts);
            if policy == StabilityPolicy::Fair {
                assert_eq!(opts.bg_io_rate_bytes_per_sec, FAIR_BG_IO_RATE);
                assert!(opts.bg_io_auto_tune);
            } else {
                assert_eq!(opts.bg_io_rate_bytes_per_sec, 0);
                assert!(!opts.bg_io_auto_tune);
            }
            opts.validate().expect("policy options must validate");
        }
    }

    #[test]
    fn two_stage_installs_the_case_study_throttle() {
        let mut opts = DbOptions::default();
        StabilityPolicy::TwoStage.apply(&mut opts);
        assert_eq!(opts.throttle_policy.name(), "two-stage");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = StabilityPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), StabilityPolicy::ALL.len());
    }
}
