//! Case study V-C: **NVM-resident logging**.
//!
//! The WAL is small but sits on every write's critical path (Finding #4).
//! The paper emulates a byte-addressable NVM with tmpfs and moves only the
//! WAL there, cutting the p90 write tail by 18.8 % while the dataset stays
//! on the SSD. Here the "tmpfs" is an [`xlsm_device`] NVM profile carrying
//! its own filesystem, plugged into [`DbOptions::wal_fs`].

use std::sync::Arc;
use xlsm_device::{profiles, SimDevice};
use xlsm_engine::DbOptions;
use xlsm_simfs::{FsOptions, SimFs};

/// WAL placement for the logging experiments (Figs. 17 and 20).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalPlacement {
    /// WAL on the same device as the data (RocksDB default).
    SameDevice,
    /// WAL on a dedicated byte-addressable NVM device.
    Nvm,
    /// WAL disabled entirely (db_bench `--disable_wal`).
    Disabled,
}

impl WalPlacement {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WalPlacement::SameDevice => "wal-on-ssd",
            WalPlacement::Nvm => "wal-on-nvm",
            WalPlacement::Disabled => "wal-disabled",
        }
    }
}

/// Applies `placement` to `opts`, creating the NVM filesystem when needed.
/// Returns the adjusted options and the NVM filesystem (if any) so callers
/// can inspect its device stats.
pub fn apply_wal_placement(
    mut opts: DbOptions,
    placement: WalPlacement,
) -> (DbOptions, Option<Arc<SimFs>>) {
    match placement {
        WalPlacement::SameDevice => {
            opts.enable_wal = true;
            opts.wal_fs = None;
            (opts, None)
        }
        WalPlacement::Nvm => {
            let nvm = SimFs::new(
                SimDevice::shared(profiles::nvm_dram()),
                FsOptions {
                    // The NVM log area is small and uncached-in-DRAM is
                    // meaningless for byte-addressable memory: give it a
                    // page cache covering the whole device.
                    page_cache_pages: 64 << 10,
                    ..FsOptions::default()
                },
            );
            opts.enable_wal = true;
            opts.wal_fs = Some(Arc::clone(&nvm));
            (opts, Some(nvm))
        }
        WalPlacement::Disabled => {
            opts.enable_wal = false;
            opts.wal_fs = None;
            (opts, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_engine::Db;
    use xlsm_sim::Runtime;

    #[test]
    fn placement_adjusts_options() {
        // Creating the NVM filesystem spawns its writeback daemon, so this
        // must run inside a sim runtime.
        Runtime::new().run(|| {
            let base = DbOptions::default();
            let (same, none) = apply_wal_placement(base.clone(), WalPlacement::SameDevice);
            assert!(same.enable_wal && same.wal_fs.is_none() && none.is_none());
            let (nvm, fs) = apply_wal_placement(base.clone(), WalPlacement::Nvm);
            assert!(nvm.enable_wal && nvm.wal_fs.is_some() && fs.is_some());
            let (off, _) = apply_wal_placement(base, WalPlacement::Disabled);
            assert!(!off.enable_wal);
        });
    }

    #[test]
    fn wal_lands_on_nvm_device() {
        Runtime::new().run(|| {
            let data_fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let (opts, nvm_fs) = apply_wal_placement(
                DbOptions {
                    wal_sync: true, // force WAL traffic to the device
                    ..DbOptions::default()
                },
                WalPlacement::Nvm,
            );
            let nvm_fs = nvm_fs.unwrap();
            let db = Db::open(Arc::clone(&data_fs), opts).unwrap();
            for i in 0..50u32 {
                db.put(format!("k{i}").as_bytes(), b"value").unwrap();
            }
            assert!(
                nvm_fs.device().stats().writes > 0,
                "WAL syncs must hit the NVM device"
            );
            // Data files (none flushed yet) have produced no SSD writes.
            db.flush().unwrap();
            assert!(data_fs.device().stats().writes > 0, "SSTs go to the SSD");
            db.close();
        });
    }

    #[test]
    fn nvm_wal_is_faster_than_sata_wal_when_synced() {
        // With per-commit WAL sync, the device under the log dominates
        // write latency; NVM must beat SATA flash by a wide margin.
        fn p90_write(placement: WalPlacement) -> u64 {
            Runtime::new().run(move || {
                let data_fs = SimFs::new(
                    SimDevice::shared(profiles::intel_530_sata()),
                    FsOptions::default(),
                );
                let (opts, _nvm) = apply_wal_placement(
                    DbOptions {
                        wal_sync: true,
                        ..DbOptions::default()
                    },
                    placement,
                );
                let db = Db::open(data_fs, opts).unwrap();
                for i in 0..200u32 {
                    db.put(format!("key{i:06}").as_bytes(), &[0u8; 256])
                        .unwrap();
                }
                let p90 = db.stats().write_latency.quantile(0.9);
                db.close();
                p90
            })
        }
        let sata = p90_write(WalPlacement::SameDevice);
        let nvm = p90_write(WalPlacement::Nvm);
        assert!(
            nvm * 3 < sata,
            "synced NVM WAL p90 ({nvm} ns) should be far below SATA ({sata} ns)"
        );
    }
}
