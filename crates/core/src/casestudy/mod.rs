//! The three case studies of Section V.

pub mod dynamic_l0;
pub mod nvm_wal;
pub mod two_stage;
