//! The three case studies of Section V, plus the [`policy`] module that
//! folds them into one sweepable stability-policy family alongside the
//! scheduler-side interventions.

pub mod dynamic_l0;
pub mod nvm_wal;
pub mod policy;
pub mod two_stage;
