//! Testbed assembly: device → filesystem → engine with the study's scaled
//! geometry (see `DESIGN.md` §1, "Scaling substitution").

use std::sync::Arc;
use xlsm_device::{Device, DeviceProfile, SimDevice};
use xlsm_engine::{Db, DbOptions, DbResult};
use xlsm_simfs::{FsOptions, SimFs};

/// Fraction of the dataset the OS page cache covers (paper: 8 GB RAM for a
/// ~100 GB dataset ≈ 8 %).
pub const CACHE_FRACTION: f64 = 0.08;

/// Filesystem options scaled to a dataset size: the page cache covers
/// [`CACHE_FRACTION`] of it, mirroring the paper's memory-to-data ratio.
pub fn scaled_fs_options(dataset_bytes: u64) -> FsOptions {
    let pages = ((dataset_bytes as f64 * CACHE_FRACTION) / 4096.0) as usize;
    FsOptions {
        page_cache_pages: pages.max(1024),
        ..FsOptions::default()
    }
}

/// Engine options at the study's scaled geometry (2 MiB memtables standing
/// in for the paper's 64 MB, etc.). Figure harnesses override single knobs
/// from here.
pub fn scaled_db_options() -> DbOptions {
    DbOptions::default()
}

/// A complete experiment stack on one simulated device.
pub struct Testbed {
    /// The simulated SSD.
    pub device: Arc<SimDevice>,
    /// The filesystem over it.
    pub fs: Arc<SimFs>,
    /// The database.
    pub db: Arc<Db>,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("device", &self.device.profile().name)
            .finish_non_exhaustive()
    }
}

impl Testbed {
    /// Builds a testbed on `profile` with `opts`, sizing the page cache for
    /// `dataset_bytes`. Must run inside a sim runtime.
    ///
    /// # Errors
    ///
    /// Database open failures.
    pub fn new(profile: DeviceProfile, opts: DbOptions, dataset_bytes: u64) -> DbResult<Testbed> {
        let device = SimDevice::shared(profile);
        let fs = SimFs::new(
            Arc::clone(&device) as Arc<dyn Device>,
            scaled_fs_options(dataset_bytes),
        );
        let db = Arc::new(Db::open(Arc::clone(&fs), opts)?);
        Ok(Testbed { device, fs, db })
    }

    /// Closes the database (joins background workers).
    pub fn close(&self) {
        self.db.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_device::profiles;
    use xlsm_sim::Runtime;

    #[test]
    fn fs_options_scale_with_dataset() {
        let small = scaled_fs_options(64 << 20);
        // 8 % of 64 MiB = 5.24 MiB ≈ 1342 pages.
        assert!((1300..1400).contains(&small.page_cache_pages));
        let big = scaled_fs_options(1 << 30);
        assert!(big.page_cache_pages > small.page_cache_pages);
        // Floor for tiny datasets.
        assert_eq!(scaled_fs_options(1024).page_cache_pages, 1024);
    }

    #[test]
    fn testbed_builds_and_serves() {
        Runtime::new().run(|| {
            let tb = Testbed::new(profiles::optane_900p(), scaled_db_options(), 64 << 20).unwrap();
            tb.db.put(b"k", b"v").unwrap();
            assert_eq!(tb.db.get(b"k").unwrap(), Some(b"v".to_vec()));
            use xlsm_device::Device;
            assert_eq!(tb.device.profile().name, "optane-900p");
            let _ = tb.fs.stats();
            tb.close();
        });
    }
}
