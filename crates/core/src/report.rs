//! Plain-text tables and TSV emission for the figure harnesses.

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use xlsm_engine::{StallEvent, StallTotals};

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Writes the table as TSV (with a `#` title line) to `path`, creating
    /// parent directories.
    ///
    /// # Errors
    ///
    /// I/O errors from the host filesystem.
    pub fn write_tsv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with the given precision (helper for figure rows).
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Builds the per-mechanism write-time attribution table from the engine's
/// stall-accounting totals: one row per component (queue wait, WAL append,
/// pipeline wait, memtable insert, delay pacing, stop wait), each with its
/// total time and
/// share of observed end-to-end write latency, plus the unattributed
/// remainder and the coverage summary the reconciliation tests assert on.
pub fn stall_breakdown_table(title: &str, t: &StallTotals) -> Table {
    let mut table = Table::new(title, &["component", "total_ms", "pct_of_write_time"]);
    let total = t.total_write_ns;
    let pct = |ns: u64| {
        if total == 0 {
            0.0
        } else {
            ns as f64 * 100.0 / total as f64
        }
    };
    for (name, ns) in [
        ("queue-wait", t.queue_wait_ns),
        ("wal-append", t.wal_append_ns),
        ("pipeline-wait", t.pipeline_wait_ns),
        ("memtable-insert", t.memtable_insert_ns),
        ("delay-sleep", t.delay_sleep_ns),
        ("stop-wait", t.stop_wait_ns),
    ] {
        table.row(vec![name.into(), f(ms(ns), 3), f(pct(ns), 1)]);
    }
    let unattributed = total.saturating_sub(t.accounted_ns());
    table.row(vec![
        "unattributed".into(),
        f(ms(unattributed), 3),
        f(pct(unattributed), 1),
    ]);
    table.row(vec!["total-observed".into(), f(ms(total), 3), f(100.0, 1)]);
    table.row(vec![
        "ops".into(),
        t.ops.to_string(),
        format!("coverage={:.3}", t.coverage()),
    ]);
    table
}

/// Builds the Fig. 6/7-style stall timeline from the controller-transition
/// event log: one row per transition with the virtual time, the level moved
/// to (and from), the trigger cause, the time spent at the previous level,
/// and the LSM shape (L0 files, memtables, adaptive rate) at the moment of
/// the transition.
pub fn stall_timeline_table(title: &str, events: &[StallEvent]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "t_s",
            "level",
            "prev_level",
            "cause",
            "prev_level_ms",
            "l0_files",
            "memtables",
            "rate_mb_s",
        ],
    );
    for ev in events {
        table.row(vec![
            f(ev.at as f64 / 1e9, 3),
            ev.level.name().into(),
            ev.prev_level.name().into(),
            ev.cause.to_string(),
            f(ms(ev.duration), 3),
            ev.l0_files.to_string(),
            ev.memtables.to_string(),
            f(ev.rate as f64 / (1 << 20) as f64, 2),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", &["device", "kops"]);
        t.row(vec!["sata-flash".into(), f(26.0, 1)]);
        t.row(vec!["3d-xpoint".into(), f(408.12, 1)]);
        let s = t.to_string();
        assert!(s.contains("Fig X"));
        assert!(s.contains("sata-flash"));
        assert!(s.contains("408.1"));
    }

    #[test]
    fn stall_breakdown_rows_attribute_write_time() {
        let t = StallTotals {
            ops: 4,
            total_write_ns: 1_000_000,
            queue_wait_ns: 400_000,
            wal_append_ns: 60_000,
            pipeline_wait_ns: 40_000,
            memtable_insert_ns: 100_000,
            delay_sleep_ns: 200_000,
            stop_wait_ns: 100_000,
            events_pushed: 0,
            events_dropped: 0,
        };
        let table = stall_breakdown_table("breakdown", &t);
        // 6 components + unattributed + total + ops summary.
        assert_eq!(table.rows.len(), 9);
        let row = |name: &str| {
            table
                .rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
                .clone()
        };
        assert_eq!(row("queue-wait")[2], "40.0");
        assert_eq!(row("delay-sleep")[2], "20.0");
        assert_eq!(row("unattributed")[1], "0.100"); // 100 µs unexplained
        assert_eq!(row("ops")[1], "4");
        assert!(row("ops")[2].starts_with("coverage=0.9"));
    }

    #[test]
    fn stall_breakdown_handles_empty_totals() {
        let table = stall_breakdown_table("empty", &StallTotals::default());
        assert!(table.rows.iter().all(|r| r[2] != "NaN"));
    }

    #[test]
    fn stall_timeline_rows_follow_events() {
        use xlsm_engine::controller::StallLevel;
        use xlsm_engine::StallCause;
        let events = vec![
            StallEvent {
                at: 1_500_000_000,
                cause: StallCause::L0Slowdown,
                level: StallLevel::Delay,
                prev_level: StallLevel::Clear,
                duration: 250_000_000,
                l0_files: 21,
                memtables: 1,
                rate: 16 << 20,
            },
            StallEvent {
                at: 2_000_000_000,
                cause: StallCause::Cleared,
                level: StallLevel::Clear,
                prev_level: StallLevel::Delay,
                duration: 500_000_000,
                l0_files: 3,
                memtables: 1,
                rate: 16 << 20,
            },
        ];
        let table = stall_timeline_table("timeline", &events);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(
            table.rows[0],
            vec![
                "1.500",
                "delay",
                "clear",
                "l0-slowdown",
                "250.000",
                "21",
                "1",
                "16.00"
            ]
        );
        assert_eq!(table.rows[1][3], "cleared");
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("Fig Y", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("xlsm-report-test");
        let path = dir.join("fig_y.tsv");
        t.write_tsv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "# Fig Y\na\tb\n1\t2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
