//! Plain-text tables and TSV emission for the figure harnesses.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Writes the table as TSV (with a `#` title line) to `path`, creating
    /// parent directories.
    ///
    /// # Errors
    ///
    /// I/O errors from the host filesystem.
    pub fn write_tsv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with the given precision (helper for figure rows).
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", &["device", "kops"]);
        t.row(vec!["sata-flash".into(), f(26.0, 1)]);
        t.row(vec!["3d-xpoint".into(), f(408.12, 1)]);
        let s = t.to_string();
        assert!(s.contains("Fig X"));
        assert!(s.contains("sata-flash"));
        assert!(s.contains("408.1"));
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("Fig Y", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("xlsm-report-test");
        let path = dir.join("fig_y.tsv");
        t.write_tsv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "# Fig Y\na\tb\n1\t2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
