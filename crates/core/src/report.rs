//! Plain-text tables and TSV emission for the figure harnesses.

use std::fmt;
use std::io::Write as _;
use std::path::Path;
use xlsm_engine::{RepairReport, StallEvent, StallTotals, Ticker, TickerSnapshot};

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Writes the table as TSV (with a `#` title line) to `path`, creating
    /// parent directories.
    ///
    /// # Errors
    ///
    /// I/O errors from the host filesystem.
    pub fn write_tsv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with the given precision (helper for figure rows).
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Builds the per-mechanism write-time attribution table from the engine's
/// stall-accounting totals: one row per component (queue wait, WAL append,
/// pipeline wait, memtable insert, delay pacing, stop wait), each with its
/// total time and
/// share of observed end-to-end write latency, plus the unattributed
/// remainder and the coverage summary the reconciliation tests assert on.
pub fn stall_breakdown_table(title: &str, t: &StallTotals) -> Table {
    let mut table = Table::new(title, &["component", "total_ms", "pct_of_write_time"]);
    let total = t.total_write_ns;
    let pct = |ns: u64| {
        if total == 0 {
            0.0
        } else {
            ns as f64 * 100.0 / total as f64
        }
    };
    for (name, ns) in [
        ("queue-wait", t.queue_wait_ns),
        ("wal-append", t.wal_append_ns),
        ("pipeline-wait", t.pipeline_wait_ns),
        ("memtable-insert", t.memtable_insert_ns),
        ("delay-sleep", t.delay_sleep_ns),
        ("stop-wait", t.stop_wait_ns),
    ] {
        table.row(vec![name.into(), f(ms(ns), 3), f(pct(ns), 1)]);
    }
    let unattributed = total.saturating_sub(t.accounted_ns());
    table.row(vec![
        "unattributed".into(),
        f(ms(unattributed), 3),
        f(pct(unattributed), 1),
    ]);
    table.row(vec!["total-observed".into(), f(ms(total), 3), f(100.0, 1)]);
    table.row(vec![
        "ops".into(),
        t.ops.to_string(),
        format!("coverage={:.3}", t.coverage()),
    ]);
    table
}

/// Builds the Fig. 6/7-style stall timeline from the controller-transition
/// event log: one row per transition with the virtual time, the level moved
/// to (and from), the trigger cause, the time spent at the previous level,
/// and the LSM shape (L0 files, memtables, adaptive rate) at the moment of
/// the transition.
pub fn stall_timeline_table(title: &str, events: &[StallEvent]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "t_s",
            "level",
            "prev_level",
            "cause",
            "prev_level_ms",
            "l0_files",
            "memtables",
            "rate_mb_s",
        ],
    );
    for ev in events {
        table.row(vec![
            f(ev.at as f64 / 1e9, 3),
            ev.level.name().into(),
            ev.prev_level.name().into(),
            ev.cause.to_string(),
            f(ms(ev.duration), 3),
            ev.l0_files.to_string(),
            ev.memtables.to_string(),
            f(ev.rate as f64 / (1 << 20) as f64, 2),
        ]);
    }
    table
}

/// Builds the crash-recovery accounting table: what WAL replay salvaged,
/// dropped and skipped at the last open, what the orphan sweep collected,
/// and — when a [`RepairReport`] is supplied — what `Db::repair` rebuilt.
/// This is the human-readable summary the torture harness prints per run.
pub fn recovery_table(
    title: &str,
    tickers: &TickerSnapshot,
    repair: Option<&RepairReport>,
) -> Table {
    let mut table = Table::new(title, &["event", "count"]);
    for (name, ticker) in [
        ("wal-recovered-records", Ticker::WalRecoveredRecords),
        ("wal-dropped-tail-bytes", Ticker::WalDroppedTailBytes),
        (
            "wal-skipped-corrupt-records",
            Ticker::WalSkippedCorruptRecords,
        ),
        ("orphan-files-deleted", Ticker::OrphanFilesDeleted),
        ("repair-ssts-recovered", Ticker::RepairSstsRecovered),
    ] {
        table.row(vec![name.into(), tickers.get(ticker).to_string()]);
    }
    if let Some(r) = repair {
        for (name, v) in [
            ("repair-tables-rebuilt", r.tables() as u64),
            ("repair-ssts-surviving", r.ssts_recovered as u64),
            ("repair-ssts-archived", r.ssts_discarded as u64),
            ("repair-logs-converted", r.logs_converted as u64),
            ("repair-logs-archived", r.logs_archived as u64),
            ("repair-wal-records-salvaged", r.wal_records_salvaged),
            ("repair-level0-files", r.level0_files as u64),
            ("repair-level1-files", r.level1_files as u64),
            ("repair-max-sequence", r.max_sequence),
        ] {
            table.row(vec![name.into(), v.to_string()]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig X", &["device", "kops"]);
        t.row(vec!["sata-flash".into(), f(26.0, 1)]);
        t.row(vec!["3d-xpoint".into(), f(408.12, 1)]);
        let s = t.to_string();
        assert!(s.contains("Fig X"));
        assert!(s.contains("sata-flash"));
        assert!(s.contains("408.1"));
    }

    #[test]
    fn stall_breakdown_rows_attribute_write_time() {
        let t = StallTotals {
            ops: 4,
            total_write_ns: 1_000_000,
            queue_wait_ns: 400_000,
            wal_append_ns: 60_000,
            pipeline_wait_ns: 40_000,
            memtable_insert_ns: 100_000,
            delay_sleep_ns: 200_000,
            stop_wait_ns: 100_000,
            events_pushed: 0,
            events_dropped: 0,
        };
        let table = stall_breakdown_table("breakdown", &t);
        // 6 components + unattributed + total + ops summary.
        assert_eq!(table.rows.len(), 9);
        let row = |name: &str| {
            table
                .rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
                .clone()
        };
        assert_eq!(row("queue-wait")[2], "40.0");
        assert_eq!(row("delay-sleep")[2], "20.0");
        assert_eq!(row("unattributed")[1], "0.100"); // 100 µs unexplained
        assert_eq!(row("ops")[1], "4");
        assert!(row("ops")[2].starts_with("coverage=0.9"));
    }

    #[test]
    fn stall_breakdown_handles_empty_totals() {
        let table = stall_breakdown_table("empty", &StallTotals::default());
        assert!(table.rows.iter().all(|r| r[2] != "NaN"));
    }

    #[test]
    fn stall_timeline_rows_follow_events() {
        use xlsm_engine::controller::StallLevel;
        use xlsm_engine::StallCause;
        let events = vec![
            StallEvent {
                at: 1_500_000_000,
                cause: StallCause::L0Slowdown,
                level: StallLevel::Delay,
                prev_level: StallLevel::Clear,
                duration: 250_000_000,
                l0_files: 21,
                memtables: 1,
                rate: 16 << 20,
            },
            StallEvent {
                at: 2_000_000_000,
                cause: StallCause::Cleared,
                level: StallLevel::Clear,
                prev_level: StallLevel::Delay,
                duration: 500_000_000,
                l0_files: 3,
                memtables: 1,
                rate: 16 << 20,
            },
        ];
        let table = stall_timeline_table("timeline", &events);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(
            table.rows[0],
            vec![
                "1.500",
                "delay",
                "clear",
                "l0-slowdown",
                "250.000",
                "21",
                "1",
                "16.00"
            ]
        );
        assert_eq!(table.rows[1][3], "cleared");
    }

    #[test]
    fn recovery_table_rows_follow_tickers_and_report() {
        use xlsm_engine::DbStats;
        let stats = DbStats::new();
        stats.add(Ticker::WalRecoveredRecords, 42);
        stats.add(Ticker::WalDroppedTailBytes, 17);
        stats.add(Ticker::OrphanFilesDeleted, 3);
        let repair = RepairReport {
            ssts_recovered: 4,
            logs_converted: 2,
            level0_files: 5,
            level1_files: 1,
            ..RepairReport::default()
        };
        let t = recovery_table("recovery", &stats.ticker_snapshot(), Some(&repair));
        let row = |name: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("missing row {name}"))[1]
                .clone()
        };
        assert_eq!(row("wal-recovered-records"), "42");
        assert_eq!(row("wal-dropped-tail-bytes"), "17");
        assert_eq!(row("orphan-files-deleted"), "3");
        assert_eq!(row("repair-tables-rebuilt"), "6");
        assert_eq!(row("repair-logs-converted"), "2");
        // Without a report the repair rows are absent.
        let t2 = recovery_table("recovery", &stats.ticker_snapshot(), None);
        assert_eq!(t2.rows.len(), 5);
    }

    #[test]
    fn tsv_roundtrip() {
        let mut t = Table::new("Fig Y", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("xlsm-report-test");
        let path = dir.join("fig_y.tsv");
        t.write_tsv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "# Fig Y\na\tb\n1\t2\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
