//! # xlsm-core — the ISPASS'20 study: bottleneck analyses and case studies
//!
//! This crate is the paper's *contribution* layer, sitting on top of the
//! engine/device/workload substrates:
//!
//! * [`model`] — the analytic throttling model of Section IV-A
//!   (Equations 1–2): predicted application-level throughput once the write
//!   controller engages, explaining why throttled throughput collapses to a
//!   hardware-independent level.
//! * [`casestudy::two_stage`] — case study V-A: the two-stage throttling
//!   policy that removes the near-stop situation under periodic write
//!   bursts.
//! * [`casestudy::dynamic_l0`] — case study V-B: dynamic Level-0 management
//!   that adapts memtable/L0-file size to the observed read/write ratio
//!   (+13 % throughput at 90 % reads in the paper).
//! * [`casestudy::nvm_wal`] — case study V-C: relocating the WAL to
//!   byte-addressable NVM (−18.8 % p90 write latency in the paper).
//! * [`experiment`] — testbed assembly (device → filesystem → engine) with
//!   the paper's scaled geometry, shared by every figure harness.
//! * [`report`] — table/TSV emission for the figure binaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod casestudy;
pub mod experiment;
pub mod model;
pub mod report;

pub use casestudy::dynamic_l0::DynamicL0Manager;
pub use casestudy::policy::{PolicyRuntime, StabilityPolicy};
pub use casestudy::two_stage::TwoStageThrottlePolicy;
pub use experiment::{scaled_db_options, scaled_fs_options, Testbed};
pub use model::throttled_throughput_kops;
