//! The analytic throttling model of Section IV-A (Equations 1–2).
//!
//! When the write controller engages, the application-level arrival rate
//! λ_a converges to the delayed write rate, and over a period in which one
//! write finishes (the median write latency `t`):
//!
//! ```text
//! λ_a × (refill_interval + t) = λ_s × t            (Eq. 1)
//! λ_a = t / (refill_interval + t) × λ_s            (Eq. 2)
//! ```
//!
//! With the paper's measurements (λ_s = 190 kop/s, t = 15 µs,
//! refill_interval = 1024 µs) this predicts 2.74 kop/s on the 3D XPoint SSD
//! and 1.88 kop/s on the SATA SSD — both near the observed ≈ 3 kop/s floor,
//! i.e. throttling collapses throughput to a **hardware-independent** level.

/// Algorithm 1's refill interval in microseconds.
pub const REFILL_INTERVAL_US: f64 = 1024.0;

/// Equation 2: predicted application-level throughput (kop/s) while the
/// throttling mechanism is engaged.
///
/// * `lambda_s_kops` — system-level processing capacity during compaction
///   (kop/s);
/// * `median_write_us` — median write latency `t` (µs);
/// * `refill_interval_us` — the injected delay period (µs).
pub fn throttled_throughput_kops(
    lambda_s_kops: f64,
    median_write_us: f64,
    refill_interval_us: f64,
) -> f64 {
    assert!(lambda_s_kops >= 0.0 && median_write_us > 0.0 && refill_interval_us >= 0.0);
    median_write_us / (refill_interval_us + median_write_us) * lambda_s_kops
}

/// Equation 2 with the paper's default refill interval.
pub fn throttled_throughput_default_kops(lambda_s_kops: f64, median_write_us: f64) -> f64 {
    throttled_throughput_kops(lambda_s_kops, median_write_us, REFILL_INTERVAL_US)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_xpoint_prediction() {
        // λ_s = 190 kop/s, t = 15 µs → 2.74 kop/s (Section IV-A).
        let got = throttled_throughput_default_kops(190.0, 15.0);
        assert!((got - 2.74).abs() < 0.01, "got {got}");
    }

    #[test]
    fn paper_sata_prediction() {
        // λ_s = 130 kop/s, t = 15 µs → 1.88 kop/s.
        let got = throttled_throughput_default_kops(130.0, 15.0);
        assert!((got - 1.877).abs() < 0.01, "got {got}");
    }

    #[test]
    fn hardware_independence() {
        // The key insight: a 10× faster system only helps marginally while
        // throttled, because refill_interval dominates.
        let slow = throttled_throughput_default_kops(100.0, 15.0);
        let fast = throttled_throughput_default_kops(1000.0, 15.0);
        assert!(fast / slow < 11.0);
        // Both are tiny compared to the unthrottled capacity.
        assert!(fast < 20.0);
    }

    #[test]
    fn no_refill_means_no_loss() {
        let got = throttled_throughput_kops(100.0, 15.0, 0.0);
        assert_eq!(got, 100.0);
    }
}
