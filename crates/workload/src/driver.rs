//! Closed-loop workload driver.

use crate::keys::{thread_rng, KeySpace, ValueGenerator, Zipfian};
use crate::spec::{KeyDistribution, WorkloadSpec};
use rand::RngExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xlsm_engine::{Db, DbResult, Histogram, HistogramSummary};

/// Timeline bucket width (100 ms of virtual time).
pub const BUCKET_NANOS: u64 = 100_000_000;

/// Aggregated outcome of one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Operations completed inside the measurement window.
    pub total_ops: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Measured duration (virtual).
    pub duration: Duration,
    /// Read-latency summary.
    pub read_latency: HistogramSummary,
    /// Write-latency summary.
    pub write_latency: HistogramSummary,
    /// Completed ops per 100 ms bucket, as `(seconds, kop/s)`.
    pub timeline: Vec<(f64, f64)>,
    /// Average writer-queue depth sampled at group commits (Fig. 16).
    pub avg_waiting_writers: f64,
}

impl WorkloadResult {
    /// Overall throughput in kop/s.
    pub fn kops(&self) -> f64 {
        self.total_ops as f64 / self.duration.as_secs_f64() / 1e3
    }

    /// Minimum bucket throughput in kop/s (the "near-stop" depth of the
    /// throttling dips in Figs. 5 and 18).
    pub fn min_bucket_kops(&self) -> f64 {
        self.timeline
            .iter()
            .map(|&(_, k)| k)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Pre-populates `db` with every key of the space, in a pseudo-random
/// permutation (like `db_bench` `fillrandom`), then waits for flushes and
/// compactions to settle and clears the latency windows.
///
/// # Errors
///
/// Propagates write failures.
pub fn fill_db(db: &Db, key_count: u64, value_size: usize, seed: u64) -> DbResult<()> {
    let ks = KeySpace::new(key_count);
    let vg = ValueGenerator::new(value_size);
    // A stride permutation with a stride co-prime to the key count visits
    // every key exactly once while spreading key ranges across L0 files.
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut stride = (key_count / 2 + seed % 1000) | 1;
    while gcd(stride, key_count) != 1 {
        stride += 2;
    }
    let mut idx = seed % key_count;
    for _ in 0..key_count {
        idx = (idx + stride) % key_count;
        db.put(&ks.key(idx), &vg.value(idx))?;
    }
    db.flush()?;
    db.wait_for_compactions();
    db.stats().reset_window();
    Ok(())
}

/// Runs `spec` against `db` and gathers the measurements.
///
/// Must be called from inside a sim runtime. The database should already be
/// filled (reads probe existing keys).
pub fn run_workload(db: &Arc<Db>, spec: &WorkloadSpec) -> WorkloadResult {
    let ks = KeySpace::new(spec.key_count);
    let vg = ValueGenerator::new(spec.value_size);
    let start = xlsm_sim::now_nanos();
    let end = start + spec.duration.as_nanos() as u64;
    let n_buckets = (spec.duration.as_nanos() as u64).div_ceil(BUCKET_NANOS) as usize;
    let buckets: Arc<Vec<AtomicU64>> =
        Arc::new((0..n_buckets).map(|_| AtomicU64::new(0)).collect());
    let read_hist = Arc::new(Histogram::new());
    let write_hist = Arc::new(Histogram::new());

    db.stats().reset_window();
    let mut handles = Vec::new();
    for t in 0..spec.threads {
        let db = Arc::clone(db);
        let spec = spec.clone();
        let buckets = Arc::clone(&buckets);
        let read_hist = Arc::clone(&read_hist);
        let write_hist = Arc::clone(&write_hist);
        handles.push(xlsm_sim::spawn(&format!("client-{t}"), move || {
            let mut rng = thread_rng(spec.seed, t as u64);
            let zipf = match spec.distribution {
                KeyDistribution::Zipfian(theta) => Some(Zipfian::new(spec.key_count, theta)),
                KeyDistribution::Uniform => None,
            };
            let mut reads = 0u64;
            let mut writes = 0u64;
            loop {
                let now = xlsm_sim::now_nanos();
                if now >= end {
                    break;
                }
                let wf = spec.write_fraction_at(now - start);
                let idx = match &zipf {
                    Some(z) => z.sample(&mut rng),
                    None => ks.uniform(&mut rng),
                };
                let is_write = rng.random::<f64>() < wf;
                let t0 = xlsm_sim::now_nanos();
                if is_write {
                    db.put(&ks.key(idx), &vg.value(idx)).expect("put failed");
                } else {
                    let _ = db.get(&ks.key(idx)).expect("get failed");
                }
                let done = xlsm_sim::now_nanos();
                let hist = if is_write { &write_hist } else { &read_hist };
                hist.record(done - t0);
                if is_write {
                    writes += 1;
                } else {
                    reads += 1;
                }
                let bucket = ((done.saturating_sub(start)) / BUCKET_NANOS) as usize;
                if let Some(b) = buckets.get(bucket) {
                    b.fetch_add(1, Ordering::Relaxed);
                }
            }
            (reads, writes)
        }));
    }
    let mut reads = 0u64;
    let mut writes = 0u64;
    for h in handles {
        let (r, w) = h.join();
        reads += r;
        writes += w;
    }
    let timeline: Vec<(f64, f64)> = buckets
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                (i as f64 + 0.5) * (BUCKET_NANOS as f64 / 1e9),
                b.load(Ordering::Relaxed) as f64 / (BUCKET_NANOS as f64 / 1e9) / 1e3,
            )
        })
        .collect();
    WorkloadResult {
        total_ops: reads + writes,
        reads,
        writes,
        duration: spec.duration,
        read_latency: read_hist.summary(),
        write_latency: write_hist.summary(),
        timeline,
        avg_waiting_writers: db.stats().avg_waiting_writers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_engine::DbOptions;
    use xlsm_sim::Runtime;
    use xlsm_simfs::{FsOptions, SimFs};

    fn test_db() -> Arc<Db> {
        let fs = SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        );
        Arc::new(
            Db::open(
                fs,
                DbOptions {
                    write_buffer_size: 256 << 10,
                    target_file_size_base: 256 << 10,
                    max_bytes_for_level_base: 1 << 20,
                    ..DbOptions::default()
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn fill_then_mixed_workload() {
        Runtime::new().run(|| {
            let db = test_db();
            fill_db(&db, 2_000, 256, 7).unwrap();
            let spec = WorkloadSpec {
                key_count: 2_000,
                value_size: 256,
                write_fraction: 0.5,
                threads: 4,
                duration: Duration::from_millis(500),
                seed: 11,
                burst: None,
                distribution: KeyDistribution::Uniform,
            };
            let r = run_workload(&db, &spec);
            assert!(r.total_ops > 100, "too few ops: {}", r.total_ops);
            assert!(r.reads > 0 && r.writes > 0);
            // 1:1 mix within generous tolerance.
            let wf = r.writes as f64 / r.total_ops as f64;
            assert!((0.35..0.65).contains(&wf), "write fraction {wf}");
            assert!(r.kops() > 0.0);
            assert_eq!(r.timeline.len(), 5);
            assert!(r.read_latency.count > 0);
            assert!(r.write_latency.p90_ns > 0);
            db.close();
        });
    }

    #[test]
    fn pure_read_and_pure_write_mixes() {
        Runtime::new().run(|| {
            let db = test_db();
            fill_db(&db, 1_000, 128, 3).unwrap();
            let base = WorkloadSpec {
                key_count: 1_000,
                value_size: 128,
                threads: 2,
                duration: Duration::from_millis(200),
                seed: 5,
                burst: None,
                write_fraction: 0.0,
                distribution: KeyDistribution::Uniform,
            };
            let reads = run_workload(&db, &base);
            assert_eq!(reads.writes, 0);
            let writes = run_workload(&db, &base.clone().with_write_fraction(1.0));
            assert_eq!(writes.reads, 0);
            db.close();
        });
    }

    #[test]
    fn determinism_same_seed_same_ops() {
        fn once() -> (u64, u64) {
            Runtime::new().run(|| {
                let db = test_db();
                fill_db(&db, 500, 64, 1).unwrap();
                let spec = WorkloadSpec {
                    key_count: 500,
                    value_size: 64,
                    write_fraction: 0.3,
                    threads: 3,
                    duration: Duration::from_millis(100),
                    seed: 42,
                    burst: None,
                    distribution: KeyDistribution::Uniform,
                };
                let r = run_workload(&db, &spec);
                db.close();
                (r.reads, r.writes)
            })
        }
        assert_eq!(once(), once());
    }

    #[test]
    fn reads_after_fill_find_values() {
        Runtime::new().run(|| {
            let db = test_db();
            fill_db(&db, 300, 64, 9).unwrap();
            let ks = KeySpace::new(300);
            let vg = ValueGenerator::new(64);
            for i in (0..300).step_by(23) {
                assert_eq!(db.get(&ks.key(i)).unwrap(), Some(vg.value(i)), "key {i}");
            }
            db.close();
        });
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;
    use crate::spec::KeyDistribution;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_engine::DbOptions;
    use xlsm_sim::Runtime;
    use xlsm_simfs::{FsOptions, SimFs};

    #[test]
    fn zipfian_workload_runs_and_skews_hits() {
        Runtime::new().run(|| {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let db = Arc::new(Db::open(fs, DbOptions::default()).unwrap());
            fill_db(&db, 4_000, 256, 3).unwrap();
            let base = WorkloadSpec {
                key_count: 4_000,
                value_size: 256,
                write_fraction: 0.0,
                threads: 2,
                duration: Duration::from_millis(300),
                seed: 21,
                burst: None,
                distribution: KeyDistribution::Uniform,
            };
            let uniform = run_workload(&db, &base);
            let (h0, m0) = db.block_cache_counters();
            let zipf = run_workload(
                &db,
                &base
                    .clone()
                    .with_distribution(KeyDistribution::Zipfian(0.99)),
            );
            let (h1, m1) = db.block_cache_counters();
            assert!(uniform.reads > 0 && zipf.reads > 0);
            // Hot-key concentration: the zipfian window's cache hit *rate*
            // must beat the uniform window's.
            let uniform_rate = h0 as f64 / (h0 + m0) as f64;
            let zipf_rate = (h1 - h0) as f64 / ((h1 - h0) + (m1 - m0)).max(1) as f64;
            assert!(
                zipf_rate > uniform_rate,
                "zipfian should hit cache more: {zipf_rate:.3} vs {uniform_rate:.3}"
            );
            db.close();
        });
    }
}
