//! Workload specifications.

use std::time::Duration;

/// How client threads choose keys.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDistribution {
    /// Uniformly random over the key space (the paper's
    /// `randomreadrandomwrite`).
    Uniform,
    /// YCSB-style zipfian with the given skew parameter (e.g. 0.99) —
    /// extension experiments beyond the paper.
    Zipfian(f64),
}

/// A periodic write burst riding on top of the base mix (the paper's
/// "flash of crowd" scenario in case study V-A: a 1:9 read/write burst for
/// 25 s out of every 60 s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstSpec {
    /// Period of the burst cycle.
    pub period: Duration,
    /// Portion of each period spent in the burst.
    pub burst_len: Duration,
    /// Write fraction during the burst (e.g. 0.9).
    pub burst_write_fraction: f64,
}

impl BurstSpec {
    /// Whether `at` (nanoseconds since workload start) falls inside a burst.
    pub fn in_burst(&self, at_nanos: u64) -> bool {
        let period = self.period.as_nanos() as u64;
        let burst = self.burst_len.as_nanos() as u64;
        period > 0 && (at_nanos % period) < burst
    }
}

/// A `randomreadrandomwrite` workload description.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of distinct keys (the dataset).
    pub key_count: u64,
    /// Value size in bytes (paper: 1 KiB).
    pub value_size: usize,
    /// Fraction of operations that are writes (`0.0 ..= 1.0`).
    pub write_fraction: f64,
    /// Closed-loop client threads.
    pub threads: usize,
    /// Measured duration (virtual time).
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Optional periodic write bursts.
    pub burst: Option<BurstSpec>,
    /// Key-selection distribution.
    pub distribution: KeyDistribution,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            key_count: 64 << 10, // 64 Ki keys × 1 KiB ≈ 64 MiB (paper: 100 GB / ~1500)
            value_size: 1024,
            write_fraction: 0.5,
            threads: 4,
            duration: Duration::from_secs(4),
            seed: 0xD15EA5E,
            burst: None,
            distribution: KeyDistribution::Uniform,
        }
    }
}

impl WorkloadSpec {
    /// Builder-style: sets the write fraction.
    pub fn with_write_fraction(mut self, f: f64) -> WorkloadSpec {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0,1]");
        self.write_fraction = f;
        self
    }

    /// Builder-style: sets the thread count.
    pub fn with_threads(mut self, n: usize) -> WorkloadSpec {
        assert!(n > 0);
        self.threads = n;
        self
    }

    /// Builder-style: sets the measured duration.
    pub fn with_duration(mut self, d: Duration) -> WorkloadSpec {
        self.duration = d;
        self
    }

    /// Builder-style: sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> WorkloadSpec {
        self.seed = seed;
        self
    }

    /// Builder-style: sets the key distribution.
    pub fn with_distribution(mut self, d: KeyDistribution) -> WorkloadSpec {
        self.distribution = d;
        self
    }

    /// Total dataset bytes.
    pub fn dataset_bytes(&self) -> u64 {
        self.key_count * (self.value_size as u64 + 16)
    }

    /// The write fraction in effect at `at_nanos` since workload start.
    pub fn write_fraction_at(&self, at_nanos: u64) -> f64 {
        match &self.burst {
            Some(b) if b.in_burst(at_nanos) => b.burst_write_fraction,
            _ => self.write_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_paper_scaling() {
        let s = WorkloadSpec::default();
        assert_eq!(s.value_size, 1024, "paper uses 1 KiB values");
        assert!(s.dataset_bytes() > 60 << 20);
    }

    #[test]
    fn burst_schedule() {
        let b = BurstSpec {
            period: Duration::from_secs(6),
            burst_len: Duration::from_millis(2500),
            burst_write_fraction: 0.9,
        };
        assert!(b.in_burst(0));
        assert!(b.in_burst(2_400_000_000));
        assert!(!b.in_burst(2_600_000_000));
        assert!(b.in_burst(6_000_000_001));
        let spec = WorkloadSpec {
            burst: Some(b),
            write_fraction: 0.5,
            ..WorkloadSpec::default()
        };
        assert_eq!(spec.write_fraction_at(0), 0.9);
        assert_eq!(spec.write_fraction_at(3_000_000_000), 0.5);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_rejected() {
        WorkloadSpec::default().with_write_fraction(1.5);
    }
}
