//! # xlsm-workload — the `db_bench` equivalent
//!
//! Workload generation and measurement for the storage-evolution study:
//!
//! * [`spec::WorkloadSpec`] — `randomreadrandomwrite`-style mixes with
//!   configurable read/write ratio, value size, thread count, duration and
//!   periodic write bursts (for the case-study experiments);
//! * [`driver`] — closed-loop client threads against an [`xlsm_engine::Db`],
//!   with per-op latency histograms and 100 ms throughput timelines;
//! * [`rawio`] — raw-device microbenchmarks (the Intel Open Storage Toolkit
//!   stand-in behind the paper's Fig. 1);
//! * [`sampler`] — background samplers for time series such as the Level-0
//!   file count (Fig. 8) or the writer-queue depth (Fig. 16);
//! * [`keys`] — deterministic key/value generation (uniform and zipfian).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod driver;
pub mod keys;
pub mod rawio;
pub mod sampler;
pub mod spec;

pub use driver::{fill_db, run_workload, WorkloadResult};
pub use keys::{KeySpace, ValueGenerator};
pub use rawio::{raw_mixed_kops, RawIoResult};
pub use sampler::Sampler;
pub use spec::{BurstSpec, KeyDistribution, WorkloadSpec};
