//! Deterministic key and value generation (`db_bench` conventions).

use rand::distr::Distribution;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A fixed key space of `count` keys, formatted like `db_bench`'s 16-byte
/// zero-padded decimal keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeySpace {
    count: u64,
}

impl KeySpace {
    /// A key space of `count` keys.
    pub fn new(count: u64) -> KeySpace {
        assert!(count > 0, "key space must be non-empty");
        KeySpace { count }
    }

    /// Number of keys.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The canonical 16-byte encoding of key `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the key space.
    pub fn key(&self, index: u64) -> Vec<u8> {
        assert!(index < self.count, "key index out of range");
        format!("{index:016}").into_bytes()
    }

    /// A uniformly random key index.
    pub fn uniform(&self, rng: &mut SmallRng) -> u64 {
        rng.random_range(0..self.count)
    }
}

/// Zipfian index distribution (YCSB-style, most-popular-first), for the
/// skewed-workload extension experiments.
#[derive(Clone, Debug)]
pub struct Zipfian {
    count: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a zipfian over `count` items with skew `theta` (YCSB default
    /// 0.99).
    pub fn new(count: u64, theta: f64) -> Zipfian {
        assert!(count > 0 && theta > 0.0 && theta < 1.0);
        let zetan: f64 = (1..=count).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2u64.min(count))
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / count as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            count,
            theta,
            zetan,
            alpha,
            eta,
        }
    }

    /// Samples an index in `[0, count)`.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.count as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.count - 1)
    }
}

impl Distribution<u64> for Zipfian {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        let idx = (self.count as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.count - 1)
    }
}

/// Generates pseudo-random values of a fixed size, seeded per key so a
/// value is reproducible and verifiable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueGenerator {
    size: usize,
}

impl ValueGenerator {
    /// Values of `size` bytes.
    pub fn new(size: usize) -> ValueGenerator {
        ValueGenerator { size }
    }

    /// Value size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The canonical value for `key_index`.
    pub fn value(&self, key_index: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size);
        let mut state = key_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        while out.len() < self.size {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.extend_from_slice(&state.to_le_bytes());
        }
        out.truncate(self.size);
        out
    }
}

/// A deterministic per-thread RNG.
pub fn thread_rng(seed: u64, thread: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ thread)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_fixed_width_and_sorted() {
        let ks = KeySpace::new(1000);
        let a = ks.key(5);
        let b = ks.key(999);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn key_out_of_range_panics() {
        KeySpace::new(10).key(10);
    }

    #[test]
    fn uniform_covers_space() {
        let ks = KeySpace::new(16);
        let mut rng = thread_rng(42, 0);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[ks.uniform(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn values_are_deterministic_and_sized() {
        let vg = ValueGenerator::new(1024);
        let v1 = vg.value(7);
        let v2 = vg.value(7);
        let v3 = vg.value(8);
        assert_eq!(v1.len(), 1024);
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = thread_rng(1, 2);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the hottest 1% of keys draw a large share.
        assert!(
            head as f64 / n as f64 > 0.3,
            "zipfian head share too small: {head}/{n}"
        );
    }

    #[test]
    fn thread_rngs_differ() {
        let mut a = thread_rng(9, 0);
        let mut b = thread_rng(9, 1);
        let va: u64 = a.random();
        let vb: u64 = b.random();
        assert_ne!(va, vb);
    }
}
