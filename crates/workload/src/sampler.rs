//! Background samplers: turn a closure into a time series.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xlsm_sim::JoinHandle;

/// Samples a closure at a fixed virtual-time interval on a background sim
/// thread, producing `(t_nanos, value)` pairs. Used for the Level-0
/// file-count series (Fig. 8), the stall-rate trace, and queue depths.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<(u64, f64)>>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler").finish_non_exhaustive()
    }
}

impl Sampler {
    /// Starts sampling `probe` every `interval_nanos`.
    pub fn start(
        name: &str,
        interval_nanos: u64,
        probe: impl Fn() -> f64 + Send + 'static,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = xlsm_sim::spawn(name, move || {
            let mut out = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                out.push((xlsm_sim::now_nanos(), probe()));
                xlsm_sim::sleep_nanos(interval_nanos);
            }
            out
        });
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns the series.
    pub fn finish(mut self) -> Vec<(u64, f64)> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.take().expect("finish called twice").join()
    }
}

/// Averages the values of a `(t, v)` series, optionally restricted to
/// samples at or after `from_nanos`.
pub fn series_mean(series: &[(u64, f64)], from_nanos: u64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from_nanos)
        .map(|(_, v)| *v)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use xlsm_sim::Runtime;

    #[test]
    fn sampler_collects_series() {
        Runtime::new().run(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let c = Arc::clone(&counter);
            let s = Sampler::start("probe", 1_000_000, move || {
                c.fetch_add(1, Ordering::Relaxed) as f64
            });
            xlsm_sim::sleep_nanos(10_500_000);
            let series = s.finish();
            assert!(series.len() >= 10, "got {} samples", series.len());
            assert_eq!(series[0].0, 0);
            assert_eq!(series[1].0, 1_000_000);
            assert_eq!(series[0].1, 0.0);
        });
    }

    #[test]
    fn series_mean_with_cutoff() {
        let s = vec![(0, 10.0), (100, 20.0), (200, 30.0)];
        assert_eq!(series_mean(&s, 0), 20.0);
        assert_eq!(series_mean(&s, 100), 25.0);
        assert_eq!(series_mean(&s, 999), 0.0);
    }
}
