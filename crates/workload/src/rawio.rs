//! Raw-device microbenchmark — the Intel Open Storage Toolkit stand-in.
//!
//! Reproduces the paper's Fig. 1 methodology: 4-KiB random requests from a
//! fixed number of closed-loop threads with a given read/write mix over the
//! first fraction of the device, bypassing the filesystem and KV layers.

use std::sync::Arc;
use std::time::Duration;
use xlsm_device::{Device, DeviceProfile, SimDevice};
use xlsm_engine::Histogram;
use xlsm_sim::rng::Xoshiro256;

/// Outcome of one raw I/O run.
#[derive(Clone, Debug)]
pub struct RawIoResult {
    /// Total operations completed.
    pub total_ops: u64,
    /// Throughput in kop/s.
    pub kops: f64,
    /// Mean read latency, µs.
    pub mean_read_us: f64,
    /// Mean write latency, µs.
    pub mean_write_us: f64,
    /// p90 read latency, µs.
    pub p90_read_us: f64,
    /// p90 write latency, µs.
    pub p90_write_us: f64,
    /// Device write amplification at the end of the run.
    pub write_amp: f64,
}

/// Runs 4-KiB random I/O with `threads` closed-loop clients over the first
/// `span_fraction` of a device built from `profile`, with the given write
/// fraction, for `duration` of virtual time. Must be called inside a sim
/// runtime.
pub fn raw_mixed_kops(
    profile: DeviceProfile,
    threads: u64,
    span_fraction: f64,
    write_fraction: f64,
    duration: Duration,
) -> RawIoResult {
    assert!((0.0..=1.0).contains(&write_fraction));
    assert!(span_fraction > 0.0 && span_fraction <= 1.0);
    let span = ((profile.capacity_pages as f64) * span_fraction) as u64;
    let dev = Arc::new(SimDevice::new(profile));
    let read_hist = Arc::new(Histogram::new());
    let write_hist = Arc::new(Histogram::new());
    let start = xlsm_sim::now_nanos();
    let end = start + duration.as_nanos() as u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let dev = Arc::clone(&dev);
        let read_hist = Arc::clone(&read_hist);
        let write_hist = Arc::clone(&write_hist);
        handles.push(xlsm_sim::spawn(&format!("rawio-{t}"), move || {
            let mut rng = Xoshiro256::new(0xBEEF ^ t);
            let mut ops = 0u64;
            while xlsm_sim::now_nanos() < end {
                let lpn = rng.next_below(span.max(1));
                let is_write = rng.next_f64() < write_fraction;
                let t0 = xlsm_sim::now_nanos();
                if is_write {
                    dev.write(lpn, 1);
                    write_hist.record(xlsm_sim::now_nanos() - t0);
                } else {
                    dev.read(lpn, 1);
                    read_hist.record(xlsm_sim::now_nanos() - t0);
                }
                ops += 1;
            }
            ops
        }));
    }
    let total_ops: u64 = handles.into_iter().map(|h| h.join()).sum();
    let stats = dev.stats();
    RawIoResult {
        total_ops,
        kops: total_ops as f64 / duration.as_secs_f64() / 1e3,
        mean_read_us: read_hist.mean() as f64 / 1e3,
        mean_write_us: write_hist.mean() as f64 / 1e3,
        p90_read_us: read_hist.quantile(0.9) as f64 / 1e3,
        p90_write_us: write_hist.quantile(0.9) as f64 / 1e3,
        write_amp: stats.write_amp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_device::profiles;
    use xlsm_sim::Runtime;

    #[test]
    fn fig1_raw_gap_reproduces() {
        // The paper's Fig. 1 anchors: SATA ≈ 26 kop/s, Optane ≈ 408 kop/s,
        // a ~15.7× gap. Accept a 12–19× band.
        let (sata, xp) = Runtime::new().run(|| {
            let d = Duration::from_millis(300);
            let sata = raw_mixed_kops(profiles::intel_530_sata(), 8, 0.125, 0.5, d);
            let xp = raw_mixed_kops(profiles::optane_900p(), 8, 0.125, 0.5, d);
            (sata, xp)
        });
        assert!(
            (20.0..36.0).contains(&sata.kops),
            "SATA raw kops {:.1} outside calibration band",
            sata.kops
        );
        assert!(
            (330.0..500.0).contains(&xp.kops),
            "Optane raw kops {:.1} outside calibration band",
            xp.kops
        );
        let speedup = xp.kops / sata.kops;
        assert!(
            (11.0..20.0).contains(&speedup),
            "raw speedup {speedup:.1} should be ≈ 15.7x"
        );
    }

    #[test]
    fn read_latency_ordering() {
        let (sata, pcie, xp) = Runtime::new().run(|| {
            let d = Duration::from_millis(150);
            (
                raw_mixed_kops(profiles::intel_530_sata(), 4, 0.1, 0.0, d),
                raw_mixed_kops(profiles::intel_750_pcie(), 4, 0.1, 0.0, d),
                raw_mixed_kops(profiles::optane_900p(), 4, 0.1, 0.0, d),
            )
        });
        assert!(sata.mean_read_us > pcie.mean_read_us);
        assert!(pcie.mean_read_us > xp.mean_read_us);
        assert_eq!(sata.total_ops, sata.total_ops);
    }

    #[test]
    fn sustained_pure_write_amplifies_flash_only() {
        let (sata, xp) = Runtime::new().run(|| {
            let d = Duration::from_millis(500);
            (
                // Full-span writes on a small device to hit GC quickly.
                raw_mixed_kops(
                    profiles::intel_530_sata().with_capacity_bytes(64 << 20),
                    4,
                    1.0,
                    1.0,
                    d,
                ),
                raw_mixed_kops(profiles::optane_900p(), 4, 1.0, 1.0, d),
            )
        });
        assert!(sata.write_amp >= 1.0);
        assert_eq!(xp.write_amp, 1.0, "XPoint never garbage-collects");
    }
}
