//! Database repair: rebuild a usable MANIFEST from surviving files alone
//! (RocksDB's `RepairDB`).
//!
//! Repair assumes nothing about the manifest — it may be torn, deleted, or
//! pointing at files that no longer exist. The rebuild works from what is
//! actually on disk:
//!
//! 1. every readable `.sst` in the database directory is scanned end to
//!    end to recover its key range, entry count, and maximum sequence
//!    number; unreadable tables are archived under `<db>/lost/`;
//! 2. every surviving `.log` is salvaged under the most tolerant lens
//!    ([`WalRecoveryMode::SkipAnyCorruptedRecords`]), its decodable
//!    batches dumped into a fresh table, and the log file archived — so a
//!    sequence gap in one log can never block data recovery behind it;
//! 3. the recovered tables are re-leveled by overlap: any table whose user
//!    key range intersects another's goes to level 0 (where overlap is
//!    legal), the disjoint remainder forms level 1;
//! 4. a fresh MANIFEST containing one edit with the full file set, the
//!    next file number, and the maximum recovered sequence is written to a
//!    temporary name, synced, and swapped in atomically; CURRENT is
//!    rewritten last.
//!
//! After repair, [`crate::Db::open`] proceeds as if the database had been
//! cleanly flushed: there are no logs left to replay, and every surviving
//! key — including keys that only ever lived in the WAL — is readable.

use crate::batch::WriteBatch;
use crate::cache::BlockCache;
use crate::error::{DbError, DbResult};
use crate::iterator::InternalIterator;
use crate::memtable::MemTable;
use crate::options::{DbOptions, WalRecoveryMode};
use crate::sst::{sst_file_name, TableBuilder, TableReader};
use crate::stats::{DbStats, Ticker};
use crate::types::parse_internal_key;
use crate::version::{self, FileMetaData, VersionEdit};
use crate::wal::scan_wal;
use std::sync::Arc;
use xlsm_simfs::SimFs;

/// What one [`repair_db`] run salvaged and discarded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Surviving tables re-referenced by the rebuilt manifest.
    pub ssts_recovered: usize,
    /// Unreadable tables archived to `<db>/lost/`.
    pub ssts_discarded: usize,
    /// Log files whose salvaged records were converted into new tables.
    pub logs_converted: usize,
    /// Log files archived to `<db>/lost/` (every scanned log, replayable
    /// or not — its surviving contents now live in a table).
    pub logs_archived: usize,
    /// WAL records salvaged into converted tables.
    pub wal_records_salvaged: u64,
    /// Highest sequence number found anywhere; the rebuilt manifest's
    /// sequence floor.
    pub max_sequence: u64,
    /// Tables placed at level 0 (overlapping someone).
    pub level0_files: usize,
    /// Tables placed at level 1 (mutually disjoint).
    pub level1_files: usize,
}

impl RepairReport {
    /// Total tables referenced by the rebuilt manifest.
    pub fn tables(&self) -> usize {
        self.level0_files + self.level1_files
    }

    /// Folds this report into a stats sink (the repairer runs before any
    /// `Db` exists, so ticker attribution is the caller's choice).
    pub fn record(&self, stats: &DbStats) {
        stats.add(Ticker::RepairSstsRecovered, self.tables() as u64);
    }
}

/// Moves `path` into `<db_path>/lost/`, replacing any previous archive of
/// the same name; falls back to deletion so a failed rename can never
/// leave the file where recovery would trip over it again.
fn archive_file(fs: &Arc<SimFs>, db_path: &str, path: &str) {
    let name = path.rsplit('/').next().unwrap_or(path);
    let dest = format!("{db_path}/lost/{name}");
    if fs.exists(&dest) {
        let _ = fs.delete(&dest);
    }
    if fs.rename(path, &dest).is_err() {
        let _ = fs.delete(path);
    }
}

/// Top-level files under `db_path` ending in `suffix`, as
/// `(file_number, path)` sorted by number.
fn numbered_files(fs: &Arc<SimFs>, db_path: &str, suffix: &str) -> Vec<(u64, String)> {
    let prefix = format!("{db_path}/");
    let mut out: Vec<(u64, String)> = fs
        .list(&prefix)
        .into_iter()
        .filter(|p| !p[prefix.len()..].contains('/'))
        .filter_map(|p| {
            let name = p.rsplit('/').next()?;
            let number: u64 = name.strip_suffix(suffix)?.parse().ok()?;
            Some((number, p))
        })
        .collect();
    out.sort();
    out
}

/// Rebuilds the MANIFEST of the database at `opts.db_path` from surviving
/// files. See the [module docs](self) for the full contract.
///
/// # Errors
///
/// Filesystem errors while scanning or while writing the fresh manifest.
/// Damaged tables and logs are salvaged or archived, never an error.
pub fn repair_db(fs: Arc<SimFs>, opts: &DbOptions) -> DbResult<RepairReport> {
    opts.validate().map_err(DbError::InvalidArgument)?;
    let db_path = &opts.db_path;
    let wal_fs = opts.wal_fs.clone().unwrap_or_else(|| Arc::clone(&fs));
    let cache = BlockCache::new(opts.block_cache_capacity);
    let scratch_stats = DbStats::shared();
    let mut report = RepairReport::default();
    let mut metas: Vec<FileMetaData> = Vec::new();
    let mut max_number = 0u64;

    // 1. Salvage surviving tables.
    for (number, path) in numbered_files(&fs, db_path, ".sst") {
        max_number = max_number.max(number);
        match read_table_meta(&fs, &path, number, &cache, &scratch_stats) {
            Ok((meta, file_max_seq)) => {
                report.max_sequence = report.max_sequence.max(file_max_seq);
                report.ssts_recovered += 1;
                metas.push(meta);
            }
            Err(e) if e.is_retryable() => return Err(e),
            Err(_) => {
                report.ssts_discarded += 1;
                archive_file(&fs, db_path, &path);
            }
        }
    }

    // 2. Salvage surviving logs into fresh tables.
    let logs = numbered_files(&wal_fs, db_path, ".log");
    for (number, _) in &logs {
        max_number = max_number.max(*number);
    }
    let mut next_file = max_number + 1;
    for (_, path) in &logs {
        let scan = scan_wal(&wal_fs, path, WalRecoveryMode::SkipAnyCorruptedRecords)?;
        let mem = MemTable::new(0);
        let mut salvaged = 0u64;
        for payload in &scan.records {
            let Ok(batch) = WriteBatch::from_data(payload) else {
                continue; // undecodable despite an intact checksum
            };
            if batch.apply_to(&mem).is_err() {
                continue;
            }
            salvaged += 1;
            report.max_sequence = report
                .max_sequence
                .max(batch.sequence() + batch.count() as u64 - 1);
        }
        if !mem.is_empty() {
            let number = next_file;
            next_file += 1;
            let meta = dump_memtable(&fs, db_path, number, &mem, opts)?;
            metas.push(meta);
            report.logs_converted += 1;
            report.wal_records_salvaged += salvaged;
        }
        archive_file(&wal_fs, db_path, path);
        report.logs_archived += 1;
    }

    // 3. Re-level by overlap: sort by smallest key, mark every table whose
    //    user-key range touches a neighbor's (after sorting, any overlap
    //    is with an adjacent table), and send the marked ones to L0.
    metas.sort_by(|a, b| crate::types::compare_internal(&a.smallest, &b.smallest));
    let overlaps = |a: &FileMetaData, b: &FileMetaData| {
        crate::types::user_key(&a.smallest) <= crate::types::user_key(&b.largest)
            && crate::types::user_key(&b.smallest) <= crate::types::user_key(&a.largest)
    };
    let mut edit = VersionEdit {
        next_file_number: Some(next_file),
        last_sequence: Some(report.max_sequence),
        // No logs remain to replay: everything salvageable now lives in a
        // table, so the watermark excludes every possible log number.
        log_number: Some(next_file),
        ..VersionEdit::default()
    };
    for (i, meta) in metas.iter().enumerate() {
        let clashes = (i > 0 && overlaps(&metas[i - 1], meta))
            || (i + 1 < metas.len() && overlaps(meta, &metas[i + 1]));
        let level = usize::from(!clashes);
        if clashes {
            report.level0_files += 1;
        } else {
            report.level1_files += 1;
        }
        edit.added.push((level, meta.clone()));
    }

    // 4. Write the fresh manifest to a scratch name, sync, swap, then
    //    point CURRENT at it.
    let scratch = format!("{db_path}/{}.repair", version::MANIFEST_NAME);
    if fs.exists(&scratch) {
        fs.delete(&scratch)?;
    }
    let manifest = fs.create(&scratch)?;
    manifest.append(&version::frame_manifest_record(&edit.encode()))?;
    manifest.sync()?;
    let live = version::manifest_path(db_path);
    if fs.exists(&live) {
        fs.delete(&live)?;
    }
    fs.rename(&scratch, &live)?;
    let current = version::current_path(db_path);
    if fs.exists(&current) {
        fs.delete(&current)?;
    }
    let cur = fs.create(&current)?;
    cur.append(version::MANIFEST_NAME.as_bytes())?;
    cur.sync()?;
    Ok(report)
}

/// Scans one table end to end, returning its manifest metadata and the
/// highest sequence number stored in it.
fn read_table_meta(
    fs: &Arc<SimFs>,
    path: &str,
    number: u64,
    cache: &Arc<BlockCache>,
    stats: &Arc<DbStats>,
) -> DbResult<(FileMetaData, u64)> {
    let file = fs.open(path)?;
    // The old manifest — and with it the recorded whole-file CRC — is the
    // thing being repaired, so there is nothing to compare against; the
    // recomputed CRC re-seeds the rebuilt manifest's checksum record
    // instead. Damage detection comes from the block CRCs: open verifies
    // filter/index/props/footer, the full scan below every data block, so
    // a flip anywhere fails like a torn footer and archives the table.
    let file_crc = crate::integrity::file_crc32c(&file, &mut |_| {})?;
    let reader = Arc::new(TableReader::open(file, number, Arc::clone(cache))?);
    let props = reader.properties().clone();
    // The footer's smallest/largest bound the key range but not the
    // sequence range; only a full scan proves every block is readable and
    // finds the true maximum sequence.
    let mut max_seq = 0u64;
    let mut iter = reader.iter(Arc::clone(stats));
    let mut ok = iter.seek_to_first()?;
    while ok {
        let (_, seq, _) = parse_internal_key(&iter.key());
        max_seq = max_seq.max(seq);
        ok = iter.next()?;
    }
    Ok((
        FileMetaData {
            number,
            file_size: props.file_size,
            smallest: props.smallest,
            largest: props.largest,
            num_entries: props.num_entries,
            file_crc: Some(file_crc),
        },
        max_seq,
    ))
}

/// Builds a new table at `number` from the salvaged contents of one log.
fn dump_memtable(
    fs: &Arc<SimFs>,
    db_path: &str,
    number: u64,
    mem: &Arc<MemTable>,
    opts: &DbOptions,
) -> DbResult<FileMetaData> {
    let file = fs.create(&sst_file_name(db_path, number))?;
    let mut builder = TableBuilder::with_options(file, crate::sst::TableOptions::from(opts));
    let mut iter = mem.iter();
    let mut ok = InternalIterator::seek_to_first(&mut iter)?;
    while ok {
        builder.add(
            &InternalIterator::key(&iter),
            &InternalIterator::value(&iter),
        )?;
        ok = InternalIterator::next(&mut iter)?;
    }
    let props = builder.finish()?;
    Ok(FileMetaData {
        number,
        file_size: props.file_size,
        smallest: props.smallest,
        largest: props.largest,
        num_entries: props.num_entries,
        file_crc: Some(props.file_crc),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::FsOptions;

    fn fs() -> Arc<SimFs> {
        SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        )
    }

    fn small_opts() -> DbOptions {
        DbOptions {
            write_buffer_size: 64 << 10,
            wal_sync: true,
            ..DbOptions::default()
        }
    }

    #[test]
    fn repair_rebuilds_manifest_from_ssts_and_logs() {
        Runtime::new().run(|| {
            let fs = fs();
            let opts = small_opts();
            let db = Db::open(Arc::clone(&fs), opts.clone()).unwrap();
            for i in 0..400u32 {
                db.put(format!("key{i:05}").as_bytes(), &[b'v'; 128])
                    .unwrap();
            }
            db.delete(b"key00007").unwrap();
            db.flush().unwrap();
            for i in 400..500u32 {
                // These stay WAL-only (no flush before the "crash").
                db.put(format!("key{i:05}").as_bytes(), &[b'w'; 64])
                    .unwrap();
            }
            db.close();

            // The manifest is the casualty. (Re-opening instead of
            // repairing would silently start a fresh database — the
            // engine always creates-if-missing — and the orphan sweep
            // would then reap every surviving table, so repair is the
            // only route that keeps the data.)
            fs.delete("db/MANIFEST").unwrap();
            fs.delete("db/CURRENT").unwrap();

            let report = repair_db(Arc::clone(&fs), &opts).unwrap();
            assert!(report.tables() >= 1);
            assert!(report.logs_archived >= 1);
            assert!(report.logs_converted >= 1, "WAL-only keys need a table");
            assert!(report.max_sequence > 0);
            let stats = DbStats::new();
            report.record(&stats);
            assert_eq!(
                stats.ticker(Ticker::RepairSstsRecovered),
                report.tables() as u64
            );

            let db2 = Db::open(Arc::clone(&fs), opts).unwrap();
            for i in 0..500u32 {
                let key = format!("key{i:05}");
                let got = db2.get(key.as_bytes()).unwrap();
                if i == 7 {
                    assert_eq!(got, None, "tombstone must survive repair");
                } else {
                    assert!(got.is_some(), "{key} lost by repair");
                }
            }
            db2.close();
        });
    }

    #[test]
    fn repair_archives_unreadable_tables() {
        Runtime::new().run(|| {
            let fs = fs();
            let opts = small_opts();
            let db = Db::open(Arc::clone(&fs), opts.clone()).unwrap();
            for i in 0..200u32 {
                db.put(format!("k{i:04}").as_bytes(), b"value").unwrap();
            }
            db.flush().unwrap();
            db.close();
            // A table torn mid-write: footer missing.
            let bogus = fs.create("db/999999.sst").unwrap();
            bogus.append(b"partial table with no footer").unwrap();
            fs.delete("db/MANIFEST").unwrap();

            let report = repair_db(Arc::clone(&fs), &opts).unwrap();
            assert_eq!(report.ssts_discarded, 1);
            assert!(!fs.exists("db/999999.sst"), "archived out of the db dir");
            assert!(fs.exists("db/lost/999999.sst"));

            let db2 = Db::open(Arc::clone(&fs), opts).unwrap();
            assert_eq!(db2.get(b"k0000").unwrap(), Some(b"value".to_vec()));
            db2.close();
        });
    }

    #[test]
    fn repair_archives_table_with_mid_file_flip() {
        Runtime::new().run(|| {
            let fs = fs();
            let opts = small_opts();
            let db = Db::open(Arc::clone(&fs), opts.clone()).unwrap();
            for i in 0..200u32 {
                db.put(format!("k{i:04}").as_bytes(), &[b'v'; 100]).unwrap();
            }
            db.flush().unwrap();
            db.close();

            // Plant one flipped bit in the middle of the first table — deep
            // inside a data block, far from the footer. (SimFs has no
            // write-at-offset, so at-rest damage = rewrite the file.)
            let victim = numbered_files(&fs, "db", ".sst")[0].1.clone();
            let handle = fs.open(&victim).unwrap();
            let len = handle.len();
            let mut bytes = handle.read_at(0, len as usize).unwrap();
            bytes[len as usize / 2] ^= 0x40;
            fs.delete(&victim).unwrap();
            fs.create(&victim).unwrap().append(&bytes).unwrap();
            fs.delete("db/MANIFEST").unwrap();

            let report = repair_db(Arc::clone(&fs), &opts).unwrap();
            assert_eq!(
                report.ssts_discarded, 1,
                "a mid-file flip must be treated like a torn footer"
            );
            assert!(!fs.exists(&victim), "archived out of the db dir");
            let name = victim.rsplit('/').next().unwrap();
            assert!(fs.exists(&format!("db/lost/{name}")));

            // The rebuilt database opens; the damaged table's keys are gone
            // (archived, not silently wrong).
            let db2 = Db::open(Arc::clone(&fs), opts).unwrap();
            for i in 0..200u32 {
                let _ = db2.get(format!("k{i:04}").as_bytes()).unwrap();
            }
            db2.close();
        });
    }

    #[test]
    fn repair_relevels_disjoint_tables_to_l1() {
        Runtime::new().run(|| {
            let fs = fs();
            let opts = small_opts();
            let db = Db::open(Arc::clone(&fs), opts.clone()).unwrap();
            // Two flushes over disjoint key ranges -> two disjoint L0
            // tables; repair should promote both to L1.
            for i in 0..50u32 {
                db.put(format!("a{i:04}").as_bytes(), b"1").unwrap();
            }
            db.flush().unwrap();
            for i in 0..50u32 {
                db.put(format!("b{i:04}").as_bytes(), b"2").unwrap();
            }
            db.flush().unwrap();
            db.close();
            fs.delete("db/MANIFEST").unwrap();

            let report = repair_db(Arc::clone(&fs), &opts).unwrap();
            assert_eq!(report.level1_files, report.tables());
            assert_eq!(report.level0_files, 0);

            let db2 = Db::open(Arc::clone(&fs), opts).unwrap();
            assert_eq!(db2.get(b"a0001").unwrap(), Some(b"1".to_vec()));
            assert_eq!(db2.get(b"b0049").unwrap(), Some(b"2".to_vec()));
            db2.close();
        });
    }

    #[test]
    fn repair_on_empty_dir_yields_openable_db() {
        Runtime::new().run(|| {
            let fs = fs();
            let opts = DbOptions::default();
            let report = repair_db(Arc::clone(&fs), &opts).unwrap();
            assert_eq!(report.tables(), 0);
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            db.put(b"k", b"v").unwrap();
            assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
            db.close();
        });
    }
}
