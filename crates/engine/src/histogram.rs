//! Concurrent log-bucketed latency histogram (HDR-lite).
//!
//! Values are bucketed by `(exponent, 64 sub-buckets)` giving ≤ ~1.6 %
//! relative error — plenty for p50/p90/p99 reporting — with lock-free
//! recording from any number of threads.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 6;
const SUB: usize = 1 << SUB_BITS; // 64
/// Largest exponent tracked (2^40 ns ≈ 18 virtual minutes).
const MAX_EXP: u32 = 40;
const NBUCKETS: usize = ((MAX_EXP - SUB_BITS + 1) as usize + 1) * SUB;

fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= 6
    let e = e.min(MAX_EXP);
    let sub = ((v >> (e - SUB_BITS)) as usize) & (SUB - 1);
    ((e - SUB_BITS + 1) as usize) * SUB + sub
}

fn bucket_low(idx: usize) -> u64 {
    let band = idx / SUB;
    let sub = (idx % SUB) as u64;
    if band == 0 {
        return sub;
    }
    let e = band as u32 + SUB_BITS - 1;
    (1u64 << e) | (sub << (e - SUB_BITS))
}

/// A thread-safe latency histogram in nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    n: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        let counts: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            counts: counts.into_boxed_slice(),
            n: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.n.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) in nanoseconds.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return bucket_low(i);
            }
        }
        self.max()
    }

    /// Convenience: p50/p90/p99/max snapshot in nanoseconds.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            max_ns: self.max(),
        }
    }

    /// Clears all recorded values.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.n.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Compact percentile summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean, nanoseconds.
    pub mean_ns: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds (the paper's headline tail metric).
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Maximum, nanoseconds.
    pub max_ns: u64,
}

impl HistogramSummary {
    /// 90th percentile in microseconds (float), as the paper reports.
    pub fn p90_us(&self) -> f64 {
        self.p90_ns as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 17, 63] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn quantiles_are_close_for_large_values() {
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 100); // 100 ns .. 1 ms uniform
        }
        let p50 = h.quantile(0.5) as f64;
        let p90 = h.quantile(0.9) as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.05, "p50={p50}");
        assert!((p90 / 900_000.0 - 1.0).abs() < 0.05, "p90={p90}");
    }

    #[test]
    fn mean_and_reset() {
        let h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.mean(), 200);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    fn bucket_low_inverts_bucket_of() {
        for v in [0u64, 1, 63, 64, 65, 1000, 123_456, 1 << 30, 1 << 39] {
            let b = bucket_of(v);
            let low = bucket_low(b);
            assert!(low <= v, "low {low} > v {v}");
            // Relative error bound.
            if v >= 64 {
                assert!((v - low) as f64 / v as f64 <= 0.016, "v={v} low={low}");
            }
        }
    }

    #[test]
    fn huge_values_clamp_without_panic() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert!(h.quantile(1.0) > 0);
    }
}
