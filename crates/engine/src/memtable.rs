//! The memtable: an arena-backed concurrent skiplist over internal keys.
//!
//! The paper leans on the skiplist's `O(log N)` insert/search complexity in
//! two findings (Level-0 query overhead, write-latency growth with memtable
//! size), so the memtable here is a real skiplist, not a `BTreeMap` stand-in.
//! Finding #3 adds a third requirement: with
//! `allow_concurrent_memtable_write`, every member of a write group inserts
//! its own sub-batch on its own sim thread, so the structure must tolerate
//! concurrent inserts and lock-free readers:
//!
//! * next-links are `AtomicU32` node indices updated with a per-level CAS
//!   (RocksDB `InlineSkipList` style) — an insert that loses a race at a
//!   level re-locates its splice point and retries;
//! * nodes live in a *chunked* arena: a fixed spine of lazily-allocated,
//!   geometrically-growing chunks. A chunk never moves or grows once
//!   allocated, so a node index handed to a reader stays valid while other
//!   threads allocate — no single `Vec` behind one lock to invalidate it.
//!
//! Once inserted a node's key/value never move, so iterators hold
//! `(Arc<MemTable>, index)` without pinning any lock across blocking
//! operations.
//!
//! CPU time for the *serial* insert path ([`MemTable::add`]) and for all
//! searches is charged by the callers via [`crate::costs`], keeping those
//! paths synchronous and cheap to unit test. The *concurrent* path
//! ([`MemTable::add_concurrent`]) instead charges the insert cost between
//! locating the splice and publishing the links: that sleep is the yield
//! point where other group members run, which both overlaps their insert
//! costs in virtual time (the point of concurrent memtable writes) and
//! exercises the CAS-retry path under real interleavings.

use crate::bloom::ConcurrentBloom;
use crate::error::{DbError, DbResult};
use crate::integrity;
use crate::types::{
    self, compare_internal, make_internal_key, make_lookup_key, SequenceNumber, ValueType,
};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::{Arc, OnceLock};
use xlsm_sim::rng::Xoshiro256;

const MAX_HEIGHT: usize = 12;
const BRANCHING: u64 = 4;
const NIL: u32 = u32::MAX;

/// Slots in the first arena chunk; each subsequent chunk doubles.
const BASE_CHUNK: usize = 1 << 10;
/// Spine length. Total capacity `BASE_CHUNK * (2^NUM_CHUNKS - 1)` ≈ 4.3e9
/// slots — every index below that fits in a `u32` and stays below `NIL`.
const NUM_CHUNKS: usize = 22;

struct Node {
    /// Full internal key (`user_key ++ trailer`). Immutable once inserted.
    key: Vec<u8>,
    value: Vec<u8>,
    /// Per-entry checksum over (type, user key, value) when the memtable
    /// protects entries at rest; `0` when protection is off.
    prot: u32,
    /// `next[level]` — atomic node indices, linked bottom-up via CAS.
    next: Box<[AtomicU32]>,
}

/// Chunked node arena. The spine is a fixed array of once-initialized
/// chunks; a chunk is a fixed slice of once-initialized slots. Allocation
/// reserves a slot with a fetch-add and writes the node before any link
/// publishes its index, so readers traversing links never observe an
/// uninitialized slot.
struct Arena {
    spine: [OnceLock<Box<[OnceLock<Node>]>>; NUM_CHUNKS],
    len: AtomicUsize,
}

impl Arena {
    fn new() -> Arena {
        Arena {
            spine: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Maps a global slot index to `(chunk, offset)`.
    fn locate(idx: u32) -> (usize, usize) {
        let q = idx as usize / BASE_CHUNK + 1;
        let chunk = (usize::BITS - 1 - q.leading_zeros()) as usize;
        (chunk, idx as usize - BASE_CHUNK * ((1 << chunk) - 1))
    }

    fn alloc(&self, node: Node) -> u32 {
        let idx = self.len.fetch_add(1, AtOrd::Relaxed);
        assert!(
            idx < BASE_CHUNK * ((1usize << NUM_CHUNKS) - 1),
            "memtable arena exhausted"
        );
        let (chunk, off) = Arena::locate(idx as u32);
        let slots = self.spine[chunk].get_or_init(|| {
            (0..BASE_CHUNK << chunk)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        assert!(
            slots[off].set(node).is_ok(),
            "arena slot double-initialized"
        );
        idx as u32
    }

    fn node(&self, idx: u32) -> &Node {
        let (chunk, off) = Arena::locate(idx);
        self.spine[chunk].get().expect("chunk allocated")[off]
            .get()
            .expect("slot initialized before being linked")
    }
}

/// An in-memory, sorted write buffer.
pub struct MemTable {
    id: u64,
    arena: Arena,
    /// Head node's next pointers (one per level).
    head: [AtomicU32; MAX_HEIGHT],
    height: AtomicUsize,
    rng: parking_lot::Mutex<Xoshiro256>,
    approx_bytes: AtomicUsize,
    entries: AtomicU64,
    /// Sequence of the first entry inserted (for WAL retention decisions).
    first_seq: AtomicU64,
    /// Optional whole-key bloom over user keys, populated *before* a node
    /// is linked so readers that can see an entry always see its bits
    /// (no false negatives, including on the concurrent insert path).
    bloom: Option<ConcurrentBloom>,
    /// Whether each node stores (and `get`/flush re-verify) a per-entry
    /// checksum — the memtable leg of the per-key protection chain.
    protect: bool,
}

impl std::fmt::Debug for MemTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTable")
            .field("id", &self.id)
            .field("entries", &self.num_entries())
            .field("approx_bytes", &self.approximate_bytes())
            .finish()
    }
}

impl MemTable {
    /// Creates an empty memtable with the given id (for diagnostics).
    pub fn new(id: u64) -> Arc<MemTable> {
        MemTable::with_bloom(id, 0, 0)
    }

    /// Creates an empty memtable with a whole-key bloom sized for
    /// `expected_entries` at `bits_per_key` (`0` bits disables the filter —
    /// equivalent to [`MemTable::new`]). The filter is fixed-size and
    /// atomic, so overshooting the estimate only raises its false-positive
    /// rate.
    pub fn with_bloom(id: u64, bits_per_key: usize, expected_entries: usize) -> Arc<MemTable> {
        MemTable::with_options(id, bits_per_key, expected_entries, false)
    }

    /// [`MemTable::with_bloom`] plus an entry-protection switch: when
    /// `protect` is on, every node stores a checksum over (type, user key,
    /// value) computed at insert, and [`MemTable::get`] plus flush-side
    /// [`MemTableIter::verify_entry`] re-verify it, so an entry corrupted
    /// while buffered is detected instead of served or persisted.
    pub fn with_options(
        id: u64,
        bits_per_key: usize,
        expected_entries: usize,
        protect: bool,
    ) -> Arc<MemTable> {
        Arc::new(MemTable {
            id,
            arena: Arena::new(),
            head: std::array::from_fn(|_| AtomicU32::new(NIL)),
            height: AtomicUsize::new(1),
            rng: parking_lot::Mutex::new(Xoshiro256::new(0x5EED ^ id)),
            approx_bytes: AtomicUsize::new(0),
            entries: AtomicU64::new(0),
            first_seq: AtomicU64::new(u64::MAX),
            bloom: (bits_per_key > 0)
                .then(|| ConcurrentBloom::new(bits_per_key, expected_entries.max(1))),
            protect,
        })
    }

    /// Whether per-entry at-rest protection is on.
    pub fn protected(&self) -> bool {
        self.protect
    }

    /// Whether this memtable carries a whole-key bloom (callers charge the
    /// filter-probe CPU cost only when it does).
    pub fn bloom_enabled(&self) -> bool {
        self.bloom.is_some()
    }

    /// Whether `user_key` may be present. `false` is definitive (the key
    /// was never inserted); `true` means "search the skiplist". Without a
    /// bloom this is always `true`.
    pub fn may_contain(&self, user_key: &[u8]) -> bool {
        self.bloom.as_ref().is_none_or(|b| b.may_contain(user_key))
    }

    /// This memtable's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The link from `prev` (or the head when `prev == NIL`) at `level`.
    fn link(&self, prev: u32, level: usize) -> &AtomicU32 {
        match prev {
            NIL => &self.head[level],
            p => &self.arena.node(p).next[level],
        }
    }

    fn key_at(&self, idx: u32) -> &[u8] {
        &self.arena.node(idx).key
    }

    /// Finds, per level, the last node whose key is `< key` (`NIL` = head).
    fn find_predecessors(&self, key: &[u8]) -> [u32; MAX_HEIGHT] {
        let mut prev = [NIL; MAX_HEIGHT];
        let mut level = self.height.load(AtOrd::Acquire);
        let mut cur = NIL; // NIL = head
        while level > 0 {
            let l = level - 1;
            loop {
                let next = self.link(cur, l).load(AtOrd::Acquire);
                if next != NIL && compare_internal(self.key_at(next), key) == Ordering::Less {
                    cur = next;
                } else {
                    break;
                }
            }
            prev[l] = cur;
            level -= 1;
        }
        prev
    }

    /// First node with key ≥ `key` (index), or `NIL`.
    fn seek_index(&self, key: &[u8]) -> u32 {
        let prev = self.find_predecessors(key);
        self.link(prev[0], 0).load(AtOrd::Acquire)
    }

    fn random_height(&self) -> usize {
        let mut rng = self.rng.lock();
        let mut h = 1;
        while h < MAX_HEIGHT && rng.next_below(BRANCHING) == 0 {
            h += 1;
        }
        h
    }

    /// Inserts `key` → `value`. With `charge_ns > 0` the insert's CPU cost
    /// is slept off *between* splice location and link publication — the
    /// concurrent path's yield point; with `charge_ns == 0` there is no
    /// blocking point, so the insert is atomic under the cooperative
    /// runtime (the serial mode's exclusive path).
    fn insert(&self, key: Vec<u8>, value: Vec<u8>, prot: u32, charge_ns: u64) {
        let h = self.random_height();
        let mut splice = self.find_predecessors(&key);
        if charge_ns > 0 {
            // Other writers run during this sleep and may insert around our
            // splice point; the CAS loop below recovers, exactly like
            // InlineSkipList's insert-with-hint.
            xlsm_sim::sleep_nanos(charge_ns);
        }
        self.height.fetch_max(h, AtOrd::AcqRel);
        let idx = self.arena.alloc(Node {
            key,
            value,
            prot,
            next: (0..h)
                .map(|_| AtomicU32::new(NIL))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        });
        let node = self.arena.node(idx);
        for (level, hint) in splice.iter_mut().enumerate().take(h) {
            loop {
                let prev = *hint;
                let link = self.link(prev, level);
                let next = link.load(AtOrd::Acquire);
                if next != NIL && compare_internal(self.key_at(next), &node.key) == Ordering::Less {
                    // A concurrent insert landed between `prev` and us;
                    // advance the splice hint along this level.
                    *hint = next;
                    continue;
                }
                node.next[level].store(next, AtOrd::Release);
                if link
                    .compare_exchange(next, idx, AtOrd::AcqRel, AtOrd::Acquire)
                    .is_ok()
                {
                    break;
                }
                // Lost the race on this link: reload and retry from the
                // same predecessor.
            }
        }
    }

    fn record_entry(&self, seq: SequenceNumber, charge: usize) {
        self.approx_bytes.fetch_add(charge, AtOrd::Relaxed);
        self.entries.fetch_add(1, AtOrd::Relaxed);
        self.first_seq.fetch_min(seq, AtOrd::Relaxed);
    }

    /// Adds an entry (exclusive/serial path — the caller charges CPU cost
    /// and provides external serialization, e.g. the write queue's
    /// memtable stage).
    pub fn add(&self, seq: SequenceNumber, t: ValueType, user_key: &[u8], value: &[u8]) {
        let ikey = make_internal_key(user_key, seq, t);
        let charge = ikey.len() + value.len() + 48; // node overhead estimate
        if let Some(b) = &self.bloom {
            b.insert(user_key);
        }
        let prot = self.checksum_for(t, user_key, value);
        self.insert(ikey, value.to_vec(), prot, 0);
        self.record_entry(seq, charge);
    }

    /// Adds an entry on the concurrent insert path: `charge_ns` of CPU
    /// cost is slept off mid-insert, so concurrent group members overlap
    /// their insert costs in virtual time and contend on the links.
    pub fn add_concurrent(
        &self,
        seq: SequenceNumber,
        t: ValueType,
        user_key: &[u8],
        value: &[u8],
        charge_ns: u64,
    ) {
        let ikey = make_internal_key(user_key, seq, t);
        let charge = ikey.len() + value.len() + 48;
        // Bloom bits go in before the node links: anyone who can observe
        // the entry already observes its bits, even mid-insert.
        if let Some(b) = &self.bloom {
            b.insert(user_key);
        }
        let prot = self.checksum_for(t, user_key, value);
        self.insert(ikey, value.to_vec(), prot, charge_ns);
        self.record_entry(seq, charge);
    }

    /// The checksum stored with a node (0 when protection is off).
    fn checksum_for(&self, t: ValueType, user_key: &[u8], value: &[u8]) -> u32 {
        if self.protect {
            integrity::entry_checksum(t, user_key, value)
        } else {
            0
        }
    }

    /// Re-verifies the node at `idx` against its stored checksum.
    fn verify_node(&self, idx: u32) -> DbResult<()> {
        if !self.protect {
            return Ok(());
        }
        let node = self.arena.node(idx);
        let (uk, seq, t) = types::parse_internal_key(&node.key);
        if integrity::entry_checksum(t, uk, &node.value) != node.prot {
            return Err(DbError::corruption(format!(
                "memtable {} entry checksum mismatch (seq {seq})",
                self.id
            )));
        }
        Ok(())
    }

    /// Looks up `user_key` at `snapshot`. Returns:
    /// * `None` — key not present in this memtable;
    /// * `Some(None)` — newest visible version is a deletion;
    /// * `Some(Some(v))` — newest visible version is `v`.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] when protection is on and the matching
    /// node's stored checksum no longer matches its content.
    pub fn get(
        &self,
        user_key: &[u8],
        snapshot: SequenceNumber,
    ) -> DbResult<Option<Option<Vec<u8>>>> {
        let lookup = make_lookup_key(user_key, snapshot);
        let idx = self.seek_index(&lookup);
        if idx == NIL {
            return Ok(None);
        }
        let node = self.arena.node(idx);
        let (uk, _seq, t) = types::parse_internal_key(&node.key);
        if uk != user_key {
            return Ok(None);
        }
        self.verify_node(idx)?;
        Ok(match t {
            ValueType::Value => Some(Some(node.value.clone())),
            ValueType::Deletion => Some(None),
        })
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes.load(AtOrd::Relaxed)
    }

    /// Number of entries.
    pub fn num_entries(&self) -> u64 {
        self.entries.load(AtOrd::Relaxed)
    }

    /// Smallest sequence number inserted (`u64::MAX` when empty).
    pub fn first_sequence(&self) -> SequenceNumber {
        self.first_seq.load(AtOrd::Relaxed)
    }

    /// Whether no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.num_entries() == 0
    }

    /// An iterator positioned before the first entry.
    pub fn iter(self: &Arc<Self>) -> MemTableIter {
        MemTableIter {
            mem: Arc::clone(self),
            cur: NIL,
            started: false,
        }
    }
}

/// Iterator over a memtable's internal entries in internal-key order.
///
/// Holds no lock at all (links are atomic and nodes immutable once
/// linked), so it is safe to interleave with blocking operations (flush
/// uses this). Entries inserted *after* iteration passes their position
/// are not guaranteed to be observed — flush only iterates immutable
/// memtables.
#[derive(Debug)]
pub struct MemTableIter {
    mem: Arc<MemTable>,
    cur: u32,
    started: bool,
}

impl MemTableIter {
    /// Positions at the first entry; returns false if empty.
    pub fn seek_to_first(&mut self) -> bool {
        self.cur = self.mem.head[0].load(AtOrd::Acquire);
        self.started = true;
        self.cur != NIL
    }

    /// Positions at the first entry with internal key ≥ `ikey`.
    pub fn seek(&mut self, ikey: &[u8]) -> bool {
        self.cur = self.mem.seek_index(ikey);
        self.started = true;
        self.cur != NIL
    }

    /// Advances; returns false when exhausted.
    #[allow(clippy::should_implement_trait)] // lock-coupled cursor, not an Iterator
    pub fn next(&mut self) -> bool {
        debug_assert!(self.started, "call seek_to_first/seek before next");
        if self.cur == NIL {
            return false;
        }
        self.cur = self.mem.arena.node(self.cur).next[0].load(AtOrd::Acquire);
        self.cur != NIL
    }

    /// Whether positioned on a valid entry.
    pub fn valid(&self) -> bool {
        self.started && self.cur != NIL
    }

    /// Current internal key (cloned; nodes are immutable once inserted).
    pub fn key(&self) -> Vec<u8> {
        self.mem.arena.node(self.cur).key.clone()
    }

    /// Current value.
    pub fn value(&self) -> Vec<u8> {
        self.mem.arena.node(self.cur).value.clone()
    }

    /// Re-verifies the current entry against its stored per-entry checksum
    /// (no-op when the memtable does not protect entries). Flush calls this
    /// per entry so a corrupted buffered write is caught *before* it is
    /// persisted into an SST with a fresh, valid block checksum.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on mismatch.
    pub fn verify_entry(&self) -> DbResult<()> {
        debug_assert!(self.valid(), "verify_entry on invalid iterator");
        self.mem.verify_node(self.cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use xlsm_sim::Runtime;

    #[test]
    fn add_get_roundtrip() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"alpha", b"1");
        m.add(2, ValueType::Value, b"beta", b"2");
        assert_eq!(m.get(b"alpha", 10).unwrap(), Some(Some(b"1".to_vec())));
        assert_eq!(m.get(b"beta", 10).unwrap(), Some(Some(b"2".to_vec())));
        assert_eq!(m.get(b"gamma", 10).unwrap(), None);
        assert_eq!(m.num_entries(), 2);
        assert!(m.approximate_bytes() > 0);
    }

    #[test]
    fn newest_version_wins() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"k", b"old");
        m.add(5, ValueType::Value, b"k", b"new");
        assert_eq!(m.get(b"k", 10).unwrap(), Some(Some(b"new".to_vec())));
    }

    #[test]
    fn snapshot_visibility() {
        let m = MemTable::new(1);
        m.add(3, ValueType::Value, b"k", b"v3");
        m.add(7, ValueType::Value, b"k", b"v7");
        assert_eq!(m.get(b"k", 2).unwrap(), None, "nothing visible below seq 3");
        assert_eq!(m.get(b"k", 3).unwrap(), Some(Some(b"v3".to_vec())));
        assert_eq!(m.get(b"k", 6).unwrap(), Some(Some(b"v3".to_vec())));
        assert_eq!(m.get(b"k", 7).unwrap(), Some(Some(b"v7".to_vec())));
    }

    #[test]
    fn deletion_shadows() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(b"k", 10).unwrap(), Some(None));
        assert_eq!(m.get(b"k", 1).unwrap(), Some(Some(b"v".to_vec())));
    }

    #[test]
    fn prefix_keys_do_not_collide() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"abc", b"1");
        assert_eq!(m.get(b"ab", 10).unwrap(), None);
        assert_eq!(m.get(b"abcd", 10).unwrap(), None);
    }

    #[test]
    fn iterator_yields_sorted_internal_keys() {
        let m = MemTable::new(1);
        for (i, k) in [b"d", b"b", b"a", b"c"].iter().enumerate() {
            m.add(i as u64 + 1, ValueType::Value, *k, b"v");
        }
        let mut it = m.iter();
        assert!(it.seek_to_first());
        let mut keys = Vec::new();
        loop {
            keys.push(it.key());
            if !it.next() {
                break;
            }
        }
        assert_eq!(keys.len(), 4);
        for w in keys.windows(2) {
            assert_eq!(compare_internal(&w[0], &w[1]), Ordering::Less);
        }
    }

    #[test]
    fn iterator_seek() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"a", b"");
        m.add(2, ValueType::Value, b"c", b"");
        m.add(3, ValueType::Value, b"e", b"");
        let mut it = m.iter();
        assert!(it.seek(&make_lookup_key(b"b", u64::MAX >> 8)));
        let key = it.key();
        let (uk, ..) = types::parse_internal_key(&key);
        assert_eq!(uk, b"c");
        assert!(!it.seek(&make_lookup_key(b"z", u64::MAX >> 8)));
    }

    #[test]
    fn first_sequence_tracks_minimum() {
        let m = MemTable::new(1);
        assert_eq!(m.first_sequence(), u64::MAX);
        m.add(9, ValueType::Value, b"a", b"");
        m.add(4, ValueType::Value, b"b", b"");
        assert_eq!(m.first_sequence(), 4);
    }

    #[test]
    fn arena_locate_roundtrips_chunk_boundaries() {
        // First index of every chunk, last index of every chunk, and a few
        // interior points must land in bounds and in order.
        let mut global = 0usize;
        for chunk in 0..6 {
            let size = BASE_CHUNK << chunk;
            assert_eq!(Arena::locate(global as u32), (chunk, 0));
            assert_eq!(Arena::locate((global + size - 1) as u32), (chunk, size - 1));
            global += size;
        }
    }

    #[test]
    fn arena_indices_survive_chunk_growth() {
        // Crossing several chunk boundaries must never invalidate an index
        // taken earlier (the old Vec arena reallocated under growth).
        let m = MemTable::new(7);
        let n = 3 * BASE_CHUNK + 17;
        for i in 0..n {
            m.add(
                i as u64 + 1,
                ValueType::Value,
                format!("k{i:08}").as_bytes(),
                b"v",
            );
        }
        let mut it = m.iter();
        assert!(it.seek_to_first());
        let mut count = 1;
        while it.next() {
            count += 1;
        }
        assert_eq!(count, n);
        assert_eq!(
            m.get(b"k00000000", u64::MAX >> 8).unwrap(),
            Some(Some(b"v".to_vec()))
        );
        assert_eq!(
            m.get(format!("k{:08}", n - 1).as_bytes(), u64::MAX >> 8)
                .unwrap(),
            Some(Some(b"v".to_vec()))
        );
    }

    /// ≥32 sim threads hammer the concurrent insert path with interleaved
    /// mid-insert sleeps (the CAS-retry window) on overlapping keys; every
    /// entry must land, sorted, with nothing lost or duplicated.
    #[test]
    fn concurrent_inserts_from_many_threads_preserve_all_entries() {
        const THREADS: u64 = 36;
        const PER_THREAD: u64 = 64;
        Runtime::new().run(|| {
            let m = MemTable::new(3);
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let m = Arc::clone(&m);
                handles.push(xlsm_sim::spawn(&format!("ins-{t}"), move || {
                    for i in 0..PER_THREAD {
                        let seq = t * PER_THREAD + i + 1;
                        // Overlapping key space across threads maximizes
                        // splice-point contention.
                        let key = format!("key{:04}", (seq * 31) % 512);
                        m.add_concurrent(seq, ValueType::Value, key.as_bytes(), b"v", 750);
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(m.num_entries(), THREADS * PER_THREAD);
            let mut it = m.iter();
            assert!(it.seek_to_first());
            let mut keys = vec![it.key()];
            while it.next() {
                keys.push(it.key());
            }
            assert_eq!(keys.len() as u64, THREADS * PER_THREAD, "entries lost");
            for w in keys.windows(2) {
                assert_eq!(
                    compare_internal(&w[0], &w[1]),
                    Ordering::Less,
                    "ordering violated under concurrent insert"
                );
            }
        });
    }

    #[test]
    fn bloom_filters_absent_keys_and_never_present_ones() {
        let m = MemTable::with_bloom(11, 10, 1024);
        assert!(m.bloom_enabled());
        for i in 0..1000u32 {
            m.add(
                i as u64 + 1,
                ValueType::Value,
                format!("in{i:05}").as_bytes(),
                b"v",
            );
        }
        for i in 0..1000u32 {
            assert!(m.may_contain(format!("in{i:05}").as_bytes()));
        }
        let mut rejected = 0;
        for i in 0..1000u32 {
            if !m.may_contain(format!("out{i:05}").as_bytes()) {
                rejected += 1;
            }
        }
        assert!(rejected > 900, "memtable bloom too permissive: {rejected}");
        // Without a bloom, everything "may" be present.
        let plain = MemTable::new(12);
        assert!(!plain.bloom_enabled());
        assert!(plain.may_contain(b"whatever"));
    }

    /// Concurrent inserters racing on the bloom + skiplist: a key visible
    /// to `get` must always pass `may_contain` (no false negatives).
    #[test]
    fn concurrent_bloom_has_no_false_negatives() {
        const THREADS: u64 = 16;
        const PER_THREAD: u64 = 48;
        Runtime::new().run(|| {
            let m = MemTable::with_bloom(13, 10, (THREADS * PER_THREAD) as usize);
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let m = Arc::clone(&m);
                handles.push(xlsm_sim::spawn(&format!("bins-{t}"), move || {
                    for i in 0..PER_THREAD {
                        let seq = t * PER_THREAD + i + 1;
                        let key = format!("key-{t:02}-{i:04}");
                        m.add_concurrent(seq, ValueType::Value, key.as_bytes(), b"v", 500);
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            for t in 0..THREADS {
                for i in 0..PER_THREAD {
                    let key = format!("key-{t:02}-{i:04}");
                    assert!(
                        m.may_contain(key.as_bytes()),
                        "false negative for {key} after concurrent insert"
                    );
                    assert!(m.get(key.as_bytes(), u64::MAX >> 8).unwrap().is_some());
                }
            }
        });
    }

    #[test]
    fn protected_get_roundtrip_and_detects_corruption() {
        let m = MemTable::with_options(21, 0, 0, true);
        assert!(m.protected());
        m.add(1, ValueType::Value, b"good", b"v");
        assert_eq!(m.get(b"good", 10).unwrap(), Some(Some(b"v".to_vec())));
        // Plant an entry whose stored checksum does not match its content —
        // the shape of an in-memory flip between insert and read.
        let wrong = integrity::entry_checksum(ValueType::Value, b"bad", b"v") ^ 1;
        m.insert(
            make_internal_key(b"bad", 2, ValueType::Value),
            b"v".to_vec(),
            wrong,
            0,
        );
        m.record_entry(2, 16);
        let err = m.get(b"bad", 10).unwrap_err();
        assert!(err.is_corruption());
        assert!(err.to_string().contains("memtable 21"), "{err}");
    }

    #[test]
    fn flush_iterator_verifies_entries() {
        let m = MemTable::with_options(22, 0, 0, true);
        m.add(1, ValueType::Value, b"a", b"1");
        let wrong = integrity::entry_checksum(ValueType::Deletion, b"b", b"") ^ 1;
        m.insert(
            make_internal_key(b"b", 2, ValueType::Deletion),
            Vec::new(),
            wrong,
            0,
        );
        m.record_entry(2, 16);
        m.add(3, ValueType::Value, b"c", b"3");
        let mut it = m.iter();
        assert!(it.seek_to_first());
        let mut bad = 0;
        loop {
            if it.verify_entry().is_err() {
                bad += 1;
            }
            if !it.next() {
                break;
            }
        }
        assert_eq!(bad, 1, "exactly the planted entry must fail");
    }

    #[test]
    fn unprotected_memtable_skips_verification() {
        let m = MemTable::new(23);
        assert!(!m.protected());
        m.add(1, ValueType::Value, b"k", b"v");
        let mut it = m.iter();
        assert!(it.seek_to_first());
        assert!(it.verify_entry().is_ok());
        assert_eq!(m.get(b"k", 10).unwrap(), Some(Some(b"v".to_vec())));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The memtable agrees with a reference BTreeMap model under random
        /// puts/deletes, at the latest snapshot.
        #[test]
        fn matches_reference_model(ops in prop::collection::vec(
            (prop::collection::vec(1u8..5, 1..4), prop::option::of(0u8..3)), 1..300)
        ) {
            use std::collections::BTreeMap;
            let m = MemTable::new(9);
            let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
            for (seq, (key, val)) in ops.iter().enumerate() {
                let seq = seq as u64 + 1;
                match val {
                    Some(v) => {
                        m.add(seq, ValueType::Value, key, &[*v]);
                        model.insert(key.clone(), Some(vec![*v]));
                    }
                    None => {
                        m.add(seq, ValueType::Deletion, key, b"");
                        model.insert(key.clone(), None);
                    }
                }
            }
            for (key, expect) in &model {
                prop_assert_eq!(m.get(key, u64::MAX >> 8).unwrap(), Some(expect.clone()));
            }
            prop_assert_eq!(m.num_entries(), ops.len() as u64);
        }
    }
}
