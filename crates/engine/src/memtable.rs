//! The memtable: an arena-backed skiplist over internal keys.
//!
//! The paper leans on the skiplist's `O(log N)` insert/search complexity in
//! two findings (Level-0 query overhead, write-latency growth with memtable
//! size), so the memtable here is a real skiplist, not a `BTreeMap` stand-in.
//! Nodes live in a growable arena (`Vec`) and link by index; once inserted a
//! node's key/value never move, so iterators hold `(Arc<MemTable>, index)`
//! without pinning a lock across blocking operations.
//!
//! CPU time for inserts/searches is charged by the *callers* via
//! [`crate::costs`], keeping this structure synchronous and cheap to unit
//! test.

use crate::types::{
    self, compare_internal, make_internal_key, make_lookup_key, SequenceNumber, ValueType,
};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::Arc;
use xlsm_sim::rng::Xoshiro256;

const MAX_HEIGHT: usize = 12;
const BRANCHING: u64 = 4;
const NIL: u32 = u32::MAX;

struct Node {
    /// Full internal key (`user_key ++ trailer`).
    key: Vec<u8>,
    value: Vec<u8>,
    /// `next[level]` — links are only ever updated under the write lock.
    next: Vec<u32>,
}

struct Core {
    nodes: Vec<Node>,
    /// Head node's next pointers.
    head: [u32; MAX_HEIGHT],
    height: usize,
    rng: Xoshiro256,
}

impl Core {
    fn random_height(&mut self) -> usize {
        let mut h = 1;
        while h < MAX_HEIGHT && self.rng.next_below(BRANCHING) == 0 {
            h += 1;
        }
        h
    }

    fn key_at(&self, idx: u32) -> &[u8] {
        &self.nodes[idx as usize].key
    }

    /// Finds, per level, the last node whose key is `< key`.
    fn find_predecessors(&self, key: &[u8]) -> [u32; MAX_HEIGHT] {
        let mut prev = [NIL; MAX_HEIGHT];
        let mut level = self.height;
        let mut cur: Option<u32> = None; // None = head
        while level > 0 {
            let l = level - 1;
            loop {
                let next = match cur {
                    None => self.head[l],
                    Some(i) => self.nodes[i as usize].next[l],
                };
                if next != NIL && compare_internal(self.key_at(next), key) == Ordering::Less {
                    cur = Some(next);
                } else {
                    break;
                }
            }
            prev[l] = cur.unwrap_or(NIL);
            level -= 1;
        }
        prev
    }

    /// First node with key ≥ `key` (index), or `NIL`.
    fn seek(&self, key: &[u8]) -> u32 {
        let prev = self.find_predecessors(key);
        match prev[0] {
            NIL => self.head[0],
            p => self.nodes[p as usize].next[0],
        }
    }

    fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let prev = self.find_predecessors(&key);
        let h = self.random_height();
        if h > self.height {
            self.height = h;
        }
        let idx = self.nodes.len() as u32;
        let mut next = vec![NIL; h];
        #[allow(clippy::needless_range_loop)]
        for l in 0..h {
            next[l] = match prev[l] {
                NIL => self.head[l],
                p => self.nodes[p as usize].next[l],
            };
        }
        self.nodes.push(Node { key, value, next });
        #[allow(clippy::needless_range_loop)]
        for l in 0..h {
            match prev[l] {
                NIL => self.head[l] = idx,
                p => self.nodes[p as usize].next[l] = idx,
            }
        }
    }
}

/// An in-memory, sorted write buffer.
pub struct MemTable {
    id: u64,
    core: parking_lot::RwLock<Core>,
    approx_bytes: AtomicUsize,
    entries: AtomicU64,
    /// Sequence of the first entry inserted (for WAL retention decisions).
    first_seq: AtomicU64,
}

impl std::fmt::Debug for MemTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTable")
            .field("id", &self.id)
            .field("entries", &self.num_entries())
            .field("approx_bytes", &self.approximate_bytes())
            .finish()
    }
}

impl MemTable {
    /// Creates an empty memtable with the given id (for diagnostics).
    pub fn new(id: u64) -> Arc<MemTable> {
        Arc::new(MemTable {
            id,
            core: parking_lot::RwLock::new(Core {
                nodes: Vec::new(),
                head: [NIL; MAX_HEIGHT],
                height: 1,
                rng: Xoshiro256::new(0x5EED ^ id),
            }),
            approx_bytes: AtomicUsize::new(0),
            entries: AtomicU64::new(0),
            first_seq: AtomicU64::new(u64::MAX),
        })
    }

    /// This memtable's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Adds an entry.
    pub fn add(&self, seq: SequenceNumber, t: ValueType, user_key: &[u8], value: &[u8]) {
        let ikey = make_internal_key(user_key, seq, t);
        let charge = ikey.len() + value.len() + 48; // node overhead estimate
        self.core.write().insert(ikey, value.to_vec());
        self.approx_bytes.fetch_add(charge, AtOrd::Relaxed);
        self.entries.fetch_add(1, AtOrd::Relaxed);
        self.first_seq.fetch_min(seq, AtOrd::Relaxed);
    }

    /// Looks up `user_key` at `snapshot`. Returns:
    /// * `None` — key not present in this memtable;
    /// * `Some(None)` — newest visible version is a deletion;
    /// * `Some(Some(v))` — newest visible version is `v`.
    pub fn get(&self, user_key: &[u8], snapshot: SequenceNumber) -> Option<Option<Vec<u8>>> {
        let lookup = make_lookup_key(user_key, snapshot);
        let core = self.core.read();
        let idx = core.seek(&lookup);
        if idx == NIL {
            return None;
        }
        let node = &core.nodes[idx as usize];
        let (uk, _seq, t) = types::parse_internal_key(&node.key);
        if uk != user_key {
            return None;
        }
        match t {
            ValueType::Value => Some(Some(node.value.clone())),
            ValueType::Deletion => Some(None),
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes.load(AtOrd::Relaxed)
    }

    /// Number of entries.
    pub fn num_entries(&self) -> u64 {
        self.entries.load(AtOrd::Relaxed)
    }

    /// Smallest sequence number inserted (`u64::MAX` when empty).
    pub fn first_sequence(&self) -> SequenceNumber {
        self.first_seq.load(AtOrd::Relaxed)
    }

    /// Whether no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.num_entries() == 0
    }

    /// An iterator positioned before the first entry.
    pub fn iter(self: &Arc<Self>) -> MemTableIter {
        MemTableIter {
            mem: Arc::clone(self),
            cur: NIL,
            started: false,
        }
    }
}

/// Iterator over a memtable's internal entries in internal-key order.
///
/// Holds no lock between calls, so it is safe to interleave with blocking
/// operations (flush uses this). Entries inserted *after* iteration passes
/// their position are not guaranteed to be observed — flush only iterates
/// immutable memtables.
#[derive(Debug)]
pub struct MemTableIter {
    mem: Arc<MemTable>,
    cur: u32,
    started: bool,
}

impl MemTableIter {
    /// Positions at the first entry; returns false if empty.
    pub fn seek_to_first(&mut self) -> bool {
        let core = self.mem.core.read();
        self.cur = core.head[0];
        self.started = true;
        self.cur != NIL
    }

    /// Positions at the first entry with internal key ≥ `ikey`.
    pub fn seek(&mut self, ikey: &[u8]) -> bool {
        let core = self.mem.core.read();
        self.cur = core.seek(ikey);
        self.started = true;
        self.cur != NIL
    }

    /// Advances; returns false when exhausted.
    #[allow(clippy::should_implement_trait)] // lock-coupled cursor, not an Iterator
    pub fn next(&mut self) -> bool {
        debug_assert!(self.started, "call seek_to_first/seek before next");
        if self.cur == NIL {
            return false;
        }
        let core = self.mem.core.read();
        self.cur = core.nodes[self.cur as usize].next[0];
        self.cur != NIL
    }

    /// Whether positioned on a valid entry.
    pub fn valid(&self) -> bool {
        self.started && self.cur != NIL
    }

    /// Current internal key (cloned; nodes are immutable once inserted).
    pub fn key(&self) -> Vec<u8> {
        let core = self.mem.core.read();
        core.nodes[self.cur as usize].key.clone()
    }

    /// Current value.
    pub fn value(&self) -> Vec<u8> {
        let core = self.mem.core.read();
        core.nodes[self.cur as usize].value.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_get_roundtrip() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"alpha", b"1");
        m.add(2, ValueType::Value, b"beta", b"2");
        assert_eq!(m.get(b"alpha", 10), Some(Some(b"1".to_vec())));
        assert_eq!(m.get(b"beta", 10), Some(Some(b"2".to_vec())));
        assert_eq!(m.get(b"gamma", 10), None);
        assert_eq!(m.num_entries(), 2);
        assert!(m.approximate_bytes() > 0);
    }

    #[test]
    fn newest_version_wins() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"k", b"old");
        m.add(5, ValueType::Value, b"k", b"new");
        assert_eq!(m.get(b"k", 10), Some(Some(b"new".to_vec())));
    }

    #[test]
    fn snapshot_visibility() {
        let m = MemTable::new(1);
        m.add(3, ValueType::Value, b"k", b"v3");
        m.add(7, ValueType::Value, b"k", b"v7");
        assert_eq!(m.get(b"k", 2), None, "nothing visible below seq 3");
        assert_eq!(m.get(b"k", 3), Some(Some(b"v3".to_vec())));
        assert_eq!(m.get(b"k", 6), Some(Some(b"v3".to_vec())));
        assert_eq!(m.get(b"k", 7), Some(Some(b"v7".to_vec())));
    }

    #[test]
    fn deletion_shadows() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(b"k", 10), Some(None));
        assert_eq!(m.get(b"k", 1), Some(Some(b"v".to_vec())));
    }

    #[test]
    fn prefix_keys_do_not_collide() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"abc", b"1");
        assert_eq!(m.get(b"ab", 10), None);
        assert_eq!(m.get(b"abcd", 10), None);
    }

    #[test]
    fn iterator_yields_sorted_internal_keys() {
        let m = MemTable::new(1);
        for (i, k) in [b"d", b"b", b"a", b"c"].iter().enumerate() {
            m.add(i as u64 + 1, ValueType::Value, *k, b"v");
        }
        let mut it = m.iter();
        assert!(it.seek_to_first());
        let mut keys = Vec::new();
        loop {
            keys.push(it.key());
            if !it.next() {
                break;
            }
        }
        assert_eq!(keys.len(), 4);
        for w in keys.windows(2) {
            assert_eq!(compare_internal(&w[0], &w[1]), Ordering::Less);
        }
    }

    #[test]
    fn iterator_seek() {
        let m = MemTable::new(1);
        m.add(1, ValueType::Value, b"a", b"");
        m.add(2, ValueType::Value, b"c", b"");
        m.add(3, ValueType::Value, b"e", b"");
        let mut it = m.iter();
        assert!(it.seek(&make_lookup_key(b"b", u64::MAX >> 8)));
        let key = it.key();
        let (uk, ..) = types::parse_internal_key(&key);
        assert_eq!(uk, b"c");
        assert!(!it.seek(&make_lookup_key(b"z", u64::MAX >> 8)));
    }

    #[test]
    fn first_sequence_tracks_minimum() {
        let m = MemTable::new(1);
        assert_eq!(m.first_sequence(), u64::MAX);
        m.add(9, ValueType::Value, b"a", b"");
        m.add(4, ValueType::Value, b"b", b"");
        assert_eq!(m.first_sequence(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The memtable agrees with a reference BTreeMap model under random
        /// puts/deletes, at the latest snapshot.
        #[test]
        fn matches_reference_model(ops in prop::collection::vec(
            (prop::collection::vec(1u8..5, 1..4), prop::option::of(0u8..3)), 1..300)
        ) {
            use std::collections::BTreeMap;
            let m = MemTable::new(9);
            let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
            for (seq, (key, val)) in ops.iter().enumerate() {
                let seq = seq as u64 + 1;
                match val {
                    Some(v) => {
                        m.add(seq, ValueType::Value, key, &[*v]);
                        model.insert(key.clone(), Some(vec![*v]));
                    }
                    None => {
                        m.add(seq, ValueType::Deletion, key, b"");
                        model.insert(key.clone(), None);
                    }
                }
            }
            for (key, expect) in &model {
                prop_assert_eq!(m.get(key, u64::MAX >> 8), Some(expect.clone()));
            }
            prop_assert_eq!(m.num_entries(), ops.len() as u64);
        }
    }
}
