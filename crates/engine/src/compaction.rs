//! Leveled compaction: picking and execution.
//!
//! *Which level* gets serviced is delegated to a pluggable
//! [`CompactionScheduler`] consulted with the per-level scores; *what* is
//! compacted within the chosen level is fixed policy:
//!
//! * **L0 → L1**: all Level-0 files (their ranges overlap) merge with the
//!   overlapping L1 files.
//! * **Ln → Ln+1** (n ≥ 1): a cursor walks the level round-robin; the picked
//!   file merges with its overlapping Ln+1 files. A file with no overlap is
//!   *trivially moved* (metadata-only). The cursor only advances when the
//!   pick actually succeeds — a fallback (conflict with the in-progress
//!   set) leaves it in place so no file is skipped within a lap.
//!
//! Obsolete versions of a user key are dropped when invisible to every
//! active snapshot; deletion tombstones are additionally dropped when the
//! output level is bottommost for their key range.

use crate::costs;
use crate::db::TableCache;
use crate::error::DbResult;
use crate::iterator::{InternalIterator, LevelIterator, MergingIterator};
use crate::options::DbOptions;
use crate::scheduler::CompactionScheduler;
use crate::sst::{sst_file_name, TableBuilder};
use crate::stats::{DbStats, Ticker};
use crate::types::{self, SequenceNumber, ValueType};
use crate::version::{FileMetaData, Version, VersionEdit};
use std::collections::HashSet;
use std::sync::Arc;
use xlsm_simfs::SimFs;

/// A picked compaction: inputs at `level` and overlapping files at
/// `output_level`.
#[derive(Clone, Debug)]
pub struct CompactionTask {
    /// Input level.
    pub level: usize,
    /// Destination level.
    pub output_level: usize,
    /// Files taken from `level`.
    pub inputs: Vec<Arc<FileMetaData>>,
    /// Overlapping files taken from `output_level`.
    pub inputs_next: Vec<Arc<FileMetaData>>,
    /// Metadata-only move (single input, no overlap).
    pub is_trivial_move: bool,
    /// Whether deletion tombstones may be dropped (bottommost range).
    pub can_drop_tombstones: bool,
}

impl CompactionTask {
    /// All input file numbers.
    pub fn input_numbers(&self) -> Vec<u64> {
        self.inputs
            .iter()
            .chain(self.inputs_next.iter())
            .map(|f| f.number)
            .collect()
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs
            .iter()
            .chain(self.inputs_next.iter())
            .map(|f| f.file_size)
            .sum()
    }
}

/// User-key range `[lo, hi]` spanned by `files`.
fn key_range(files: &[Arc<FileMetaData>]) -> Option<(Vec<u8>, Vec<u8>)> {
    let mut lo: Option<Vec<u8>> = None;
    let mut hi: Option<Vec<u8>> = None;
    for f in files {
        let s = types::user_key(&f.smallest).to_vec();
        let l = types::user_key(&f.largest).to_vec();
        if lo.as_ref().is_none_or(|cur| &s < cur) {
            lo = Some(s);
        }
        if hi.as_ref().is_none_or(|cur| &l > cur) {
            hi = Some(l);
        }
    }
    lo.zip(hi)
}

/// Round-robin cursors, one per level, storing the user key after which the
/// next pick starts.
#[derive(Debug, Default)]
pub struct CompactionCursors {
    cursors: Vec<Option<Vec<u8>>>,
}

impl CompactionCursors {
    /// Cursors for `n` levels.
    pub fn new(n: usize) -> CompactionCursors {
        CompactionCursors {
            cursors: vec![None; n],
        }
    }
}

/// Picks the next compaction as directed by `scheduler`, or `None` when no
/// level is eligible or every eligible level's candidate files are busy.
///
/// The scheduler is consulted with the per-level scores; if the level it
/// chooses cannot form a compaction right now (conflict with `in_progress`),
/// that level's score is masked to 0 and the scheduler is asked again, so
/// one blocked level never idles the background workers while another has
/// serviceable debt.
pub fn pick_compaction(
    version: &Version,
    opts: &DbOptions,
    in_progress: &HashSet<u64>,
    cursors: &mut CompactionCursors,
    scheduler: &dyn CompactionScheduler,
) -> Option<CompactionTask> {
    let mut scores = version.level_scores(opts);
    loop {
        let level = scheduler.pick_level(&scores)?;
        if let Some(task) = pick_at_level(version, level, in_progress, cursors) {
            return Some(task);
        }
        scores[level] = 0.0;
    }
}

/// Forms a compaction at `level`, or `None` when its candidates are busy.
/// The level cursor is committed only on success, so a fallback does not
/// skip the blocked file's position.
fn pick_at_level(
    version: &Version,
    level: usize,
    in_progress: &HashSet<u64>,
    cursors: &mut CompactionCursors,
) -> Option<CompactionTask> {
    let output_level = level + 1;
    let inputs: Vec<Arc<FileMetaData>> = if level == 0 {
        let all = version.levels[0].clone();
        // One L0→L1 compaction at a time (RocksDB behavior): if any L0 file
        // is already being compacted, wait.
        if all.iter().any(|f| in_progress.contains(&f.number)) {
            return None;
        }
        all
    } else {
        let files = &version.levels[level];
        let cursor = cursors.cursors[level].clone();
        let start = match &cursor {
            None => 0,
            Some(c) => files.partition_point(|f| types::user_key(&f.smallest) <= &c[..]),
        };
        let pick = files
            .iter()
            .cycle()
            .skip(start)
            .take(files.len())
            .find(|f| !in_progress.contains(&f.number))
            .cloned();
        match pick {
            Some(f) => vec![f],
            None => return None,
        }
    };
    if inputs.is_empty() {
        return None;
    }
    let (lo, hi) = key_range(&inputs).expect("non-empty inputs");
    let inputs_next = version.overlapping(output_level, &lo, &hi);
    if inputs_next.iter().any(|f| in_progress.contains(&f.number)) {
        return None;
    }
    if level > 0 {
        cursors.cursors[level] = Some(types::user_key(&inputs[0].largest).to_vec());
    }
    // Bottommost check: no file in any deeper level overlaps the range.
    let can_drop_tombstones = (output_level + 1..version.levels.len())
        .all(|deep| version.overlapping(deep, &lo, &hi).is_empty());
    let is_trivial_move = level > 0 && inputs.len() == 1 && inputs_next.is_empty();
    Some(CompactionTask {
        level,
        output_level,
        inputs,
        inputs_next,
        is_trivial_move,
        can_drop_tombstones,
    })
}

/// Runs the merge for `task`, writing output SSTs and returning the version
/// edit to install. Purely additive: installation and input deletion are
/// the caller's job.
///
/// When `opts.max_subcompactions > 1` the input key space is cut at SST
/// block boundaries into up to that many disjoint user-key ranges, each
/// merged by its own sim thread writing its own outputs; the partial edits
/// are stitched back together in range order. Inputs that do not offer
/// enough distinct boundary keys fall back to the serial merge.
///
/// # Errors
///
/// Filesystem or corruption errors abort the compaction; outputs written so
/// far (by every subcompaction) are deleted before returning, so a retried
/// compaction starts clean.
#[allow(clippy::too_many_arguments)]
pub fn run_compaction(
    task: &CompactionTask,
    fs: &Arc<SimFs>,
    db_path: &str,
    table_cache: &Arc<TableCache>,
    stats: &Arc<DbStats>,
    opts: &DbOptions,
    new_file_number: Arc<dyn Fn() -> u64 + Send + Sync>,
    min_snapshot: SequenceNumber,
) -> DbResult<VersionEdit> {
    let mut edit = VersionEdit::default();
    for (lvl, files) in [
        (task.level, &task.inputs),
        (task.output_level, &task.inputs_next),
    ] {
        for f in files {
            edit.deleted.push((lvl, f.number));
        }
    }

    if task.is_trivial_move {
        let f = &task.inputs[0];
        edit.added.push((task.output_level, (**f).clone()));
        stats.bump(Ticker::TrivialMoves);
        return Ok(edit);
    }

    let mut created: Vec<u64> = Vec::new();
    let result = if opts.max_subcompactions > 1 {
        match subcompaction_ranges(task, table_cache, opts.max_subcompactions) {
            Ok(ranges) if ranges.len() > 1 => run_subcompactions(
                task,
                fs,
                db_path,
                table_cache,
                stats,
                opts,
                &new_file_number,
                min_snapshot,
                ranges,
                &mut edit,
                &mut created,
            ),
            Ok(_) => {
                // Not enough boundary keys to cut: serial merge.
                stats.bump(Ticker::SubcompactionFallbacks);
                merge_into_edit(
                    task,
                    fs,
                    db_path,
                    table_cache,
                    stats,
                    opts,
                    &*new_file_number,
                    min_snapshot,
                    None,
                    None,
                    &mut edit,
                    &mut created,
                )
            }
            Err(e) => Err(e),
        }
    } else {
        merge_into_edit(
            task,
            fs,
            db_path,
            table_cache,
            stats,
            opts,
            &*new_file_number,
            min_snapshot,
            None,
            None,
            &mut edit,
            &mut created,
        )
    };
    match result {
        Ok(()) => {
            stats.add(Ticker::CompactReadBytes, task.input_bytes());
            stats.add(
                Ticker::CompactWriteBytes,
                edit.added.iter().map(|(_, f)| f.file_size).sum(),
            );
            Ok(edit)
        }
        Err(e) => {
            for n in created {
                let _ = fs.delete(&sst_file_name(db_path, n));
            }
            Err(e)
        }
    }
}

/// A half-open `[lo, hi)` user-key range one subcompaction covers; `None`
/// bounds are open ends.
type KeyRange = (Option<Vec<u8>>, Option<Vec<u8>>);

/// Computes the disjoint user-key ranges `[lo, hi)` a compaction fans out
/// across: candidate cut points are the block-boundary keys of every input
/// file (read from their already-parsed index blocks), evenly thinned down
/// to at most `max_subcompactions` ranges. `None` bounds are open ends.
/// Returns a single full-range entry when there is nothing to cut.
fn subcompaction_ranges(
    task: &CompactionTask,
    table_cache: &Arc<TableCache>,
    max_subcompactions: usize,
) -> DbResult<Vec<KeyRange>> {
    let mut candidates: Vec<Vec<u8>> = Vec::new();
    for f in task.inputs.iter().chain(task.inputs_next.iter()) {
        let reader = table_cache.reader(f)?;
        candidates.extend(reader.block_boundary_user_keys().map(<[u8]>::to_vec));
    }
    candidates.sort_unstable();
    candidates.dedup();
    // The largest key cannot start a non-empty trailing range (a cut is the
    // *inclusive start* of the next range and everything sorts before it).
    candidates.pop();
    let want = max_subcompactions.min(candidates.len() + 1);
    if want <= 1 {
        return Ok(vec![(None, None)]);
    }
    let mut cuts: Vec<Vec<u8>> = (1..want)
        .map(|i| candidates[i * candidates.len() / want].clone())
        .collect();
    cuts.dedup();
    let mut ranges = Vec::with_capacity(cuts.len() + 1);
    let mut lo: Option<Vec<u8>> = None;
    for cut in cuts {
        ranges.push((lo, Some(cut.clone())));
        lo = Some(cut);
    }
    ranges.push((lo, None));
    Ok(ranges)
}

/// Fans the merge out: one sim thread per range, each writing its own
/// outputs; partial edits are stitched in range order so the combined
/// output file list stays sorted and disjoint. Every range's created file
/// numbers reach `created` even on failure so the caller can clean up.
#[allow(clippy::too_many_arguments)]
fn run_subcompactions(
    task: &CompactionTask,
    fs: &Arc<SimFs>,
    db_path: &str,
    table_cache: &Arc<TableCache>,
    stats: &Arc<DbStats>,
    opts: &DbOptions,
    new_file_number: &Arc<dyn Fn() -> u64 + Send + Sync>,
    min_snapshot: SequenceNumber,
    ranges: Vec<KeyRange>,
    edit: &mut VersionEdit,
    created: &mut Vec<u64>,
) -> DbResult<()> {
    stats.add(Ticker::SubcompactionsLaunched, ranges.len() as u64);
    let task = Arc::new(task.clone());
    let mut handles = Vec::with_capacity(ranges.len());
    for (i, (lo, hi)) in ranges.into_iter().enumerate() {
        let task = Arc::clone(&task);
        let fs = Arc::clone(fs);
        let db_path = db_path.to_owned();
        let table_cache = Arc::clone(table_cache);
        let stats = Arc::clone(stats);
        let opts = opts.clone();
        let new_file_number = Arc::clone(new_file_number);
        handles.push(xlsm_sim::spawn(&format!("subcompact-{i}"), move || {
            let t0 = xlsm_sim::now_nanos();
            let mut part = VersionEdit::default();
            let mut part_created = Vec::new();
            let r = merge_into_edit(
                &task,
                &fs,
                &db_path,
                &table_cache,
                &stats,
                &opts,
                &*new_file_number,
                min_snapshot,
                lo.as_deref(),
                hi.as_deref(),
                &mut part,
                &mut part_created,
            );
            stats
                .subcompaction_duration
                .record(xlsm_sim::now_nanos() - t0);
            (r, part.added, part_created)
        }));
    }
    let mut first_err = None;
    for h in handles {
        let (r, added, part_created) = h.join();
        created.extend(part_created);
        match r {
            Ok(()) => edit.added.extend(added),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// The merge loop proper, restricted to user keys in `[lo, hi)` (`None`
/// bounds are open). Output file numbers are pushed to `created` as they
/// are allocated so the caller can clean up after a failure.
///
/// Ranges cut at user-key granularity keep the per-key shadowing state
/// (`last_user_key` / `last_kept_visible`) self-contained: every version of
/// one user key lands in exactly one range.
#[allow(clippy::too_many_arguments)]
fn merge_into_edit(
    task: &CompactionTask,
    fs: &Arc<SimFs>,
    db_path: &str,
    table_cache: &Arc<TableCache>,
    stats: &Arc<DbStats>,
    opts: &DbOptions,
    new_file_number: &dyn Fn() -> u64,
    min_snapshot: SequenceNumber,
    lo: Option<&[u8]>,
    hi: Option<&[u8]>,
    edit: &mut VersionEdit,
    created: &mut Vec<u64>,
) -> DbResult<()> {
    // Build the merged input iterator: L0 files individually (overlapping),
    // the rest as level runs.
    let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
    if task.level == 0 {
        for f in &task.inputs {
            let reader = table_cache.reader(f)?;
            children.push(Box::new(reader.iter_with_readahead(Arc::clone(stats))));
        }
    } else {
        children.push(Box::new(LevelIterator::new_with_readahead(
            task.inputs.clone(),
            Arc::clone(table_cache),
            Arc::clone(stats),
        )));
    }
    if !task.inputs_next.is_empty() {
        children.push(Box::new(LevelIterator::new_with_readahead(
            task.inputs_next.clone(),
            Arc::clone(table_cache),
            Arc::clone(stats),
        )));
    }
    let mut merged = MergingIterator::new(children);

    let mut builder: Option<TableBuilder> = None;
    let mut builder_number = 0u64;
    let mut last_user_key: Option<Vec<u8>> = None;
    let mut last_kept_visible = false; // kept an entry for last_user_key with seq <= min_snapshot
    let mut cpu_ns_accum = 0u64;

    let finish_builder =
        |builder: &mut Option<TableBuilder>, number: u64, edit: &mut VersionEdit| -> DbResult<()> {
            if let Some(b) = builder.take() {
                let props = b.finish()?;
                edit.added.push((
                    task.output_level,
                    FileMetaData {
                        number,
                        file_size: props.file_size,
                        smallest: props.smallest,
                        largest: props.largest,
                        num_entries: props.num_entries,
                        file_crc: Some(props.file_crc),
                    },
                ));
            }
            Ok(())
        };

    let mut ok = match lo {
        // The lookup key for `lo` (seq = MAX) is the smallest internal key
        // of that user key, so the range starts at its newest version.
        Some(lo) => merged.seek(&types::make_lookup_key(lo, types::MAX_SEQUENCE))?,
        None => merged.seek_to_first()?,
    };
    while ok {
        let ikey = merged.key();
        let (uk, seq, t) = types::parse_internal_key(&ikey);
        if let Some(hi) = hi {
            if uk >= hi {
                break; // next range's territory
            }
        }
        // Batch the per-entry CPU charge to one sleep per 256 entries.
        cpu_ns_accum += costs::MERGE_ENTRY_NS;
        if cpu_ns_accum >= 256 * costs::MERGE_ENTRY_NS {
            xlsm_sim::sleep_nanos(cpu_ns_accum);
            cpu_ns_accum = 0;
        }

        let same_key = last_user_key.as_deref() == Some(uk);
        if !same_key {
            // Reset per-key state *before* the drop decision, so a dropped
            // leading tombstone's shadow survives for the older versions.
            last_user_key = Some(uk.to_vec());
            last_kept_visible = false;
        }
        let mut drop = false;
        if same_key && last_kept_visible {
            // A newer, universally-visible version shadows this one.
            drop = true;
        } else if t == ValueType::Deletion && seq <= min_snapshot && task.can_drop_tombstones {
            drop = true;
            // The dropped tombstone still shadows older versions below it.
            last_kept_visible = true;
        }
        if !drop {
            if seq <= min_snapshot {
                last_kept_visible = true;
            }
            if builder.is_none() {
                builder_number = new_file_number();
                created.push(builder_number);
                let file = fs.create(&sst_file_name(db_path, builder_number))?;
                builder = Some(TableBuilder::with_options(
                    file,
                    crate::sst::TableOptions::from(opts),
                ));
            }
            let b = builder.as_mut().unwrap();
            b.add(&ikey, &merged.value())?;
            if b.file_size() >= opts.target_file_size_base {
                finish_builder(&mut builder, builder_number, edit)?;
            }
        }
        ok = merged.next()?;
    }
    if cpu_ns_accum > 0 {
        xlsm_sim::sleep_nanos(cpu_ns_accum);
    }
    finish_builder(&mut builder, builder_number, edit)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::GreedyScheduler;
    use crate::types::make_internal_key;

    fn pick(
        v: &Version,
        opts: &DbOptions,
        busy: &HashSet<u64>,
        cursors: &mut CompactionCursors,
    ) -> Option<CompactionTask> {
        pick_compaction(v, opts, busy, cursors, &GreedyScheduler)
    }

    fn meta(number: u64, lo: &[u8], hi: &[u8], size: u64) -> FileMetaData {
        FileMetaData {
            number,
            file_size: size,
            smallest: make_internal_key(lo, 1, ValueType::Value),
            largest: make_internal_key(hi, 1, ValueType::Value),
            num_entries: 10,
            file_crc: None,
        }
    }

    fn version_with(l0: Vec<FileMetaData>, l1: Vec<FileMetaData>) -> Version {
        let mut e = VersionEdit::default();
        for f in l0 {
            e.added.push((0, f));
        }
        for f in l1 {
            e.added.push((1, f));
        }
        crate::version::apply_edit(&Version::empty(7), &e)
    }

    #[test]
    fn no_compaction_below_trigger() {
        let opts = DbOptions::default();
        let v = version_with(vec![meta(1, b"a", b"z", 100)], vec![]);
        let mut cursors = CompactionCursors::new(7);
        assert!(pick(&v, &opts, &HashSet::new(), &mut cursors).is_none());
    }

    #[test]
    fn l0_pick_takes_all_l0_and_overlaps() {
        let opts = DbOptions::default();
        let v = version_with(
            (1..=4).map(|i| meta(i, b"c", b"m", 100)).collect(),
            vec![
                meta(10, b"a", b"d", 100),
                meta(11, b"k", b"p", 100),
                meta(12, b"x", b"z", 100),
            ],
        );
        let mut cursors = CompactionCursors::new(7);
        let t = pick(&v, &opts, &HashSet::new(), &mut cursors).unwrap();
        assert_eq!(t.level, 0);
        assert_eq!(t.inputs.len(), 4);
        // Overlapping L1: [a,d] and [k,p], not [x,z].
        assert_eq!(t.inputs_next.len(), 2);
        assert!(!t.is_trivial_move);
        assert!(t.can_drop_tombstones, "nothing deeper than L1 here");
    }

    #[test]
    fn busy_l0_defers() {
        let opts = DbOptions::default();
        let v = version_with((1..=4).map(|i| meta(i, b"a", b"z", 100)).collect(), vec![]);
        let mut cursors = CompactionCursors::new(7);
        let mut busy = HashSet::new();
        busy.insert(2u64);
        assert!(pick(&v, &opts, &busy, &mut cursors).is_none());
    }

    #[test]
    fn trivial_move_when_no_overlap() {
        let opts = DbOptions {
            max_bytes_for_level_base: 50, // force L1 over target
            ..DbOptions::default()
        };
        let v = version_with(vec![], vec![meta(5, b"a", b"c", 100)]);
        let mut cursors = CompactionCursors::new(7);
        let t = pick(&v, &opts, &HashSet::new(), &mut cursors).unwrap();
        assert_eq!(t.level, 1);
        assert!(t.is_trivial_move);
        assert_eq!(t.input_numbers(), vec![5]);
    }

    #[test]
    fn cursor_round_robins_level_files() {
        let opts = DbOptions {
            max_bytes_for_level_base: 50,
            ..DbOptions::default()
        };
        let v = version_with(
            vec![],
            vec![meta(5, b"a", b"c", 100), meta(6, b"m", b"p", 100)],
        );
        let mut cursors = CompactionCursors::new(7);
        let t1 = pick(&v, &opts, &HashSet::new(), &mut cursors).unwrap();
        assert_eq!(t1.inputs[0].number, 5);
        let t2 = pick(&v, &opts, &HashSet::new(), &mut cursors).unwrap();
        assert_eq!(t2.inputs[0].number, 6, "cursor should advance");
        let t3 = pick(&v, &opts, &HashSet::new(), &mut cursors).unwrap();
        assert_eq!(t3.inputs[0].number, 5, "cursor should wrap");
    }

    #[test]
    fn busy_fallback_does_not_skip_cursor_position() {
        // L1 files A(a..c), B(m..p), C(x..z); an in-progress L2 file
        // overlaps B. The pick that lands on B must fall back WITHOUT
        // advancing the cursor past it, so once the conflict clears the lap
        // visits every file exactly once: A, B, C, A, ...
        let opts = DbOptions {
            max_bytes_for_level_base: 50,
            ..DbOptions::default()
        };
        let mut e = VersionEdit::default();
        for f in [
            meta(5, b"a", b"c", 100),
            meta(6, b"m", b"p", 100),
            meta(7, b"x", b"z", 100),
        ] {
            e.added.push((1, f));
        }
        e.added.push((2, meta(20, b"n", b"o", 100)));
        let v = crate::version::apply_edit(&Version::empty(7), &e);
        let mut cursors = CompactionCursors::new(7);
        let mut busy = HashSet::new();
        busy.insert(20u64);

        let t1 = pick(&v, &opts, &busy, &mut cursors).unwrap();
        assert_eq!(t1.inputs[0].number, 5);
        // Next pick lands on B, whose L2 overlap is busy: no task, and the
        // cursor must still point just past A.
        assert!(pick(&v, &opts, &busy, &mut cursors).is_none());
        busy.clear();
        let order: Vec<u64> = (0..4)
            .map(|_| pick(&v, &opts, &busy, &mut cursors).unwrap().inputs[0].number)
            .collect();
        assert_eq!(order, vec![6, 7, 5, 6], "B must not be skipped");
    }
}
