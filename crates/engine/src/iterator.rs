//! Internal iterators: the merging machinery behind scans and compaction.

use crate::db::TableCache;
use crate::error::DbResult;
use crate::memtable::MemTableIter;
use crate::sst::TableIterator;
use crate::stats::DbStats;
use crate::types::{self, compare_internal, SequenceNumber, ValueType};
use crate::version::FileMetaData;
use std::cmp::Ordering;
use std::sync::Arc;

/// A cursor over internal `(key, value)` entries in internal-key order.
///
/// All movement methods return whether the iterator is positioned on a valid
/// entry afterwards; I/O-backed implementations surface read errors.
pub trait InternalIterator: Send {
    /// Positions at the first entry.
    ///
    /// # Errors
    ///
    /// Underlying read failures.
    fn seek_to_first(&mut self) -> DbResult<bool>;
    /// Positions at the first entry with internal key ≥ `ikey`.
    ///
    /// # Errors
    ///
    /// Underlying read failures.
    fn seek(&mut self, ikey: &[u8]) -> DbResult<bool>;
    /// Advances one entry.
    ///
    /// # Errors
    ///
    /// Underlying read failures.
    fn next(&mut self) -> DbResult<bool>;
    /// Whether positioned on an entry.
    fn valid(&self) -> bool;
    /// Current internal key (only when valid).
    fn key(&self) -> Vec<u8>;
    /// Current value (only when valid).
    fn value(&self) -> Vec<u8>;
}

impl InternalIterator for MemTableIter {
    fn seek_to_first(&mut self) -> DbResult<bool> {
        Ok(MemTableIter::seek_to_first(self))
    }
    fn seek(&mut self, ikey: &[u8]) -> DbResult<bool> {
        Ok(MemTableIter::seek(self, ikey))
    }
    fn next(&mut self) -> DbResult<bool> {
        Ok(MemTableIter::next(self))
    }
    fn valid(&self) -> bool {
        MemTableIter::valid(self)
    }
    fn key(&self) -> Vec<u8> {
        MemTableIter::key(self)
    }
    fn value(&self) -> Vec<u8> {
        MemTableIter::value(self)
    }
}

impl InternalIterator for TableIterator {
    fn seek_to_first(&mut self) -> DbResult<bool> {
        TableIterator::seek_to_first(self)
    }
    fn seek(&mut self, ikey: &[u8]) -> DbResult<bool> {
        TableIterator::seek(self, ikey)
    }
    fn next(&mut self) -> DbResult<bool> {
        TableIterator::next(self)
    }
    fn valid(&self) -> bool {
        TableIterator::valid(self)
    }
    fn key(&self) -> Vec<u8> {
        TableIterator::key(self)
    }
    fn value(&self) -> Vec<u8> {
        TableIterator::value(self)
    }
}

/// Concatenating iterator over the disjoint, sorted files of one level ≥ 1.
pub struct LevelIterator {
    files: Vec<Arc<FileMetaData>>,
    cache: Arc<TableCache>,
    stats: Arc<DbStats>,
    file_idx: usize,
    cur: Option<TableIterator>,
    readahead: bool,
}

impl std::fmt::Debug for LevelIterator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LevelIterator")
            .field("files", &self.files.len())
            .field("file_idx", &self.file_idx)
            .finish()
    }
}

impl LevelIterator {
    /// Creates an iterator over `files` (must be sorted and disjoint).
    pub fn new(
        files: Vec<Arc<FileMetaData>>,
        cache: Arc<TableCache>,
        stats: Arc<DbStats>,
    ) -> LevelIterator {
        LevelIterator {
            files,
            cache,
            stats,
            file_idx: 0,
            cur: None,
            readahead: false,
        }
    }

    /// Like [`LevelIterator::new`] but with sequential readahead on each
    /// file (compaction access pattern).
    pub fn new_with_readahead(
        files: Vec<Arc<FileMetaData>>,
        cache: Arc<TableCache>,
        stats: Arc<DbStats>,
    ) -> LevelIterator {
        LevelIterator {
            readahead: true,
            ..LevelIterator::new(files, cache, stats)
        }
    }

    fn open_file(&mut self, idx: usize) -> DbResult<bool> {
        if idx >= self.files.len() {
            self.cur = None;
            return Ok(false);
        }
        self.file_idx = idx;
        let reader = self.cache.reader(&self.files[idx])?;
        let mut it = if self.readahead {
            reader.iter_with_readahead(Arc::clone(&self.stats))
        } else {
            reader.iter(Arc::clone(&self.stats))
        };
        let ok = it.seek_to_first()?;
        self.cur = Some(it);
        Ok(ok)
    }
}

impl InternalIterator for LevelIterator {
    fn seek_to_first(&mut self) -> DbResult<bool> {
        self.open_file(0)
    }

    fn seek(&mut self, ikey: &[u8]) -> DbResult<bool> {
        // Find the first file whose largest ≥ ikey.
        let idx = self
            .files
            .partition_point(|f| compare_internal(&f.largest, ikey) == Ordering::Less);
        if idx >= self.files.len() {
            self.cur = None;
            return Ok(false);
        }
        let reader = self.cache.reader(&self.files[idx])?;
        let mut it = if self.readahead {
            reader.iter_with_readahead(Arc::clone(&self.stats))
        } else {
            reader.iter(Arc::clone(&self.stats))
        };
        self.file_idx = idx;
        if it.seek(ikey)? {
            self.cur = Some(it);
            Ok(true)
        } else {
            // ikey is past this file (between files): start of the next one.
            self.open_file(idx + 1)
        }
    }

    fn next(&mut self) -> DbResult<bool> {
        let Some(cur) = &mut self.cur else {
            return Ok(false);
        };
        if cur.next()? {
            return Ok(true);
        }
        self.open_file(self.file_idx + 1)
    }

    fn valid(&self) -> bool {
        self.cur.as_ref().is_some_and(|c| c.valid())
    }

    fn key(&self) -> Vec<u8> {
        self.cur.as_ref().unwrap().key()
    }

    fn value(&self) -> Vec<u8> {
        self.cur.as_ref().unwrap().value()
    }
}

/// K-way merge over child iterators.
///
/// Children should be ordered newest-first; on exact internal-key ties the
/// lower-index child wins (ties cannot happen for distinct sequence
/// numbers, so this is a safety property, not a correctness crutch).
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    current: Option<usize>,
}

impl std::fmt::Debug for MergingIterator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergingIterator")
            .field("children", &self.children.len())
            .field("current", &self.current)
            .finish()
    }
}

impl MergingIterator {
    /// Merges `children`.
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> MergingIterator {
        MergingIterator {
            children,
            current: None,
        }
    }

    fn pick_smallest(&mut self) {
        let mut best: Option<(usize, Vec<u8>)> = None;
        for (i, c) in self.children.iter().enumerate() {
            if !c.valid() {
                continue;
            }
            let k = c.key();
            match &best {
                None => best = Some((i, k)),
                Some((_, bk)) => {
                    if compare_internal(&k, bk) == Ordering::Less {
                        best = Some((i, k));
                    }
                }
            }
        }
        self.current = best.map(|(i, _)| i);
    }
}

impl InternalIterator for MergingIterator {
    fn seek_to_first(&mut self) -> DbResult<bool> {
        for c in &mut self.children {
            c.seek_to_first()?;
        }
        self.pick_smallest();
        Ok(self.valid())
    }

    fn seek(&mut self, ikey: &[u8]) -> DbResult<bool> {
        for c in &mut self.children {
            c.seek(ikey)?;
        }
        self.pick_smallest();
        Ok(self.valid())
    }

    fn next(&mut self) -> DbResult<bool> {
        if let Some(i) = self.current {
            self.children[i].next()?;
            self.pick_smallest();
        }
        Ok(self.valid())
    }

    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn key(&self) -> Vec<u8> {
        self.children[self.current.unwrap()].key()
    }

    fn value(&self) -> Vec<u8> {
        self.children[self.current.unwrap()].value()
    }
}

/// User-facing scan cursor: resolves versions and tombstones at a snapshot.
pub struct DbIterator {
    inner: MergingIterator,
    snapshot: SequenceNumber,
    /// Current user-visible entry.
    entry: Option<(Vec<u8>, Vec<u8>)>,
}

impl std::fmt::Debug for DbIterator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbIterator")
            .field("snapshot", &self.snapshot)
            .field("valid", &self.entry.is_some())
            .finish()
    }
}

impl DbIterator {
    /// Wraps a merged internal iterator at `snapshot`.
    pub fn new(inner: MergingIterator, snapshot: SequenceNumber) -> DbIterator {
        DbIterator {
            inner,
            snapshot,
            entry: None,
        }
    }

    /// Finds the next visible user entry at/after the inner position,
    /// skipping newer-than-snapshot versions, older duplicates and
    /// tombstones.
    fn resolve_forward(&mut self, mut skip_user_key: Option<Vec<u8>>) -> DbResult<()> {
        self.entry = None;
        while self.inner.valid() {
            let ikey = self.inner.key();
            let (uk, seq, t) = types::parse_internal_key(&ikey);
            if let Some(skip) = &skip_user_key {
                if uk == &skip[..] {
                    self.inner.next()?;
                    continue;
                }
            }
            if seq > self.snapshot {
                self.inner.next()?;
                continue;
            }
            match t {
                ValueType::Deletion => {
                    skip_user_key = Some(uk.to_vec());
                    self.inner.next()?;
                }
                ValueType::Value => {
                    self.entry = Some((uk.to_vec(), self.inner.value()));
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Positions at the first visible entry.
    ///
    /// # Errors
    ///
    /// Underlying read failures.
    pub fn seek_to_first(&mut self) -> DbResult<bool> {
        self.inner.seek_to_first()?;
        self.resolve_forward(None)?;
        Ok(self.valid())
    }

    /// Positions at the first visible entry with user key ≥ `key`.
    ///
    /// # Errors
    ///
    /// Underlying read failures.
    pub fn seek(&mut self, key: &[u8]) -> DbResult<bool> {
        let lookup = types::make_lookup_key(key, self.snapshot);
        self.inner.seek(&lookup)?;
        self.resolve_forward(None)?;
        Ok(self.valid())
    }

    /// Advances to the next visible user key.
    ///
    /// # Errors
    ///
    /// Underlying read failures.
    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> DbResult<bool> {
        if let Some((uk, _)) = self.entry.take() {
            self.resolve_forward(Some(uk))?;
        }
        Ok(self.valid())
    }

    /// Whether positioned on a visible entry.
    pub fn valid(&self) -> bool {
        self.entry.is_some()
    }

    /// Current user key.
    pub fn key(&self) -> &[u8] {
        &self.entry.as_ref().unwrap().0
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        &self.entry.as_ref().unwrap().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::MemTable;
    use crate::types::make_internal_key;

    fn mem_iter(entries: &[(&[u8], u64, ValueType, &[u8])]) -> Box<dyn InternalIterator> {
        let m = MemTable::new(0);
        for (k, seq, t, v) in entries {
            m.add(*seq, *t, k, v);
        }
        Box::new(m.iter())
    }

    #[test]
    fn merge_two_sources_in_order() {
        let a = mem_iter(&[
            (b"a", 1, ValueType::Value, b"1"),
            (b"c", 3, ValueType::Value, b"3"),
        ]);
        let b = mem_iter(&[
            (b"b", 2, ValueType::Value, b"2"),
            (b"d", 4, ValueType::Value, b"4"),
        ]);
        let mut m = MergingIterator::new(vec![a, b]);
        assert!(m.seek_to_first().unwrap());
        let mut keys = Vec::new();
        while m.valid() {
            keys.push(types::user_key(&m.key()).to_vec());
            m.next().unwrap();
        }
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn merge_interleaves_versions_newest_first() {
        let newer = mem_iter(&[(b"k", 9, ValueType::Value, b"new")]);
        let older = mem_iter(&[(b"k", 3, ValueType::Value, b"old")]);
        let mut m = MergingIterator::new(vec![newer, older]);
        assert!(m.seek_to_first().unwrap());
        let (_, seq, _) = types::parse_internal_key(&m.key());
        assert_eq!(seq, 9);
        assert!(m.next().unwrap());
        let (_, seq2, _) = types::parse_internal_key(&m.key());
        assert_eq!(seq2, 3);
    }

    #[test]
    fn merge_seek() {
        let a = mem_iter(&[
            (b"a", 1, ValueType::Value, b""),
            (b"e", 2, ValueType::Value, b""),
        ]);
        let b = mem_iter(&[(b"c", 3, ValueType::Value, b"")]);
        let mut m = MergingIterator::new(vec![a, b]);
        assert!(m
            .seek(&make_internal_key(b"b", u64::MAX >> 8, ValueType::Value))
            .unwrap());
        assert_eq!(types::user_key(&m.key()), b"c");
    }

    #[test]
    fn db_iterator_resolves_versions_and_tombstones() {
        let src = mem_iter(&[
            (b"a", 1, ValueType::Value, b"a1"),
            (b"a", 5, ValueType::Value, b"a5"),
            (b"b", 2, ValueType::Value, b"b2"),
            (b"b", 6, ValueType::Deletion, b""),
            (b"c", 3, ValueType::Value, b"c3"),
        ]);
        let mut it = DbIterator::new(MergingIterator::new(vec![src]), 100);
        assert!(it.seek_to_first().unwrap());
        assert_eq!((it.key(), it.value()), (&b"a"[..], &b"a5"[..]));
        assert!(it.next().unwrap());
        assert_eq!((it.key(), it.value()), (&b"c"[..], &b"c3"[..]));
        assert!(!it.next().unwrap());
    }

    #[test]
    fn db_iterator_respects_snapshot() {
        let src = mem_iter(&[
            (b"a", 1, ValueType::Value, b"a1"),
            (b"a", 5, ValueType::Value, b"a5"),
            (b"b", 6, ValueType::Value, b"b6"),
        ]);
        let mut it = DbIterator::new(MergingIterator::new(vec![src]), 4);
        assert!(it.seek_to_first().unwrap());
        assert_eq!((it.key(), it.value()), (&b"a"[..], &b"a1"[..]));
        assert!(!it.next().unwrap(), "b@6 is invisible at snapshot 4");
    }

    #[test]
    fn db_iterator_seek_skips_deleted() {
        let src = mem_iter(&[
            (b"a", 1, ValueType::Value, b""),
            (b"b", 2, ValueType::Deletion, b""),
            (b"c", 3, ValueType::Value, b"cv"),
        ]);
        let mut it = DbIterator::new(MergingIterator::new(vec![src]), 100);
        assert!(it.seek(b"b").unwrap());
        assert_eq!(it.key(), b"c");
    }

    #[test]
    fn empty_merge_is_invalid() {
        let mut m = MergingIterator::new(vec![]);
        assert!(!m.seek_to_first().unwrap());
        assert!(!m.valid());
    }
}
