//! Write batches: the atomic unit of the write path and the WAL payload.
//!
//! Encoding (LevelDB-compatible in spirit):
//! `[sequence u64][count u32]` then per op `[tag u8][key][value?]` with
//! length-prefixed slices.

use crate::coding::*;
use crate::error::{DbError, DbResult};
use crate::memtable::MemTable;
use crate::types::{SequenceNumber, ValueType};

const HEADER: usize = 12;

/// A batch of updates applied atomically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteBatch {
    rep: Vec<u8>,
    count: u32,
}

impl Default for WriteBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch {
            rep: vec![0; HEADER],
            count: 0,
        }
    }

    /// Queues a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed(&mut self.rep, key);
        put_length_prefixed(&mut self.rep, value);
        self.count += 1;
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: &[u8]) {
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed(&mut self.rep, key);
        self.count += 1;
    }

    /// Empties the batch.
    pub fn clear(&mut self) {
        self.rep.truncate(HEADER);
        self.rep.fill(0);
        self.count = 0;
    }

    /// Number of operations queued.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the serialized representation in bytes.
    pub fn byte_size(&self) -> usize {
        self.rep.len()
    }

    /// Stamps the starting sequence number (done by the group leader).
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[0..8].copy_from_slice(&seq.to_le_bytes());
        self.rep[8..12].copy_from_slice(&self.count.to_le_bytes());
    }

    /// The starting sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        u64::from_le_bytes(self.rep[0..8].try_into().unwrap())
    }

    /// Serialized bytes (WAL payload).
    pub fn data(&self) -> &[u8] {
        &self.rep
    }

    /// Reconstructs a batch from serialized bytes (WAL replay).
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] if the payload is malformed.
    pub fn from_data(data: &[u8]) -> DbResult<WriteBatch> {
        if data.len() < HEADER {
            return Err(DbError::Corruption("batch shorter than header".into()));
        }
        let b = WriteBatch {
            rep: data.to_vec(),
            count: u32::from_le_bytes(data[8..12].try_into().unwrap()),
        };
        // Validate structure eagerly.
        let mut n = 0;
        for op in b.iter() {
            op?;
            n += 1;
        }
        if n != b.count {
            return Err(DbError::Corruption(format!(
                "batch count mismatch: header {} actual {n}",
                b.count
            )));
        }
        Ok(b)
    }

    /// Iterates the operations as `(type, key, value)`.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter {
            data: &self.rep,
            off: HEADER,
        }
    }

    /// Applies all operations to `mem`, assigning consecutive sequence
    /// numbers starting at the batch's stamped sequence.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] if the payload is malformed.
    pub fn apply_to(&self, mem: &MemTable) -> DbResult<()> {
        for (seq, op) in (self.sequence()..).zip(self.iter()) {
            let (t, key, value) = op?;
            mem.add(seq, t, key, value);
        }
        Ok(())
    }

    /// Merges `other`'s operations into `self` (group commit).
    pub fn append_batch(&mut self, other: &WriteBatch) {
        self.rep.extend_from_slice(&other.rep[HEADER..]);
        self.count += other.count;
    }
}

/// Iterator over batch operations.
#[derive(Debug)]
pub struct BatchIter<'a> {
    data: &'a [u8],
    off: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = DbResult<(ValueType, &'a [u8], &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.off >= self.data.len() {
            return None;
        }
        let tag = self.data[self.off];
        self.off += 1;
        let t = match tag {
            0 => ValueType::Deletion,
            1 => ValueType::Value,
            _ => return Some(Err(DbError::Corruption(format!("bad batch tag {tag}")))),
        };
        let Some(key) = get_length_prefixed(self.data, &mut self.off) else {
            return Some(Err(DbError::Corruption("bad batch key".into())));
        };
        let value = if t == ValueType::Value {
            match get_length_prefixed(self.data, &mut self.off) {
                Some(v) => v,
                None => return Some(Err(DbError::Corruption("bad batch value".into()))),
            }
        } else {
            &[]
        };
        Some(Ok((t, key, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_delete_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.delete(b"b");
        b.put(b"c", b"3");
        b.set_sequence(100);
        assert_eq!(b.count(), 3);
        assert_eq!(b.sequence(), 100);
        let ops: Vec<_> = b.iter().map(|o| o.unwrap()).collect();
        assert_eq!(
            ops,
            vec![
                (ValueType::Value, &b"a"[..], &b"1"[..]),
                (ValueType::Deletion, &b"b"[..], &b""[..]),
                (ValueType::Value, &b"c"[..], &b"3"[..]),
            ]
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"key", b"value");
        b.delete(b"gone");
        b.set_sequence(7);
        let decoded = WriteBatch::from_data(b.data()).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn corrupt_data_rejected() {
        assert!(WriteBatch::from_data(b"short").is_err());
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        b.set_sequence(1);
        let mut bytes = b.data().to_vec();
        bytes[HEADER] = 9; // bad tag
        assert!(WriteBatch::from_data(&bytes).is_err());
        // Count mismatch.
        let mut bytes2 = b.data().to_vec();
        bytes2[8] = 5;
        assert!(WriteBatch::from_data(&bytes2).is_err());
    }

    #[test]
    fn apply_to_memtable_assigns_sequences() {
        let mem = MemTable::new(0);
        let mut b = WriteBatch::new();
        b.put(b"x", b"1");
        b.put(b"x", b"2");
        b.set_sequence(10);
        b.apply_to(&mem).unwrap();
        // Sequence 11 (the second put) wins at the latest snapshot.
        assert_eq!(mem.get(b"x", 100), Some(Some(b"2".to_vec())));
        assert_eq!(mem.get(b"x", 10), Some(Some(b"1".to_vec())));
    }

    #[test]
    fn append_batch_groups() {
        let mut leader = WriteBatch::new();
        leader.put(b"a", b"1");
        let mut follower = WriteBatch::new();
        follower.delete(b"b");
        follower.put(b"c", b"2");
        leader.append_batch(&follower);
        leader.set_sequence(1);
        assert_eq!(leader.count(), 3);
        let mem = MemTable::new(0);
        leader.apply_to(&mem).unwrap();
        assert_eq!(mem.get(b"c", 100), Some(Some(b"2".to_vec())));
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.byte_size(), HEADER);
    }
}
