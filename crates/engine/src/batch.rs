//! Write batches: the atomic unit of the write path and the WAL payload.
//!
//! Encoding (LevelDB-compatible in spirit):
//! `[sequence u64][count u32]` then per op `[tag u8][key][value?]` with
//! length-prefixed slices.
//!
//! When [`WriteBatch::enable_protection`] is on, a per-entry checksum
//! sidecar ([`crate::integrity`]) travels with the batch in memory — it is
//! *not* part of the serialized representation (the WAL has its own record
//! CRCs) but is carried verbatim through group-commit merges and verified
//! at every handoff down to the memtable insert.

use crate::coding::*;
use crate::error::{DbError, DbResult};
use crate::integrity;
use crate::memtable::MemTable;
use crate::types::{SequenceNumber, ValueType};

const HEADER: usize = 12;

/// A batch of updates applied atomically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteBatch {
    rep: Vec<u8>,
    count: u32,
    /// Per-entry protection values, truncated to `prot_width` bytes each
    /// (empty when protection is off).
    prot: Vec<u64>,
    /// Protection width in bytes (0 = off).
    prot_width: usize,
}

impl Default for WriteBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch {
            rep: vec![0; HEADER],
            count: 0,
            prot: Vec::new(),
            prot_width: 0,
        }
    }

    /// An empty batch computing `width`-byte per-entry protection as
    /// operations are queued. `width` must be in
    /// [`integrity::VALID_PROTECTION_WIDTHS`].
    pub fn with_protection(width: usize) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.enable_protection(width);
        b
    }

    /// Queues a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed(&mut self.rep, key);
        put_length_prefixed(&mut self.rep, value);
        self.count += 1;
        if self.prot_width > 0 {
            self.prot.push(integrity::truncate_protection(
                integrity::entry_protection(ValueType::Value, key, value),
                self.prot_width,
            ));
        }
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: &[u8]) {
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed(&mut self.rep, key);
        self.count += 1;
        if self.prot_width > 0 {
            self.prot.push(integrity::truncate_protection(
                integrity::entry_protection(ValueType::Deletion, key, &[]),
                self.prot_width,
            ));
        }
    }

    /// Empties the batch (protection width is retained).
    pub fn clear(&mut self) {
        self.rep.truncate(HEADER);
        self.rep.fill(0);
        self.count = 0;
        self.prot.clear();
    }

    /// Number of operations queued.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Size of the serialized representation in bytes.
    pub fn byte_size(&self) -> usize {
        self.rep.len()
    }

    /// Stamps the starting sequence number (done by the group leader).
    /// Protection is sequence-independent, so no sidecar recompute happens.
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[0..8].copy_from_slice(&seq.to_le_bytes());
        self.rep[8..12].copy_from_slice(&self.count.to_le_bytes());
    }

    /// The starting sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        u64::from_le_bytes(self.rep[0..8].try_into().unwrap())
    }

    /// Serialized bytes (WAL payload).
    pub fn data(&self) -> &[u8] {
        &self.rep
    }

    /// The configured protection width in bytes (0 = off).
    pub fn protection_width(&self) -> usize {
        self.prot_width
    }

    /// Switches per-entry protection to `width` bytes, (re)computing the
    /// sidecar for already-queued operations when the width changes.
    /// `width` must be in [`integrity::VALID_PROTECTION_WIDTHS`]; `0`
    /// disables protection and drops the sidecar.
    pub fn enable_protection(&mut self, width: usize) {
        debug_assert!(integrity::VALID_PROTECTION_WIDTHS.contains(&width));
        if width == self.prot_width {
            return;
        }
        self.prot_width = width;
        self.prot.clear();
        if width == 0 {
            return;
        }
        // Iterate the serialized ops; an undecodable batch gets an empty
        // sidecar and fails verification downstream instead of panicking.
        let mut prot = Vec::with_capacity(self.count() as usize);
        for op in self.iter() {
            let Ok((t, key, value)) = op else { break };
            prot.push(integrity::truncate_protection(
                integrity::entry_protection(t, key, value),
                width,
            ));
        }
        self.prot = prot;
    }

    /// Verifies every queued entry against the protection sidecar —
    /// `layer` names the handoff for the error message. No-op when
    /// protection is off.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on the first mismatching (or missing) entry.
    pub fn verify_protection(&self, layer: &str) -> DbResult<()> {
        if self.prot_width == 0 {
            return Ok(());
        }
        let mut n = 0usize;
        for (i, op) in self.iter().enumerate() {
            let (t, key, value) = op?;
            let Some(&stored) = self.prot.get(i) else {
                return Err(DbError::corruption(format!(
                    "per-key protection missing at {layer} (entry {i})"
                )));
            };
            integrity::verify_entry(stored, self.prot_width, t, key, value, layer, i)?;
            n += 1;
        }
        if n != self.prot.len() {
            return Err(DbError::corruption(format!(
                "per-key protection count mismatch at {layer}: {} values for {n} entries",
                self.prot.len()
            )));
        }
        Ok(())
    }

    /// Verifies the `index`-th entry (already decoded as `(t, key, value)`)
    /// against the sidecar. No-op when protection is off. Used by the
    /// concurrent memtable-insert path, which decodes entries itself.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on mismatch.
    pub fn verify_entry(
        &self,
        index: usize,
        t: ValueType,
        key: &[u8],
        value: &[u8],
        layer: &str,
    ) -> DbResult<()> {
        if self.prot_width == 0 {
            return Ok(());
        }
        let Some(&stored) = self.prot.get(index) else {
            return Err(DbError::corruption(format!(
                "per-key protection missing at {layer} (entry {index})"
            )));
        };
        integrity::verify_entry(stored, self.prot_width, t, key, value, layer, index)
    }

    /// Reconstructs a batch from serialized bytes (WAL replay). Protection
    /// starts disabled; the replay path re-enables it after the WAL record
    /// CRC has vouched for the bytes.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] if the payload is malformed.
    pub fn from_data(data: &[u8]) -> DbResult<WriteBatch> {
        if data.len() < HEADER {
            return Err(DbError::Corruption("batch shorter than header".into()));
        }
        let b = WriteBatch {
            rep: data.to_vec(),
            count: u32::from_le_bytes(data[8..12].try_into().unwrap()),
            prot: Vec::new(),
            prot_width: 0,
        };
        // Validate structure eagerly.
        let mut n = 0;
        for op in b.iter() {
            op?;
            n += 1;
        }
        if n != b.count {
            return Err(DbError::corruption(format!(
                "batch count mismatch: header {} actual {n}",
                b.count
            )));
        }
        Ok(b)
    }

    /// Iterates the operations as `(type, key, value)`.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter {
            data: &self.rep,
            off: HEADER,
        }
    }

    /// Applies all operations to `mem`, assigning consecutive sequence
    /// numbers starting at the batch's stamped sequence. With protection
    /// enabled each entry is verified against its sidecar immediately
    /// before insertion — the final handoff of the protection chain.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] if the payload is malformed or an entry
    /// fails protection verification.
    pub fn apply_to(&self, mem: &MemTable) -> DbResult<()> {
        for ((i, op), seq) in self.iter().enumerate().zip(self.sequence()..) {
            let (t, key, value) = op?;
            self.verify_entry(i, t, key, value, "memtable insert")?;
            mem.add(seq, t, key, value);
        }
        Ok(())
    }

    /// Merges `other`'s operations into `self` (group commit). The
    /// protection sidecar is carried *verbatim* when widths match (so a
    /// corruption during the merge stays detectable) and recomputed at
    /// `self`'s width otherwise.
    pub fn append_batch(&mut self, other: &WriteBatch) {
        self.rep.extend_from_slice(&other.rep[HEADER..]);
        self.count += other.count;
        if self.prot_width == 0 {
            return;
        }
        if other.prot_width == self.prot_width {
            self.prot.extend_from_slice(&other.prot);
        } else {
            for op in other.iter() {
                let Ok((t, key, value)) = op else { break };
                self.prot.push(integrity::truncate_protection(
                    integrity::entry_protection(t, key, value),
                    self.prot_width,
                ));
            }
        }
    }
}

/// Iterator over batch operations.
#[derive(Debug)]
pub struct BatchIter<'a> {
    data: &'a [u8],
    off: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = DbResult<(ValueType, &'a [u8], &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.off >= self.data.len() {
            return None;
        }
        let tag = self.data[self.off];
        self.off += 1;
        let t = match tag {
            0 => ValueType::Deletion,
            1 => ValueType::Value,
            _ => return Some(Err(DbError::corruption(format!("bad batch tag {tag}")))),
        };
        let Some(key) = get_length_prefixed(self.data, &mut self.off) else {
            return Some(Err(DbError::Corruption("bad batch key".into())));
        };
        let value = if t == ValueType::Value {
            match get_length_prefixed(self.data, &mut self.off) {
                Some(v) => v,
                None => return Some(Err(DbError::Corruption("bad batch value".into()))),
            }
        } else {
            &[]
        };
        Some(Ok((t, key, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_delete_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.delete(b"b");
        b.put(b"c", b"3");
        b.set_sequence(100);
        assert_eq!(b.count(), 3);
        assert_eq!(b.sequence(), 100);
        let ops: Vec<_> = b.iter().map(|o| o.unwrap()).collect();
        assert_eq!(
            ops,
            vec![
                (ValueType::Value, &b"a"[..], &b"1"[..]),
                (ValueType::Deletion, &b"b"[..], &b""[..]),
                (ValueType::Value, &b"c"[..], &b"3"[..]),
            ]
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"key", b"value");
        b.delete(b"gone");
        b.set_sequence(7);
        let decoded = WriteBatch::from_data(b.data()).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn corrupt_data_rejected() {
        assert!(WriteBatch::from_data(b"short").is_err());
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        b.set_sequence(1);
        let mut bytes = b.data().to_vec();
        bytes[HEADER] = 9; // bad tag
        assert!(WriteBatch::from_data(&bytes).is_err());
        // Count mismatch.
        let mut bytes2 = b.data().to_vec();
        bytes2[8] = 5;
        assert!(WriteBatch::from_data(&bytes2).is_err());
    }

    #[test]
    fn apply_to_memtable_assigns_sequences() {
        let mem = MemTable::new(0);
        let mut b = WriteBatch::new();
        b.put(b"x", b"1");
        b.put(b"x", b"2");
        b.set_sequence(10);
        b.apply_to(&mem).unwrap();
        // Sequence 11 (the second put) wins at the latest snapshot.
        assert_eq!(mem.get(b"x", 100).unwrap(), Some(Some(b"2".to_vec())));
        assert_eq!(mem.get(b"x", 10).unwrap(), Some(Some(b"1".to_vec())));
    }

    #[test]
    fn append_batch_groups() {
        let mut leader = WriteBatch::new();
        leader.put(b"a", b"1");
        let mut follower = WriteBatch::new();
        follower.delete(b"b");
        follower.put(b"c", b"2");
        leader.append_batch(&follower);
        leader.set_sequence(1);
        assert_eq!(leader.count(), 3);
        let mem = MemTable::new(0);
        leader.apply_to(&mem).unwrap();
        assert_eq!(mem.get(b"c", 100).unwrap(), Some(Some(b"2".to_vec())));
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.byte_size(), HEADER);
    }

    #[test]
    fn protection_sidecar_follows_operations() {
        for width in [1usize, 2, 4, 8] {
            let mut b = WriteBatch::with_protection(width);
            b.put(b"a", b"1");
            b.delete(b"b");
            b.set_sequence(42);
            assert_eq!(b.protection_width(), width);
            b.verify_protection("unit test").unwrap();
        }
    }

    #[test]
    fn protection_survives_merge_and_restamp() {
        let mut leader = WriteBatch::with_protection(8);
        leader.put(b"a", b"1");
        let mut follower = WriteBatch::with_protection(8);
        follower.put(b"b", b"2");
        follower.delete(b"c");
        leader.append_batch(&follower);
        leader.set_sequence(99);
        leader.verify_protection("post-merge").unwrap();
        // Mixed widths: recomputed at the leader's width.
        let mut narrow = WriteBatch::with_protection(2);
        narrow.put(b"d", b"4");
        leader.append_batch(&narrow);
        leader.verify_protection("post-mixed-merge").unwrap();
        assert_eq!(leader.count(), 4);
    }

    #[test]
    fn protection_detects_rep_corruption() {
        let mut b = WriteBatch::with_protection(8);
        b.put(b"key", b"value");
        b.set_sequence(1);
        b.verify_protection("pre").unwrap();
        // Flip one byte of the value in the serialized rep; the sidecar
        // was computed from the clean bytes and must now mismatch.
        let last = b.rep.len() - 1;
        b.rep[last] ^= 0x01;
        let e = b.verify_protection("wal encode").unwrap_err();
        assert!(e.is_corruption(), "got {e:?}");
        assert!(e.to_string().contains("wal encode"));
        // apply_to must also refuse.
        let mem = MemTable::new(0);
        assert!(b.apply_to(&mem).is_err());
    }

    #[test]
    fn enable_protection_retrofits_existing_entries() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.delete(b"b");
        b.enable_protection(4);
        b.verify_protection("retrofit").unwrap();
        // Width change recomputes.
        b.enable_protection(8);
        b.verify_protection("widen").unwrap();
        // Disabling drops the sidecar.
        b.enable_protection(0);
        assert_eq!(b.protection_width(), 0);
        b.verify_protection("off").unwrap();
    }
}
