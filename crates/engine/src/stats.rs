//! Engine-wide counters, gauges and latency histograms.

use crate::controller::ControllerSnapshot;
use crate::histogram::{Histogram, HistogramSummary};
use crate::stall::{StallAccounting, StallEvent, StallTotals};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xlsm_device::DeviceSnapshot;

/// Monotonic event counters (RocksDB "tickers").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
#[allow(missing_docs)]
pub enum Ticker {
    Puts,
    Deletes,
    Gets,
    GetHitMemtable,
    GetHitImmutable,
    GetHitL0,
    GetHitLn,
    GetMiss,
    L0FilesSearched,
    BloomUseful,
    BlockCacheHit,
    BlockCacheMiss,
    WalBytes,
    WalSyncs,
    FlushCount,
    FlushBytes,
    CompactionCount,
    CompactReadBytes,
    CompactWriteBytes,
    TrivialMoves,
    StallDelayedWrites,
    StallStoppedWrites,
    StallMicros,
    WriteGroupsLed,
    WritesJoinedGroup,
    BackgroundErrors,
    BackgroundErrorRetries,
    BackgroundAutoResumes,
    ReadOnlyTransitions,
    CorruptionDetected,
    SubcompactionsLaunched,
    SubcompactionFallbacks,
    MultiGetBatches,
    MultiGetKeys,
    MultiGetProbeThreads,
    /// Write-group member batches applied to the memtable *concurrently*
    /// (on the member's own thread, `allow_concurrent_memtable_write`).
    ConcurrentMemtableApplies,
    /// WAL records replayed into the recovery memtable at `Db::open`.
    WalRecoveredRecords,
    /// Bytes of torn/corrupt WAL tail abandoned during recovery (includes
    /// everything discarded past a point-in-time stop).
    WalDroppedTailBytes,
    /// Corrupt or sequence-gapped WAL records skipped over under
    /// `WalRecoveryMode::SkipAnyCorruptedRecords`.
    WalSkippedCorruptRecords,
    /// SSTs salvaged into the rebuilt manifest by `Db::repair` (surviving
    /// tables plus tables converted from surviving logs).
    RepairSstsRecovered,
    /// Unreferenced `.sst`/`.log` files deleted by the orphan sweep at
    /// `Db::open` (outputs stranded by a crash before their manifest
    /// install).
    OrphanFilesDeleted,
    /// Compressed data blocks decompressed on the read path.
    BlockDecompressions,
    /// On-disk (compressed) bytes of those blocks; together with
    /// `BlockUncompressedBytes` this yields the realized compression ratio.
    BlockCompressedBytes,
    /// In-memory (decompressed) bytes of those blocks.
    BlockUncompressedBytes,
    /// SST probes skipped because the table's prefix bloom rejected the
    /// query prefix.
    PrefixBloomUseful,
    /// Memtable searches skipped because the memtable's whole-key bloom
    /// rejected the key.
    MemtableBloomUseful,
    /// Bytes re-read and CRC-verified by the background scrubber.
    ScrubBytesVerified,
    /// Checksum mismatches the background scrubber found in live files.
    ScrubCorruptionsFound,
    /// Compactions dispatched by the greedy (max-score) scheduler.
    CompactionsScheduledGreedy,
    /// Compactions dispatched by the round-robin scheduler.
    CompactionsScheduledRoundRobin,
    /// Compactions dispatched by the fair (deficit-based) scheduler.
    CompactionsScheduledFair,
    /// Virtual nanoseconds background jobs spent waiting on the shared
    /// background-I/O budget (`bg_io_rate_bytes_per_sec`).
    BgIoThrottledNs,
    TickerCount, // sentinel
}

const TICKER_COUNT: usize = Ticker::TickerCount as usize;

/// Shared statistics sink for one database instance.
#[derive(Debug)]
pub struct DbStats {
    tickers: [AtomicU64; TICKER_COUNT],
    /// Client-visible Get latency.
    pub get_latency: Histogram,
    /// Client-visible write (batch commit) latency.
    pub write_latency: Histogram,
    /// Time writers spend queued before their batch commits.
    pub write_queue_wait: Histogram,
    /// WAL append durations.
    pub wal_append: Histogram,
    /// Flush job durations.
    pub flush_duration: Histogram,
    /// Compaction job durations.
    pub compaction_duration: Histogram,
    /// Per-subcompaction (one key range of a fanned-out compaction) merge
    /// durations; empty while compactions run serial.
    pub subcompaction_duration: Histogram,
    /// Client-visible MultiGet batch latency (whole batch, not per key).
    pub multi_get_latency: Histogram,
    /// Batches per committed write group (group-commit effectiveness; a
    /// deep queue on a fast device shows up as large groups here).
    pub write_group_batches: Histogram,
    /// Bytes per committed write group.
    pub write_group_bytes: Histogram,
    /// Duration of each completed scrub pass over the live file set. Not
    /// reset with the warm-up window: passes are long-lived and a reset
    /// mid-pass would discard the only samples.
    pub scrub_pass: Histogram,
    /// Per-acquire waits on the shared background-I/O budget (ns); empty
    /// while `bg_io_rate_bytes_per_sec` is 0. Like the other background
    /// histograms, not reset with the warm-up window.
    pub bg_io_wait: Histogram,
    /// Cross-layer write-stall accounting (per-op breakdowns + the
    /// controller-transition event log).
    pub stall: Arc<StallAccounting>,
    /// Currently-waiting writer threads (gauge).
    waiting_writers: AtomicU64,
    /// Accumulated samples of the waiting-writers gauge (sum, n) — sampled
    /// at each batch commit, reproducing the paper's Fig. 16 metric.
    waiting_sum: AtomicU64,
    waiting_samples: AtomicU64,
}

impl Default for DbStats {
    fn default() -> Self {
        Self::new()
    }
}

impl DbStats {
    /// Creates a zeroed sink.
    pub fn new() -> DbStats {
        DbStats {
            tickers: std::array::from_fn(|_| AtomicU64::new(0)),
            get_latency: Histogram::new(),
            write_latency: Histogram::new(),
            write_queue_wait: Histogram::new(),
            wal_append: Histogram::new(),
            flush_duration: Histogram::new(),
            compaction_duration: Histogram::new(),
            subcompaction_duration: Histogram::new(),
            multi_get_latency: Histogram::new(),
            write_group_batches: Histogram::new(),
            write_group_bytes: Histogram::new(),
            scrub_pass: Histogram::new(),
            bg_io_wait: Histogram::new(),
            stall: Arc::new(StallAccounting::default()),
            waiting_writers: AtomicU64::new(0),
            waiting_sum: AtomicU64::new(0),
            waiting_samples: AtomicU64::new(0),
        }
    }

    /// Shared handle.
    pub fn shared() -> Arc<DbStats> {
        Arc::new(DbStats::new())
    }

    /// Increments `t` by `n`.
    pub fn add(&self, t: Ticker, n: u64) {
        self.tickers[t as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments `t` by one.
    pub fn bump(&self, t: Ticker) {
        self.add(t, 1);
    }

    /// Current value of `t`.
    pub fn ticker(&self, t: Ticker) -> u64 {
        self.tickers[t as usize].load(Ordering::Relaxed)
    }

    /// A writer entered the queue.
    pub fn writer_waiting_inc(&self) {
        self.waiting_writers.fetch_add(1, Ordering::Relaxed);
    }

    /// A writer left the queue.
    pub fn writer_waiting_dec(&self) {
        self.waiting_writers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Samples the waiting-writers gauge (called at each group commit).
    pub fn sample_waiting_writers(&self) {
        let cur = self.waiting_writers.load(Ordering::Relaxed);
        self.waiting_sum.fetch_add(cur, Ordering::Relaxed);
        self.waiting_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Average number of waiting writer threads over all samples (Fig. 16).
    pub fn avg_waiting_writers(&self) -> f64 {
        let n = self.waiting_samples.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.waiting_sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Resets latency histograms and waiting-writer samples (tickers are
    /// monotonic and left untouched) — used to discard warm-up effects.
    pub fn reset_window(&self) {
        self.get_latency.reset();
        self.write_latency.reset();
        self.write_queue_wait.reset();
        self.wal_append.reset();
        self.multi_get_latency.reset();
        self.write_group_batches.reset();
        self.write_group_bytes.reset();
        self.stall.reset_window();
        self.waiting_sum.store(0, Ordering::Relaxed);
        self.waiting_samples.store(0, Ordering::Relaxed);
    }

    /// Copies every ticker at once.
    pub fn ticker_snapshot(&self) -> TickerSnapshot {
        TickerSnapshot(std::array::from_fn(|i| {
            self.tickers[i].load(Ordering::Relaxed)
        }))
    }
}

/// Point-in-time copy of all tickers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickerSnapshot([u64; TICKER_COUNT]);

impl TickerSnapshot {
    /// Value of `t` at snapshot time.
    pub fn get(&self, t: Ticker) -> u64 {
        self.0[t as usize]
    }
}

/// One cheap cross-layer snapshot answering "where did write time go":
/// engine tickers and histograms, the stall breakdown totals with the
/// drained controller-transition log, and device-side service/queue/GC
/// accounting. Produced by `Db::metrics()`.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// All engine tickers.
    pub tickers: TickerSnapshot,
    /// Client-visible Get latency.
    pub get_latency: HistogramSummary,
    /// Client-visible write (batch commit) latency.
    pub write_latency: HistogramSummary,
    /// Queue wait before a write's group committed.
    pub write_queue_wait: HistogramSummary,
    /// WAL append durations.
    pub wal_append: HistogramSummary,
    /// Flush job durations.
    pub flush_duration: HistogramSummary,
    /// Compaction job durations.
    pub compaction_duration: HistogramSummary,
    /// Per-subcompaction merge durations (empty while serial).
    pub subcompaction_duration: HistogramSummary,
    /// MultiGet batch latency.
    pub multi_get_latency: HistogramSummary,
    /// Batches per committed write group.
    pub write_group_batches: HistogramSummary,
    /// Bytes per committed write group.
    pub write_group_bytes: HistogramSummary,
    /// Completed background scrub passes (duration per full sweep of the
    /// live file set).
    pub scrub_pass: HistogramSummary,
    /// Waits on the shared background-I/O budget (per acquire, ns).
    pub bg_io_wait: HistogramSummary,
    /// Estimated bytes awaiting compaction right now — the scheduler's
    /// debt input (from `Version::pending_compaction_bytes`).
    pub compaction_debt_bytes: u64,
    /// Background-I/O budget currently in effect, bytes per virtual second
    /// (0 = unthrottled; differs from the configured base when auto-tune
    /// has scaled it with debt).
    pub bg_io_budget_bytes_per_sec: u64,
    /// Average queued writer threads (Fig. 16 metric).
    pub avg_waiting_writers: f64,
    /// Aggregate per-op stall breakdown totals.
    pub stall: StallTotals,
    /// Controller transitions since the previous snapshot (draining: each
    /// event is returned exactly once across successive calls).
    pub stall_events: Vec<StallEvent>,
    /// Current controller level and adaptive rate.
    pub controller: ControllerSnapshot,
    /// Device-side accounting (queueing, GC, write amplification) for the
    /// SST device.
    pub device: DeviceSnapshot,
    /// Same for the WAL device, when the WAL lives on a separate one.
    pub wal_device: Option<DeviceSnapshot>,
    /// The active background error, if the engine is in an error state
    /// (being retried, or hard and read-only).
    pub background_error: Option<crate::bgerror::BackgroundError>,
    /// Whether the engine is in read-only mode after a hard background
    /// error.
    pub read_only: bool,
}

impl Metrics {
    /// Fraction of observed end-to-end write time explained by the stall
    /// breakdown components.
    pub fn stall_coverage(&self) -> f64 {
        self.stall.coverage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickers_accumulate() {
        let s = DbStats::new();
        s.bump(Ticker::Puts);
        s.add(Ticker::Puts, 4);
        assert_eq!(s.ticker(Ticker::Puts), 5);
        assert_eq!(s.ticker(Ticker::Gets), 0);
    }

    #[test]
    fn waiting_writer_gauge_averages() {
        let s = DbStats::new();
        s.writer_waiting_inc();
        s.writer_waiting_inc();
        s.sample_waiting_writers(); // 2
        s.writer_waiting_dec();
        s.sample_waiting_writers(); // 1
        assert!((s.avg_waiting_writers() - 1.5).abs() < 1e-9);
        s.reset_window();
        assert_eq!(s.avg_waiting_writers(), 0.0);
    }

    #[test]
    fn reset_window_keeps_tickers() {
        let s = DbStats::new();
        s.bump(Ticker::FlushCount);
        s.get_latency.record(100);
        s.reset_window();
        assert_eq!(s.ticker(Ticker::FlushCount), 1);
        assert_eq!(s.get_latency.count(), 0);
    }
}
