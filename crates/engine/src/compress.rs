//! Block compression codecs.
//!
//! The engine models compression the way the paper's cost analysis needs
//! it: what matters is that the *on-disk block size shrinks* (changing the
//! simulated device I/O cost) while a *CPU decompression cost* appears on
//! the read path. A cheap byte-run RLE codec gives both deterministically —
//! real ratios on run-structured values, guaranteed no expansion (a block
//! that does not shrink is stored raw), and an exactly invertible
//! transform so reads stay byte-identical to the uncompressed
//! configuration.
//!
//! Framing: every stored block carries a one-byte header tag
//! ([`CompressionType::tag`]) ahead of the payload; the CRC covers tag +
//! payload. [`crate::sst::decode_framed`] dispatches on the tag, so a
//! database opened with a different `compression` option still reads every
//! existing block correctly.

use crate::error::{DbError, DbResult};

/// Per-block compression applied by the SST builder (RocksDB
/// `CompressionType` analogue, reduced to the two points the study needs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompressionType {
    /// Store blocks raw (the `db_bench --compression_type=none`
    /// configuration the paper's raw-speed runs use).
    #[default]
    None,
    /// Byte-run RLE: cheap, deterministic, and strictly size-capped (a
    /// block that does not shrink stays raw).
    Rle,
}

impl CompressionType {
    /// The per-block header tag for this codec.
    pub fn tag(self) -> u8 {
        match self {
            CompressionType::None => 0,
            CompressionType::Rle => 1,
        }
    }

    /// Short name for reports and docs.
    pub fn name(self) -> &'static str {
        match self {
            CompressionType::None => "none",
            CompressionType::Rle => "rle",
        }
    }
}

/// Compresses `data` with byte-run RLE: `(run_len - 1, byte)` pairs.
///
/// Worst case (no runs) the output is `2 * data.len()`; callers must gate
/// on the result being smaller (see [`compress_block`]).
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2);
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while run < 256 && i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        out.push((run - 1) as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Inverts [`rle_compress`].
///
/// # Errors
///
/// [`DbError::Corruption`] on a truncated pair.
pub fn rle_decompress(data: &[u8]) -> DbResult<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return Err(DbError::Corruption("truncated RLE pair".into()));
    }
    let mut out = Vec::with_capacity(data.len());
    for pair in data.chunks_exact(2) {
        let run = pair[0] as usize + 1;
        out.extend(std::iter::repeat_n(pair[1], run));
    }
    Ok(out)
}

/// Applies `codec` to one finished block, returning `(tag, payload)`.
///
/// Falls back to a raw block (tag 0) whenever the compressed form is not
/// strictly smaller, so compression never inflates a block.
pub fn compress_block(codec: CompressionType, data: Vec<u8>) -> (u8, Vec<u8>) {
    match codec {
        CompressionType::None => (CompressionType::None.tag(), data),
        CompressionType::Rle => {
            let compressed = rle_compress(&data);
            if compressed.len() < data.len() {
                (CompressionType::Rle.tag(), compressed)
            } else {
                (CompressionType::None.tag(), data)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rle_roundtrip_runs() {
        let data: Vec<u8> = std::iter::repeat_n(7u8, 500)
            .chain(std::iter::repeat_n(9u8, 300))
            .collect();
        let c = rle_compress(&data);
        assert!(c.len() < data.len() / 50, "runs must collapse: {}", c.len());
        assert_eq!(rle_decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_blocks_stay_raw() {
        let data: Vec<u8> = (0..=255u8).collect();
        let (tag, payload) = compress_block(CompressionType::Rle, data.clone());
        assert_eq!(tag, CompressionType::None.tag());
        assert_eq!(payload, data);
    }

    #[test]
    fn none_codec_is_identity() {
        let data = b"abc".to_vec();
        let (tag, payload) = compress_block(CompressionType::None, data.clone());
        assert_eq!(tag, 0);
        assert_eq!(payload, data);
    }

    #[test]
    fn truncated_pair_is_corruption() {
        assert!(rle_decompress(&[3]).is_err());
    }

    proptest! {
        #[test]
        fn rle_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..2000)) {
            let c = rle_compress(&data);
            prop_assert_eq!(rle_decompress(&c).unwrap(), data.clone());
            // And the builder-side gate never inflates the stored payload.
            let (tag, payload) = compress_block(CompressionType::Rle, data.clone());
            prop_assert!(payload.len() <= data.len());
            if tag == 1 {
                prop_assert_eq!(rle_decompress(&payload).unwrap(), data);
            } else {
                prop_assert_eq!(payload, data);
            }
        }
    }
}
