//! Versions: the immutable picture of which SSTs form each level, plus the
//! manifest machinery that persists version changes.
//!
//! Level 0 files may overlap and are ordered newest-first (file number
//! descending); levels 1+ hold disjoint key ranges sorted by smallest key.

use crate::coding::*;
use crate::error::{DbError, DbResult};
use crate::options::DbOptions;
use crate::types::{compare_internal, user_key};
use crate::wal;
use std::cmp::Ordering as CmpOrdering;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use xlsm_simfs::{FileHandle, SimFs};

/// Immutable metadata for one SST file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMetaData {
    /// File number (names the file on disk).
    pub number: u64,
    /// Size in bytes.
    pub file_size: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
    /// Entry count.
    pub num_entries: u64,
    /// CRC32-C over the whole file as written, recorded in the manifest.
    /// `None` for files installed before whole-file checksums existed.
    pub file_crc: Option<u32>,
}

impl FileMetaData {
    /// Whether this file's user-key range may contain `key`.
    pub fn may_contain_user_key(&self, key: &[u8]) -> bool {
        user_key(&self.smallest) <= key && key <= user_key(&self.largest)
    }

    /// Whether the user-key ranges `[a_lo, a_hi]` overlap this file.
    pub fn overlaps_user_range(&self, lo: &[u8], hi: &[u8]) -> bool {
        user_key(&self.smallest) <= hi && lo <= user_key(&self.largest)
    }
}

/// An immutable snapshot of the LSM file layout.
#[derive(Debug)]
pub struct Version {
    /// `levels[0]` newest-first; `levels[1..]` sorted by smallest key.
    pub levels: Vec<Vec<Arc<FileMetaData>>>,
}

impl Version {
    /// An empty version with `n` levels.
    pub fn empty(n: usize) -> Version {
        Version {
            levels: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Level-0 file count (the paper's central stall signal).
    pub fn num_l0_files(&self) -> usize {
        self.levels[0].len()
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.file_size).sum()
    }

    /// Total files across levels.
    pub fn num_files(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Files at `level` overlapping the user-key range `[lo, hi]`.
    pub fn overlapping(&self, level: usize, lo: &[u8], hi: &[u8]) -> Vec<Arc<FileMetaData>> {
        self.levels[level]
            .iter()
            .filter(|f| f.overlaps_user_range(lo, hi))
            .cloned()
            .collect()
    }

    /// For levels ≥ 1: the single file that may contain `key`, found by
    /// binary search over the disjoint ranges.
    pub fn file_for_key(&self, level: usize, key: &[u8]) -> Option<Arc<FileMetaData>> {
        debug_assert!(level >= 1);
        let files = &self.levels[level];
        let idx = files.partition_point(|f| user_key(&f.largest) < key);
        files
            .get(idx)
            .filter(|f| f.may_contain_user_key(key))
            .cloned()
    }

    /// Groups point-lookup keys by the SST files that may hold them — the
    /// unit of work [`crate::Db::multi_get`] fans out across probe threads.
    /// Each `(slot, key)` pair carries the caller's result index. Groups
    /// come back in deterministic order: every covering Level-0 file
    /// (newest first), then for each deeper level the single candidate file
    /// per key, grouped so one file is probed once per batch.
    pub fn probe_groups(
        &self,
        keys: &[(usize, &[u8])],
    ) -> Vec<(usize, Arc<FileMetaData>, Vec<usize>)> {
        let mut groups = Vec::new();
        for f in &self.levels[0] {
            let slots: Vec<usize> = keys
                .iter()
                .filter(|(_, k)| f.may_contain_user_key(k))
                .map(|(slot, _)| *slot)
                .collect();
            if !slots.is_empty() {
                groups.push((0, Arc::clone(f), slots));
            }
        }
        for level in 1..self.levels.len() {
            if self.levels[level].is_empty() {
                continue;
            }
            // `(file position in level) -> slots`, iterated in file order.
            let mut per_file: std::collections::BTreeMap<usize, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (slot, key) in keys {
                let files = &self.levels[level];
                let idx = files.partition_point(|f| user_key(&f.largest) < *key);
                if files.get(idx).is_some_and(|f| f.may_contain_user_key(key)) {
                    per_file.entry(idx).or_default().push(*slot);
                }
            }
            for (idx, slots) in per_file {
                groups.push((level, Arc::clone(&self.levels[level][idx]), slots));
            }
        }
        groups
    }

    /// Compaction score per level, RocksDB's leveled policy: L0 by file
    /// count vs. trigger, deeper levels by size vs. target. The last level
    /// has no target (it only receives) so its score is always 0. This is
    /// the input a [`CompactionScheduler`](crate::scheduler::CompactionScheduler)
    /// picks from; a score ≥ 1.0 warrants compaction.
    pub fn level_scores(&self, opts: &DbOptions) -> Vec<f64> {
        let mut scores = vec![0.0f64; self.levels.len()];
        scores[0] = self.num_l0_files() as f64 / opts.level0_file_num_compaction_trigger as f64;
        let deepest = self.levels.len() - 1;
        for (level, score) in scores.iter_mut().enumerate().take(deepest).skip(1) {
            *score = self.level_bytes(level) as f64 / opts.max_bytes_for_level(level) as f64;
        }
        scores
    }

    /// Returns `(level, score)` of the neediest level, ties toward the
    /// shallower level — the greedy summary of [`Self::level_scores`].
    pub fn compaction_score(&self, opts: &DbOptions) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for (level, &score) in self.level_scores(opts).iter().enumerate() {
            if score > best.1 {
                best = (level, score);
            }
        }
        best
    }

    /// Estimated bytes awaiting compaction — feeds the write controller's
    /// rate adaptation (Algorithm 1's `Prev/Esti` comparison).
    pub fn pending_compaction_bytes(&self, opts: &DbOptions) -> u64 {
        let mut pending = 0u64;
        let trigger = opts.level0_file_num_compaction_trigger;
        if self.num_l0_files() > trigger {
            let extra = self.num_l0_files() - trigger;
            let avg = self.level_bytes(0) / self.num_l0_files().max(1) as u64;
            pending += extra as u64 * avg;
        }
        for level in 1..self.levels.len() - 1 {
            pending += self
                .level_bytes(level)
                .saturating_sub(opts.max_bytes_for_level(level));
        }
        pending
    }
}

/// A delta between versions, persisted to the manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionEdit {
    /// New WAL low-watermark: logs below this number are obsolete.
    pub log_number: Option<u64>,
    /// File-number counter floor (recovery resumes from here).
    pub next_file_number: Option<u64>,
    /// Last sequence number at edit time.
    pub last_sequence: Option<u64>,
    /// Files added: `(level, meta)`.
    pub added: Vec<(usize, FileMetaData)>,
    /// Files removed: `(level, file number)`.
    pub deleted: Vec<(usize, u64)>,
    /// Whole-file CRCs of WAL segments sealed by this edit:
    /// `(log number, crc)`. Recovery verifies a sealed log against its
    /// recorded CRC before trusting per-record scans.
    pub wal_crcs: Vec<(u64, u32)>,
}

const TAG_LOG_NUMBER: u64 = 1;
const TAG_NEXT_FILE: u64 = 2;
const TAG_LAST_SEQ: u64 = 3;
const TAG_ADD: u64 = 4;
const TAG_DELETE: u64 = 5;
/// `(file number, crc)` — whole-file CRC of an added SST. A separate tag
/// (rather than a new ADD field) keeps old manifests decodable: files
/// recorded before this tag existed simply have no CRC.
const TAG_FILE_CRC: u64 = 6;
/// `(log number, crc)` — whole-file CRC of a sealed WAL segment.
const TAG_WAL_CRC: u64 = 7;

impl VersionEdit {
    /// Serializes to the manifest payload format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if let Some(v) = self.log_number {
            put_varint64(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint64(&mut out, TAG_NEXT_FILE);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint64(&mut out, TAG_LAST_SEQ);
            put_varint64(&mut out, v);
        }
        for (level, f) in &self.added {
            put_varint64(&mut out, TAG_ADD);
            put_varint64(&mut out, *level as u64);
            put_varint64(&mut out, f.number);
            put_varint64(&mut out, f.file_size);
            put_varint64(&mut out, f.num_entries);
            put_length_prefixed(&mut out, &f.smallest);
            put_length_prefixed(&mut out, &f.largest);
            if let Some(crc) = f.file_crc {
                put_varint64(&mut out, TAG_FILE_CRC);
                put_varint64(&mut out, f.number);
                put_varint64(&mut out, u64::from(crc));
            }
        }
        for (level, number) in &self.deleted {
            put_varint64(&mut out, TAG_DELETE);
            put_varint64(&mut out, *level as u64);
            put_varint64(&mut out, *number);
        }
        for (number, crc) in &self.wal_crcs {
            put_varint64(&mut out, TAG_WAL_CRC);
            put_varint64(&mut out, *number);
            put_varint64(&mut out, u64::from(*crc));
        }
        out
    }

    /// Parses a manifest payload.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on malformed input.
    pub fn decode(data: &[u8]) -> DbResult<VersionEdit> {
        let corrupt = || DbError::Corruption("bad version edit".into());
        let mut edit = VersionEdit::default();
        let mut off = 0usize;
        while off < data.len() {
            let tag = get_varint64(data, &mut off).ok_or_else(corrupt)?;
            match tag {
                TAG_LOG_NUMBER => {
                    edit.log_number = Some(get_varint64(data, &mut off).ok_or_else(corrupt)?)
                }
                TAG_NEXT_FILE => {
                    edit.next_file_number = Some(get_varint64(data, &mut off).ok_or_else(corrupt)?)
                }
                TAG_LAST_SEQ => {
                    edit.last_sequence = Some(get_varint64(data, &mut off).ok_or_else(corrupt)?)
                }
                TAG_ADD => {
                    let level = get_varint64(data, &mut off).ok_or_else(corrupt)? as usize;
                    let number = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    let file_size = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    let num_entries = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    let smallest = get_length_prefixed(data, &mut off)
                        .ok_or_else(corrupt)?
                        .to_vec();
                    let largest = get_length_prefixed(data, &mut off)
                        .ok_or_else(corrupt)?
                        .to_vec();
                    edit.added.push((
                        level,
                        FileMetaData {
                            number,
                            file_size,
                            smallest,
                            largest,
                            num_entries,
                            file_crc: None,
                        },
                    ));
                }
                TAG_DELETE => {
                    let level = get_varint64(data, &mut off).ok_or_else(corrupt)? as usize;
                    let number = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    edit.deleted.push((level, number));
                }
                TAG_FILE_CRC => {
                    let number = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    let crc = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    let crc = u32::try_from(crc).map_err(|_| corrupt())?;
                    for (_, f) in &mut edit.added {
                        if f.number == number {
                            f.file_crc = Some(crc);
                        }
                    }
                }
                TAG_WAL_CRC => {
                    let number = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    let crc = get_varint64(data, &mut off).ok_or_else(corrupt)?;
                    edit.wal_crcs
                        .push((number, u32::try_from(crc).map_err(|_| corrupt())?));
                }
                _ => return Err(corrupt()),
            }
        }
        Ok(edit)
    }
}

/// Applies `edit` to `base`, producing the next version.
pub fn apply_edit(base: &Version, edit: &VersionEdit) -> Version {
    let mut levels: Vec<Vec<Arc<FileMetaData>>> = base.levels.clone();
    for (level, number) in &edit.deleted {
        levels[*level].retain(|f| f.number != *number);
    }
    for (level, meta) in &edit.added {
        levels[*level].push(Arc::new(meta.clone()));
    }
    // Restore level ordering invariants.
    levels[0].sort_by_key(|f| std::cmp::Reverse(f.number)); // newest first
    for level in levels.iter_mut().skip(1) {
        level.sort_by(|a, b| compare_internal(&a.smallest, &b.smallest));
        debug_assert!(
            level
                .windows(2)
                .all(|w| compare_internal(&w[0].largest, &w[1].smallest) == CmpOrdering::Less),
            "level files must be disjoint"
        );
    }
    Version { levels }
}

pub(crate) const MANIFEST_NAME: &str = "MANIFEST";
pub(crate) const CURRENT_NAME: &str = "CURRENT";

/// Owns the current [`Version`], the manifest log, and the id/sequence
/// counters.
pub struct VersionSet {
    fs: Arc<SimFs>,
    db_path: String,
    current: parking_lot::Mutex<Arc<Version>>,
    live: parking_lot::Mutex<Vec<Weak<Version>>>,
    manifest: parking_lot::Mutex<FileHandle>,
    next_file: AtomicU64,
    /// Highest sequence number *visible to readers*. Trails
    /// `next_sequence` while a concurrent-memtable write group is between
    /// reservation and its `write_done_count` barrier.
    last_sequence: AtomicU64,
    /// Sequence allocator (highest sequence ever handed out).
    next_sequence: AtomicU64,
    log_number: AtomicU64,
    num_levels: usize,
    /// Whole-file CRCs of sealed WAL segments still at or above the WAL
    /// low-watermark, keyed by log number. Pruned as `log_number` advances.
    wal_crcs: parking_lot::Mutex<std::collections::BTreeMap<u64, u32>>,
}

impl fmt::Debug for VersionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionSet")
            .field("next_file", &self.next_file.load(Ordering::Relaxed))
            .field("last_sequence", &self.last_sequence.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

pub(crate) fn manifest_path(db_path: &str) -> String {
    format!("{db_path}/{MANIFEST_NAME}")
}

pub(crate) fn current_path(db_path: &str) -> String {
    format!("{db_path}/{CURRENT_NAME}")
}

/// Frames one manifest payload the way [`VersionSet::log_and_apply`] and
/// the repairer write it: `[masked crc32c][len][payload]` — the same
/// framing the WAL uses, so [`crate::wal::scan_wal`] replays both.
pub(crate) fn frame_manifest_record(payload: &[u8]) -> Vec<u8> {
    let crc = crate::crc32c::masked(crate::crc32c::crc32c(payload));
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&crc.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

impl VersionSet {
    /// Creates a fresh database layout (empty manifest + CURRENT).
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn create_new(fs: Arc<SimFs>, db_path: &str, opts: &DbOptions) -> DbResult<VersionSet> {
        let manifest = fs.create(&manifest_path(db_path))?;
        let current = fs.create(&current_path(db_path))?;
        current.append(MANIFEST_NAME.as_bytes())?;
        current.sync()?;
        let vs = VersionSet {
            fs,
            db_path: db_path.to_owned(),
            current: parking_lot::Mutex::new(Arc::new(Version::empty(opts.num_levels))),
            live: parking_lot::Mutex::new(Vec::new()),
            manifest: parking_lot::Mutex::new(manifest),
            next_file: AtomicU64::new(1),
            last_sequence: AtomicU64::new(0),
            next_sequence: AtomicU64::new(0),
            log_number: AtomicU64::new(0),
            num_levels: opts.num_levels,
            wal_crcs: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
        };
        Ok(vs)
    }

    /// Recovers the version state from an existing manifest.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] if the manifest is malformed, filesystem
    /// errors otherwise.
    pub fn recover(fs: Arc<SimFs>, db_path: &str, opts: &DbOptions) -> DbResult<VersionSet> {
        let cur = fs.open(&current_path(db_path))?;
        let name = cur.read_at(0, cur.len() as usize)?;
        let name =
            String::from_utf8(name).map_err(|_| DbError::Corruption("CURRENT not utf-8".into()))?;
        let mpath = format!("{db_path}/{name}");
        let records = wal::read_wal(&fs, &mpath)?;
        let mut version = Version::empty(opts.num_levels);
        let mut next_file = 1u64;
        let mut last_seq = 0u64;
        let mut log_number = 0u64;
        let mut wal_crcs = std::collections::BTreeMap::new();
        for rec in records {
            let edit = VersionEdit::decode(&rec)?;
            if let Some(v) = edit.next_file_number {
                next_file = next_file.max(v);
            }
            if let Some(v) = edit.last_sequence {
                last_seq = last_seq.max(v);
            }
            if let Some(v) = edit.log_number {
                log_number = log_number.max(v);
            }
            wal_crcs.extend(edit.wal_crcs.iter().copied());
            version = apply_edit(&version, &edit);
        }
        wal_crcs.retain(|n, _| *n >= log_number);
        let manifest = fs.open(&mpath)?;
        Ok(VersionSet {
            fs,
            db_path: db_path.to_owned(),
            current: parking_lot::Mutex::new(Arc::new(version)),
            live: parking_lot::Mutex::new(Vec::new()),
            manifest: parking_lot::Mutex::new(manifest),
            next_file: AtomicU64::new(next_file),
            last_sequence: AtomicU64::new(last_seq),
            next_sequence: AtomicU64::new(last_seq),
            log_number: AtomicU64::new(log_number),
            num_levels: opts.num_levels,
            wal_crcs: parking_lot::Mutex::new(wal_crcs),
        })
    }

    /// The current version (cheap Arc clone).
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current.lock())
    }

    /// Allocates a fresh file number.
    pub fn new_file_number(&self) -> u64 {
        self.next_file.fetch_add(1, Ordering::Relaxed)
    }

    /// Advances the allocator past `number`. A crash can leave files on
    /// disk whose numbers the recovered MANIFEST never durably claimed
    /// (the output of an uninstalled flush, a WAL whose counter edit died
    /// with the power); open re-claims every number it sees so fresh
    /// allocations cannot collide with the leftovers.
    pub fn mark_file_number_used(&self, number: u64) {
        self.next_file.fetch_max(number + 1, Ordering::Relaxed);
    }

    /// Last *published* (reader-visible) sequence number.
    pub fn last_sequence(&self) -> u64 {
        self.last_sequence.load(Ordering::Acquire)
    }

    /// Advances the sequence allocator by `n` and publishes the whole range
    /// immediately, returning the *first* sequence of the reserved range
    /// (the serial write path: allocation and visibility coincide).
    pub fn allocate_sequences(&self, n: u64) -> u64 {
        let first = self.reserve_sequences(n);
        self.publish_sequence(first + n - 1);
        first
    }

    /// Advances the sequence allocator by `n` *without* publishing,
    /// returning the first sequence of the range. The caller publishes via
    /// [`VersionSet::publish_sequence`] once the whole group is applied, so
    /// readers never snapshot into a half-applied write group.
    pub fn reserve_sequences(&self, n: u64) -> u64 {
        self.next_sequence.fetch_add(n, Ordering::AcqRel) + 1
    }

    /// Makes every sequence up to `seq` visible to readers (monotonic).
    pub fn publish_sequence(&self, seq: u64) {
        self.last_sequence.fetch_max(seq, Ordering::AcqRel);
    }

    /// WAL low-watermark.
    pub fn log_number(&self) -> u64 {
        self.log_number.load(Ordering::Relaxed)
    }

    /// Recorded whole-file CRC for sealed WAL `number`, if any. The active
    /// (still-appending) WAL never has one.
    pub fn wal_crc(&self, number: u64) -> Option<u32> {
        self.wal_crcs.lock().get(&number).copied()
    }

    /// All recorded `(log number, crc)` pairs, ascending.
    pub fn recorded_wal_crcs(&self) -> Vec<(u64, u32)> {
        self.wal_crcs.lock().iter().map(|(n, c)| (*n, *c)).collect()
    }

    /// Database path.
    pub fn db_path(&self) -> &str {
        &self.db_path
    }

    /// Persists `edit` to the manifest (durably — appended and fsynced, as
    /// RocksDB does by default for version edits) and installs the
    /// resulting version as current. Returns the new version.
    ///
    /// The sync is what makes the crash contract hold: a flush syncs its
    /// SST, then this records it durably, and only then may the covered
    /// WAL be deleted — so a power cut can never lose an acknowledged,
    /// synced write.
    ///
    /// # Errors
    ///
    /// Filesystem errors while appending or syncing the manifest record.
    /// After an error the on-disk manifest state is unknown; callers must
    /// treat the failure as non-retryable.
    pub fn log_and_apply(&self, mut edit: VersionEdit) -> DbResult<Arc<Version>> {
        edit.next_file_number = Some(self.next_file.load(Ordering::Relaxed));
        edit.last_sequence = Some(self.last_sequence());
        if let Some(v) = edit.log_number {
            self.log_number.fetch_max(v, Ordering::Relaxed);
        }
        let payload = edit.encode();
        // Clone the handle out of the lock: append/sync block in sim time,
        // and callers are already serialized by the install lock.
        let manifest = self.manifest.lock().clone();
        let rec = frame_manifest_record(&payload);
        manifest.append(&rec)?;
        manifest.sync()?;
        let new_version = {
            let mut cur = self.current.lock();
            let next = Arc::new(apply_edit(&cur, &edit));
            *cur = Arc::clone(&next);
            next
        };
        {
            let mut crcs = self.wal_crcs.lock();
            crcs.extend(edit.wal_crcs.iter().copied());
            let floor = self.log_number.load(Ordering::Relaxed);
            crcs.retain(|n, _| *n >= floor);
        }
        self.live.lock().push(Arc::downgrade(&new_version));
        Ok(new_version)
    }

    /// File numbers referenced by any still-alive version (pinned by
    /// iterators or the current pointer).
    pub fn live_files(&self) -> HashSet<u64> {
        let mut live = HashSet::new();
        let collect = |v: &Version, set: &mut HashSet<u64>| {
            for level in &v.levels {
                for f in level {
                    set.insert(f.number);
                }
            }
        };
        collect(&self.current(), &mut live);
        let mut weaks = self.live.lock();
        weaks.retain(|w| {
            if let Some(v) = w.upgrade() {
                collect(&v, &mut live);
                true
            } else {
                false
            }
        });
        live
    }

    /// Number of configured levels.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// The filesystem this version set lives on.
    pub fn fs(&self) -> &Arc<SimFs> {
        &self.fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::FsOptions;

    fn meta(number: u64, lo: &[u8], hi: &[u8]) -> FileMetaData {
        FileMetaData {
            number,
            file_size: 1000,
            smallest: make_internal_key(lo, 1, ValueType::Value),
            largest: make_internal_key(hi, 1, ValueType::Value),
            num_entries: 10,
            file_crc: Some(0xdead_beef ^ number as u32),
        }
    }

    #[test]
    fn edit_encode_decode_roundtrip() {
        let edit = VersionEdit {
            log_number: Some(5),
            next_file_number: Some(17),
            last_sequence: Some(12345),
            added: vec![(0, meta(7, b"a", b"m")), (2, meta(8, b"n", b"z"))],
            deleted: vec![(1, 3)],
            wal_crcs: vec![(4, 0x1234_5678), (6, 42)],
        };
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded, edit);
    }

    #[test]
    fn edit_without_crcs_roundtrips_as_none() {
        // Old-manifest compatibility: an ADD with no TAG_FILE_CRC decodes
        // with `file_crc: None`.
        let mut m = meta(7, b"a", b"m");
        m.file_crc = None;
        let edit = VersionEdit {
            added: vec![(0, m)],
            ..VersionEdit::default()
        };
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded, edit);
        assert_eq!(decoded.added[0].1.file_crc, None);
    }

    #[test]
    fn decode_garbage_fails() {
        assert!(VersionEdit::decode(&[200, 200, 200]).is_err());
    }

    #[test]
    fn apply_edit_maintains_order() {
        let v0 = Version::empty(7);
        let mut e = VersionEdit::default();
        e.added.push((0, meta(3, b"a", b"z")));
        e.added.push((0, meta(5, b"a", b"z")));
        e.added.push((1, meta(10, b"m", b"p")));
        e.added.push((1, meta(9, b"a", b"c")));
        let v1 = apply_edit(&v0, &e);
        // L0 newest first.
        assert_eq!(v1.levels[0][0].number, 5);
        assert_eq!(v1.levels[0][1].number, 3);
        // L1 sorted by smallest.
        assert_eq!(v1.levels[1][0].number, 9);
        assert_eq!(v1.levels[1][1].number, 10);
        // Delete.
        let mut e2 = VersionEdit::default();
        e2.deleted.push((0, 3));
        let v2 = apply_edit(&v1, &e2);
        assert_eq!(v2.num_l0_files(), 1);
    }

    #[test]
    fn overlap_and_lookup_queries() {
        let v0 = Version::empty(7);
        let mut e = VersionEdit::default();
        e.added.push((1, meta(1, b"a", b"c")));
        e.added.push((1, meta(2, b"f", b"h")));
        e.added.push((1, meta(3, b"m", b"p")));
        let v = apply_edit(&v0, &e);
        assert_eq!(v.overlapping(1, b"b", b"g").len(), 2);
        assert_eq!(v.overlapping(1, b"i", b"l").len(), 0);
        assert_eq!(v.file_for_key(1, b"g").unwrap().number, 2);
        assert!(v.file_for_key(1, b"z").is_none());
        assert!(v.file_for_key(1, b"e").is_none());
    }

    #[test]
    fn compaction_score_prioritizes() {
        let opts = DbOptions::default();
        let v0 = Version::empty(7);
        // 8 L0 files → score 2.0 with trigger 4.
        let mut e = VersionEdit::default();
        for i in 0..8 {
            e.added.push((0, meta(i + 1, b"a", b"z")));
        }
        let v = apply_edit(&v0, &e);
        let (level, score) = v.compaction_score(&opts);
        assert_eq!(level, 0);
        assert!((score - 2.0).abs() < 1e-9);
        assert!(v.pending_compaction_bytes(&opts) > 0);
    }

    #[test]
    fn version_set_persist_and_recover() {
        Runtime::new().run(|| {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let opts = DbOptions::default();
            let vs = VersionSet::create_new(Arc::clone(&fs), "db", &opts).unwrap();
            let n1 = vs.new_file_number();
            let mut e = VersionEdit::default();
            e.added.push((0, meta(n1, b"a", b"k")));
            e.log_number = Some(9);
            // One sealed-WAL CRC below the new low-watermark (pruned) and
            // one above it (kept).
            e.wal_crcs = vec![(5, 111), (9, 222)];
            vs.log_and_apply(e).unwrap();
            vs.allocate_sequences(500);
            let mut e2 = VersionEdit::default();
            e2.added.push((1, meta(vs.new_file_number(), b"l", b"z")));
            vs.log_and_apply(e2).unwrap();

            let vs2 = VersionSet::recover(Arc::clone(&fs), "db", &opts).unwrap();
            let v = vs2.current();
            assert_eq!(v.num_l0_files(), 1);
            assert_eq!(v.levels[1].len(), 1);
            assert_eq!(vs2.log_number(), 9);
            assert!(vs2.next_file.load(Ordering::Relaxed) >= 3);
            // Sequence survives through the second edit's stamp.
            assert_eq!(vs2.last_sequence(), 500);
            // File CRCs survive the manifest roundtrip on the metadata.
            assert_eq!(v.levels[0][0].file_crc, meta(n1, b"a", b"k").file_crc);
            // WAL CRCs below the low-watermark are pruned on recovery.
            assert_eq!(vs2.wal_crc(9), Some(222));
            assert_eq!(vs2.wal_crc(5), None);
            assert_eq!(vs2.recorded_wal_crcs(), vec![(9, 222)]);
        });
    }

    #[test]
    fn live_files_tracks_pinned_versions() {
        Runtime::new().run(|| {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let opts = DbOptions::default();
            let vs = VersionSet::create_new(fs, "db", &opts).unwrap();
            let mut e = VersionEdit::default();
            e.added.push((0, meta(1, b"a", b"z")));
            vs.log_and_apply(e).unwrap();
            let pinned = vs.current(); // hold the version containing file 1
            let mut e2 = VersionEdit::default();
            e2.deleted.push((0, 1));
            e2.added.push((1, meta(2, b"a", b"z")));
            vs.log_and_apply(e2).unwrap();
            let live = vs.live_files();
            assert!(live.contains(&1), "pinned version keeps file 1 live");
            assert!(live.contains(&2));
            drop(pinned);
            let live2 = vs.live_files();
            assert!(!live2.contains(&1), "unpinned file 1 becomes obsolete");
        });
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(48))]

        /// MANIFEST mirror of the WAL torn-tail contract: a manifest
        /// truncated at ANY byte offset recovers exactly the version edits
        /// that fit wholly before the cut, and recovery never errors.
        #[test]
        fn manifest_torn_tail_recovers_intact_prefix(
            n_edits in 1usize..12,
            cut_frac in 0u64..10_001u64,
        ) {
            Runtime::new().run(move || {
                let fs = SimFs::new(
                    SimDevice::shared(profiles::optane_900p()),
                    FsOptions::default(),
                );
                let opts = DbOptions::default();
                let vs = VersionSet::create_new(Arc::clone(&fs), "db", &opts).unwrap();
                let mfile = fs.open("db/MANIFEST").unwrap();
                let mut ends = Vec::new(); // manifest size after each edit
                for i in 0..n_edits {
                    let mut e = VersionEdit::default();
                    let key = format!("k{i:03}");
                    e.added.push((0, meta(vs.new_file_number(), key.as_bytes(), b"z")));
                    vs.log_and_apply(e).unwrap();
                    ends.push(mfile.len());
                }
                let total = mfile.len();
                let cut = total * cut_frac / 10_000;
                let prefix = mfile.read_at(0, cut as usize).unwrap();
                let torn = fs.create("db2/MANIFEST").unwrap();
                if !prefix.is_empty() {
                    torn.append(&prefix).unwrap();
                }
                let cur2 = fs.create("db2/CURRENT").unwrap();
                cur2.append(b"MANIFEST").unwrap();
                let vs2 = VersionSet::recover(Arc::clone(&fs), "db2", &opts)
                    .expect("a torn manifest tail must never fail recovery");
                let intact = ends.iter().filter(|e| **e <= cut).count();
                assert_eq!(
                    vs2.current().num_l0_files(),
                    intact,
                    "cut={cut} of {total} must keep exactly {intact} edits"
                );
                fs.delete("db2/MANIFEST").unwrap();
                fs.delete("db2/CURRENT").unwrap();
                fs.delete("db/MANIFEST").unwrap();
                fs.delete("db/CURRENT").unwrap();
            });
        }
    }
}
