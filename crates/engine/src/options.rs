//! Database configuration (the RocksDB 5.17 option surface the paper
//! exercises, at scaled-down defaults).

use crate::compress::CompressionType;
use crate::controller::{OriginalThrottlePolicy, ThrottlePolicy};
use crate::scheduler::{CompactionScheduler, GreedyScheduler};
use std::fmt;
use std::sync::Arc;
use xlsm_simfs::SimFs;

/// How aggressively WAL replay trusts the log contents at recovery time —
/// RocksDB's `WALRecoveryMode`, in increasing order of tolerance.
///
/// The mode governs two things: what happens when the scan meets a torn or
/// checksum-corrupt record, and what happens when the replayed batches skip
/// sequence numbers (a *gap* — evidence that a record between two intact
/// ones was lost).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WalRecoveryMode {
    /// The log must be perfect (clean-shutdown contract): any torn record,
    /// checksum failure, or sequence gap fails the open with
    /// [`crate::DbError::Corruption`].
    AbsoluteConsistency,
    /// Replay the longest consistent prefix: stop at the first torn or
    /// corrupt record *and at the first sequence gap*, discarding
    /// everything after the stop point (including later WAL files), so the
    /// recovered state is always a prefix of commit order. The RocksDB and
    /// engine default.
    #[default]
    PointInTimeRecovery,
    /// Drop a corrupt tail in *each* log but keep replaying subsequent
    /// logs, without sequence-gap checks — the legacy LevelDB contract.
    /// May recover a non-prefix state after a cross-log tail loss.
    TolerateCorruptedTailRecords,
    /// Salvage everything salvageable: skip interior records whose
    /// checksum fails (when the length framing is still intact), keep
    /// scanning, and count sequence gaps instead of failing. Prefix
    /// consistency is explicitly abandoned.
    SkipAnyCorruptedRecords,
}

impl WalRecoveryMode {
    /// Short name used in reports and docs.
    pub fn name(self) -> &'static str {
        match self {
            WalRecoveryMode::AbsoluteConsistency => "absolute-consistency",
            WalRecoveryMode::PointInTimeRecovery => "point-in-time",
            WalRecoveryMode::TolerateCorruptedTailRecords => "tolerate-corrupted-tail",
            WalRecoveryMode::SkipAnyCorruptedRecords => "skip-any-corrupted",
        }
    }

    /// All four modes, in increasing order of tolerance (test matrices).
    pub const ALL: [WalRecoveryMode; 4] = [
        WalRecoveryMode::AbsoluteConsistency,
        WalRecoveryMode::PointInTimeRecovery,
        WalRecoveryMode::TolerateCorruptedTailRecords,
        WalRecoveryMode::SkipAnyCorruptedRecords,
    ];
}

/// Tuning knobs for a [`crate::Db`].
///
/// Defaults follow RocksDB 5.17 / `db_bench` defaults, geometrically scaled
/// ~32× down (see `DESIGN.md`): a 64 MB memtable becomes 2 MB, etc. The
/// *thresholds that drive behavior* — Level-0 slowdown/stop triggers, write
/// buffer count, level size multiplier — are kept at their paper values.
#[derive(Clone)]
pub struct DbOptions {
    /// Memtable size before it is switched to immutable (bytes).
    pub write_buffer_size: usize,
    /// Max memtables (mutable + immutable) before writes stop.
    pub max_write_buffer_number: usize,
    /// Number of L0 files that triggers a compaction.
    pub level0_file_num_compaction_trigger: usize,
    /// Number of L0 files that triggers write slowdown (paper: default 20).
    pub level0_slowdown_writes_trigger: usize,
    /// Number of L0 files that stops writes (paper: "36 by default").
    pub level0_stop_writes_trigger: usize,
    /// Target size of L1 (bytes).
    pub max_bytes_for_level_base: u64,
    /// Growth factor between levels.
    pub max_bytes_for_level_multiplier: f64,
    /// Target SST size for compaction outputs (bytes).
    pub target_file_size_base: u64,
    /// Number of levels.
    pub num_levels: usize,
    /// Compaction worker threads (low-priority pool).
    pub max_background_compactions: usize,
    /// Flush worker threads (high-priority pool).
    pub max_background_flushes: usize,
    /// Maximum key-range partitions one compaction may fan out across
    /// (RocksDB `max_subcompactions`). `1` keeps the merge serial; higher
    /// values split the input key space at SST block boundaries and run one
    /// merge thread per range, draining compaction debt at device speed on
    /// devices with internal parallelism.
    pub max_subcompactions: usize,
    /// Maximum concurrent SST probe threads for one [`crate::Db::multi_get`]
    /// batch. `1` probes files sequentially (the `get` path, repeated).
    pub multi_get_parallelism: usize,
    /// Maximum cached open [`crate::sst::TableReader`]s in the table cache
    /// (RocksDB `max_open_files`). `0` means unbounded; otherwise the
    /// least-recently-used reader handle is closed when over the cap
    /// (decoded blocks stay in the block cache).
    pub max_open_files: usize,
    /// Number of independently locked table-cache shards. `1` reproduces
    /// the historical single-lock cache (every reader lookup serializes);
    /// higher values split the `max_open_files` budget and the lookup
    /// critical section across shards so `multi_get` probe threads stop
    /// contending.
    pub table_cache_shards: usize,
    /// Bloom bits per key; `0` disables blooms (the `db_bench` default the
    /// paper runs with, which is why L0 file count hurts reads).
    pub bloom_bits_per_key: usize,
    /// Fixed-length prefix extractor (RocksDB `prefix_extractor` with a
    /// `capped:<n>`-style transform, simplified to a fixed byte length).
    /// When set together with `bloom_bits_per_key > 0`, every SST also
    /// carries a bloom over the first `n` bytes of each key, letting point
    /// lookups and [`crate::Db::scan_prefix`] skip tables that contain no
    /// key with the queried prefix. Keys shorter than `n` are out of the
    /// transform's domain and bypass the prefix filter (never filtered).
    pub prefix_extractor: Option<usize>,
    /// Whole-key bloom bits per key on the **memtable** (RocksDB
    /// `memtable_prefix_bloom` family), built incrementally at insert so it
    /// coexists with `allow_concurrent_memtable_write`. `0` disables. A
    /// point miss then skips the skiplist search entirely — on fast devices
    /// the memtable walk is a measurable slice of a read.
    pub memtable_bloom_bits: usize,
    /// Block compression codec applied per data block at SST build time.
    /// Compressed blocks shrink the simulated device transfer (the device
    /// reads fewer bytes) in exchange for a per-block decompression CPU
    /// charge on reads — the paper's raw-device-speed trade-off.
    pub compression: CompressionType,
    /// SST block size (bytes).
    pub block_size: usize,
    /// Block cache capacity (bytes); decoded-block cache.
    pub block_cache_capacity: usize,
    /// Use the pipelined write path (Algorithm 2). When false, the group
    /// leader also performs all memtable inserts.
    pub pipelined_write: bool,
    /// Maximum bytes gathered into one write batch group.
    pub max_write_batch_group_size: usize,
    /// Concurrent memtable writes: group members insert their own
    /// sub-batches into the memtable in parallel (RocksDB's
    /// `allow_concurrent_memtable_write`) instead of the leader serially
    /// applying the merged group. The group's last sequence is published
    /// only after a `write_done_count` barrier, so readers never observe a
    /// half-applied group. This is the software-side fix for the paper's
    /// Finding #3: on 3D XPoint the serial memtable stage — not the device
    /// — dominates write tail latency.
    pub allow_concurrent_memtable_write: bool,
    /// Minimum member batches in a group before it takes the concurrent
    /// apply path; smaller groups stay serial (barrier overhead isn't worth
    /// paying for one or two batches).
    pub concurrent_apply_min_batches: usize,
    /// Write a WAL record for each batch.
    pub enable_wal: bool,
    /// fsync the WAL on every commit (paper and db_bench default: off).
    pub wal_sync: bool,
    /// How WAL replay treats torn/corrupt records and sequence gaps at
    /// recovery time (RocksDB `wal_recovery_mode`).
    pub wal_recovery_mode: WalRecoveryMode,
    /// Background-flush the WAL's dirty pages every this many bytes
    /// (`wal_bytes_per_sync` analogue; 0 disables).
    pub wal_bytes_per_sync: usize,
    /// Initial user-defined `delayed_write_rate` (bytes/s) — Algorithm 1.
    pub delayed_write_rate: u64,
    /// Throttling policy (Algorithm 1 by default; the two-stage case study
    /// installs a different one).
    pub throttle_policy: Arc<dyn ThrottlePolicy>,
    /// Which level the next compaction services (RocksDB `CompactionPri`
    /// family, lifted to a pluggable strategy): greedy max-score by
    /// default; round-robin and fair/deficit pickers ship in
    /// [`crate::scheduler`]. Schedulers are stateful — construct a fresh
    /// instance per database rather than sharing one `Arc` across
    /// databases.
    pub compaction_scheduler: Arc<dyn CompactionScheduler>,
    /// Shared background-I/O budget in bytes per (virtual) second drawn by
    /// flushes and compactions together, with flush priority — RocksDB's
    /// `rate_limiter`. `0` disables throttling.
    pub bg_io_rate_bytes_per_sec: u64,
    /// Auto-tune the background budget with measured compaction debt:
    /// `rate = base × (1 + min(debt / (4 × max_bytes_for_level_base), 3))`,
    /// re-evaluated on every write-controller update. Requires
    /// `bg_io_rate_bytes_per_sec > 0`.
    pub bg_io_auto_tune: bool,
    /// Verify data integrity aggressively and escalate detected corruption
    /// in background jobs to a hard error (read-only mode) — RocksDB's
    /// `paranoid_checks`. When false, a corrupt compaction input aborts
    /// that compaction but leaves the database writable.
    pub paranoid_checks: bool,
    /// Per-key-value protection width in bytes (RocksDB
    /// `protection_bytes_per_key`): 0 disables; otherwise each entry in a
    /// [`crate::WriteBatch`] carries a checksum of this many bytes over
    /// (type, key, value), verified at every handoff — group-commit merge,
    /// WAL encode, WAL replay, memtable insert — and the memtable re-checks
    /// entries at read and flush time. Valid widths: 0, 1, 2, 4, 8.
    pub protection_bytes_per_key: usize,
    /// Verify the whole-file checksum recorded in the MANIFEST when an SST
    /// is opened through the table cache (RocksDB `paranoid_file_checks`
    /// analogue). Off by default: it reads the entire file per first open,
    /// which would distort the paper-reproduction latency figures.
    pub paranoid_file_checks: bool,
    /// Background scrub rate budget in bytes/second; `0` disables the
    /// scrubber. When set, a dedicated low-rate worker continuously
    /// re-reads live SSTs block-by-block, verifying whole-file and
    /// per-block checksums, and routes any mismatch through the
    /// background-error machinery (hard error → read-only).
    pub scrub_rate_bytes_per_sec: u64,
    /// Bounded retries for a retryable (transient) background I/O error
    /// before it escalates to hard and the database goes read-only.
    pub max_background_error_retries: u32,
    /// Backoff before the first background-error retry (nanoseconds);
    /// doubles on each subsequent attempt.
    pub background_error_retry_backoff_ns: u64,
    /// Optional separate filesystem (device) for the WAL — the NVM-logging
    /// case study (Section V-C).
    pub wal_fs: Option<Arc<SimFs>>,
    /// Root directory for this database inside the filesystem.
    pub db_path: String,
}

impl fmt::Debug for DbOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DbOptions")
            .field("write_buffer_size", &self.write_buffer_size)
            .field("max_write_buffer_number", &self.max_write_buffer_number)
            .field(
                "level0_triggers",
                &(
                    self.level0_file_num_compaction_trigger,
                    self.level0_slowdown_writes_trigger,
                    self.level0_stop_writes_trigger,
                ),
            )
            .field("pipelined_write", &self.pipelined_write)
            .field(
                "allow_concurrent_memtable_write",
                &self.allow_concurrent_memtable_write,
            )
            .field("enable_wal", &self.enable_wal)
            .field("wal_recovery_mode", &self.wal_recovery_mode)
            .field("bloom_bits_per_key", &self.bloom_bits_per_key)
            .field("prefix_extractor", &self.prefix_extractor)
            .field("memtable_bloom_bits", &self.memtable_bloom_bits)
            .field("compression", &self.compression)
            .field("table_cache_shards", &self.table_cache_shards)
            .field("protection_bytes_per_key", &self.protection_bytes_per_key)
            .field("paranoid_file_checks", &self.paranoid_file_checks)
            .field("scrub_rate_bytes_per_sec", &self.scrub_rate_bytes_per_sec)
            .field("compaction_scheduler", &self.compaction_scheduler.name())
            .field("bg_io_rate_bytes_per_sec", &self.bg_io_rate_bytes_per_sec)
            .field("bg_io_auto_tune", &self.bg_io_auto_tune)
            .finish_non_exhaustive()
    }
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions {
            write_buffer_size: 1 << 20, // 1 MiB (paper: 64 MB, scaled)
            max_write_buffer_number: 2,
            level0_file_num_compaction_trigger: 4,
            level0_slowdown_writes_trigger: 20,
            level0_stop_writes_trigger: 36,
            max_bytes_for_level_base: 4 << 20, // 4 MiB (paper: 256 MB, scaled; keeps the 1:4 memtable:L1 ratio)
            max_bytes_for_level_multiplier: 10.0,
            target_file_size_base: 1 << 20,
            num_levels: 7,
            max_background_compactions: 1, // db_bench / RocksDB 5.17 default
            max_background_flushes: 1,
            max_subcompactions: 1, // RocksDB 5.17 default: serial compaction
            multi_get_parallelism: 4,
            max_open_files: 256,
            table_cache_shards: 8,
            bloom_bits_per_key: 0,
            prefix_extractor: None,
            memtable_bloom_bits: 0,
            compression: CompressionType::None,
            block_size: 4096,
            block_cache_capacity: 2 << 20,
            pipelined_write: true,
            max_write_batch_group_size: 1 << 20,
            allow_concurrent_memtable_write: false, // RocksDB 5.17 db_bench default
            concurrent_apply_min_batches: 2,
            enable_wal: true,
            wal_sync: false,
            wal_recovery_mode: WalRecoveryMode::PointInTimeRecovery,
            wal_bytes_per_sync: 16 << 10, // 512 KB / 32 (scaled, like the rest of the geometry)
            delayed_write_rate: 16 << 20, // 16 MB/s
            paranoid_checks: true,
            protection_bytes_per_key: 0,
            paranoid_file_checks: false,
            scrub_rate_bytes_per_sec: 0,
            max_background_error_retries: 6,
            background_error_retry_backoff_ns: 1_000_000, // 1 ms, doubling
            throttle_policy: Arc::new(OriginalThrottlePolicy),
            compaction_scheduler: Arc::new(GreedyScheduler),
            bg_io_rate_bytes_per_sec: 0,
            bg_io_auto_tune: false,
            wal_fs: None,
            db_path: "db".to_owned(),
        }
    }
}

impl DbOptions {
    /// Target size in bytes for level `n` (1-based; L0 is file-count based).
    pub fn max_bytes_for_level(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        let mut size = self.max_bytes_for_level_base as f64;
        for _ in 1..level {
            size *= self.max_bytes_for_level_multiplier;
        }
        size as u64
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.write_buffer_size < 64 << 10 {
            return Err("write_buffer_size must be at least 64 KiB".into());
        }
        if self.max_write_buffer_number < 2 {
            return Err("max_write_buffer_number must be >= 2".into());
        }
        if self.level0_slowdown_writes_trigger < self.level0_file_num_compaction_trigger {
            return Err("slowdown trigger must be >= compaction trigger".into());
        }
        if self.level0_stop_writes_trigger < self.level0_slowdown_writes_trigger {
            return Err("stop trigger must be >= slowdown trigger".into());
        }
        if self.num_levels < 2 || self.num_levels > 12 {
            return Err("num_levels must be in 2..=12".into());
        }
        if self.block_size < 256 {
            return Err("block_size must be >= 256".into());
        }
        if self.max_subcompactions == 0 {
            return Err("max_subcompactions must be >= 1".into());
        }
        if self.multi_get_parallelism == 0 {
            return Err("multi_get_parallelism must be >= 1".into());
        }
        if self.concurrent_apply_min_batches == 0 {
            return Err("concurrent_apply_min_batches must be >= 1".into());
        }
        if self.max_open_files != 0 && self.max_open_files < 16 {
            return Err("max_open_files must be 0 (unbounded) or >= 16".into());
        }
        if self.table_cache_shards == 0 || self.table_cache_shards > 64 {
            return Err("table_cache_shards must be in 1..=64".into());
        }
        if self.prefix_extractor == Some(0) {
            return Err("prefix_extractor length must be >= 1".into());
        }
        if !crate::integrity::VALID_PROTECTION_WIDTHS.contains(&self.protection_bytes_per_key) {
            return Err("protection_bytes_per_key must be 0, 1, 2, 4, or 8".into());
        }
        if self.bg_io_rate_bytes_per_sec != 0 && self.bg_io_rate_bytes_per_sec < 64 << 10 {
            return Err("bg_io_rate_bytes_per_sec must be 0 (off) or >= 64 KiB/s".into());
        }
        if self.bg_io_auto_tune && self.bg_io_rate_bytes_per_sec == 0 {
            return Err("bg_io_auto_tune requires bg_io_rate_bytes_per_sec > 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper_triggers() {
        let o = DbOptions::default();
        o.validate().unwrap();
        assert_eq!(o.level0_slowdown_writes_trigger, 20);
        assert_eq!(o.level0_stop_writes_trigger, 36);
        assert_eq!(o.max_write_buffer_number, 2);
        assert_eq!(o.bloom_bits_per_key, 0, "db_bench default: no bloom");
        assert_eq!(o.wal_recovery_mode, WalRecoveryMode::PointInTimeRecovery);
    }

    #[test]
    fn recovery_modes_enumerate_in_tolerance_order() {
        assert_eq!(WalRecoveryMode::ALL.len(), 4);
        assert_eq!(WalRecoveryMode::ALL[0].name(), "absolute-consistency");
        assert_eq!(WalRecoveryMode::default().name(), "point-in-time");
    }

    #[test]
    fn level_targets_multiply() {
        let o = DbOptions::default();
        assert_eq!(o.max_bytes_for_level(1), 4 << 20);
        assert_eq!(o.max_bytes_for_level(2), 40 << 20);
        assert_eq!(o.max_bytes_for_level(3), 400 << 20);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let o = DbOptions {
            level0_stop_writes_trigger: 3,
            ..DbOptions::default()
        };
        assert!(o.validate().is_err());
        let o2 = DbOptions {
            write_buffer_size: 1024,
            ..DbOptions::default()
        };
        assert!(o2.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_parallelism() {
        for bad in [
            DbOptions {
                max_subcompactions: 0,
                ..DbOptions::default()
            },
            DbOptions {
                multi_get_parallelism: 0,
                ..DbOptions::default()
            },
            DbOptions {
                max_open_files: 4,
                ..DbOptions::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        let unbounded = DbOptions {
            max_open_files: 0,
            ..DbOptions::default()
        };
        unbounded.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_read_path_options() {
        for bad in [
            DbOptions {
                table_cache_shards: 0,
                ..DbOptions::default()
            },
            DbOptions {
                table_cache_shards: 128,
                ..DbOptions::default()
            },
            DbOptions {
                prefix_extractor: Some(0),
                ..DbOptions::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        let ok = DbOptions {
            table_cache_shards: 1,
            prefix_extractor: Some(8),
            memtable_bloom_bits: 10,
            compression: CompressionType::Rle,
            ..DbOptions::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn validation_enforces_bg_io_budget_invariants() {
        let bad_rate = DbOptions {
            bg_io_rate_bytes_per_sec: 1024,
            ..DbOptions::default()
        };
        assert!(bad_rate.validate().is_err());
        let tune_without_budget = DbOptions {
            bg_io_auto_tune: true,
            ..DbOptions::default()
        };
        assert!(tune_without_budget.validate().is_err());
        let ok = DbOptions {
            bg_io_rate_bytes_per_sec: 64 << 20,
            bg_io_auto_tune: true,
            compaction_scheduler: Arc::new(crate::scheduler::FairScheduler::default()),
            ..DbOptions::default()
        };
        ok.validate().unwrap();
        assert_eq!(ok.compaction_scheduler.name(), "fair");
    }

    #[test]
    fn validation_enforces_protection_widths() {
        for bad in [3usize, 5, 6, 7, 9, 16] {
            let o = DbOptions {
                protection_bytes_per_key: bad,
                ..DbOptions::default()
            };
            assert!(o.validate().is_err(), "width {bad} must be rejected");
        }
        for good in [0usize, 1, 2, 4, 8] {
            let o = DbOptions {
                protection_bytes_per_key: good,
                paranoid_file_checks: true,
                scrub_rate_bytes_per_sec: 1 << 20,
                ..DbOptions::default()
            };
            o.validate().unwrap();
        }
    }
}
