//! Sorted String Table: block format, builder and reader.
//!
//! Layout (LevelDB-flavored):
//!
//! ```text
//! [tag][data block 0][crc32] [tag][data block 1][crc32] …
//! [filter block][crc32]        (optional: whole-key bloom + prefix bloom)
//! [index block][crc32]         (last-key, offset, size per data block)
//! [properties block][crc32]    (entry count, smallest/largest internal key)
//! [footer: 6×u64 + crc32 + magic u64]
//! ```
//!
//! Every region of the file is covered by a CRC32-C: data blocks carry one
//! over tag + payload, the meta blocks (filter, index, properties) each
//! carry a trailing CRC over their payload, and the footer checksums its own
//! offset table, so a flipped byte anywhere in the file is detectable. The
//! builder additionally folds every appended byte (footer included) into a
//! whole-file CRC, recorded in the MANIFEST and re-checkable without
//! parsing the file at all ([`verify_table_file`], the scrubber, and
//! `paranoid_file_checks`).
//!
//! Data blocks use shared-prefix encoding with restart points every
//! [`RESTART_INTERVAL`] entries. Each block is framed with a one-byte
//! compression tag ([`crate::compress::CompressionType::tag`]) and a CRC
//! over tag + payload; the *compressed* size is what the index records and
//! what the device transfers, so compression directly changes simulated I/O
//! cost. Readers go through the decoded-block cache; a miss charges the
//! block read (filesystem + device), the decompression CPU (if compressed)
//! and the decode CPU.
//!
//! The filter block carries a whole-key bloom and, when the table was built
//! with a `prefix_extractor`, a second bloom over the fixed-length key
//! prefixes (both sized by distinct keys; see [`crate::bloom`]). Filters
//! are built *incrementally* as entries stream in — the builder retains one
//! 32-bit hash per key, never the key bytes.

use crate::bloom::{BloomBuilder, BloomFilter};
use crate::cache::{Block, BlockCache};
use crate::coding::*;
use crate::compress::{self, CompressionType};
use crate::costs;
use crate::crc32c;
use crate::error::{DbError, DbResult};
use crate::stats::{DbStats, Ticker};
use crate::types::{self, compare_internal};
use std::cmp::Ordering;
use std::sync::Arc;
use xlsm_simfs::FileHandle;

/// Restart-point spacing within a data block.
pub const RESTART_INTERVAL: usize = 16;
const FOOTER_SIZE: usize = 6 * 8 + 4 + 8; // offsets + crc32 + magic
const MAGIC: u64 = 0x584c_534d_5353_5431; // "XLSMSST1"

/// SST file names: `<db>/<number>.sst`.
pub fn sst_file_name(db_path: &str, number: u64) -> String {
    format!("{db_path}/{number:06}.sst")
}

/// Display name for corruption attribution (`<number>.sst`, no directory —
/// readers don't carry the db path).
fn table_display_name(file_number: u64) -> String {
    format!("{file_number:06}.sst")
}

/// Re-attributes a bare corruption error to `file` at `offset` (errors that
/// already name a file pass through).
fn attribute(file: String, offset: u64, e: DbError) -> DbError {
    match e {
        DbError::Corruption(d) if d.file.is_none() => {
            DbError::corruption_at(file, offset, d.message)
        }
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Block building/decoding
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    count_since_restart: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    fn add(&mut self, key: &[u8], value: &[u8]) {
        let mut shared = 0usize;
        if self.count_since_restart < RESTART_INTERVAL && !self.last_key.is_empty() {
            let max = self.last_key.len().min(key.len());
            while shared < max && self.last_key[shared] == key[shared] {
                shared += 1;
            }
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
        }
        put_varint64(&mut self.buf, shared as u64);
        put_varint64(&mut self.buf, (key.len() - shared) as u64);
        put_varint64(&mut self.buf, value.len() as u64);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key = key.to_vec();
        self.count_since_restart += 1;
        self.entries += 1;
    }

    fn finish(mut self) -> Vec<u8> {
        if self.restarts.is_empty() {
            self.restarts.push(0);
        }
        for r in &self.restarts {
            put_fixed32(&mut self.buf, *r);
        }
        put_fixed32(&mut self.buf, self.restarts.len() as u32);
        self.buf
    }

    fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 8
    }

    fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// Verifies the trailing CRC of a framed block, decompresses it if its tag
/// says so (charging the decompression CPU and, when `stats` is given, the
/// `BlockDecompressions`/`Block*Bytes` tickers), and decodes it.
///
/// # Errors
///
/// [`DbError::Corruption`] on checksum or structural failures.
pub fn decode_framed(framed: &[u8], file_number: u64, stats: Option<&DbStats>) -> DbResult<Block> {
    if framed.len() < 5 {
        return Err(DbError::Corruption("short block".into()));
    }
    let (data, crc_raw) = framed.split_at(framed.len() - 4);
    let stored = crc32c::unmask(get_fixed32(crc_raw, 0));
    if stored != crc32c::crc32c(data) {
        return Err(DbError::corruption_in(
            table_display_name(file_number),
            "block crc mismatch",
        ));
    }
    let (&tag, payload) = data.split_first().expect("length checked above");
    if tag == CompressionType::None.tag() {
        xlsm_sim::sleep_nanos(costs::block_decode_ns(payload.len()));
        return decode_block(payload);
    }
    if tag == CompressionType::Rle.tag() {
        xlsm_sim::sleep_nanos(costs::block_decompress_ns(payload.len()));
        let raw = compress::rle_decompress(payload)?;
        if let Some(s) = stats {
            s.bump(Ticker::BlockDecompressions);
            s.add(Ticker::BlockCompressedBytes, payload.len() as u64);
            s.add(Ticker::BlockUncompressedBytes, raw.len() as u64);
        }
        xlsm_sim::sleep_nanos(costs::block_decode_ns(raw.len()));
        return decode_block(&raw);
    }
    Err(DbError::corruption_in(
        table_display_name(file_number),
        format!("unknown block compression tag {tag}"),
    ))
}

/// Decodes a serialized data block into its entry list.
///
/// # Errors
///
/// [`DbError::Corruption`] on any structural violation.
pub fn decode_block(data: &[u8]) -> DbResult<Block> {
    if data.len() < 8 {
        return Err(DbError::Corruption("block too small".into()));
    }
    let n_restarts = get_fixed32(data, data.len() - 4) as usize;
    let restarts_off = data
        .len()
        .checked_sub(4 + n_restarts * 4)
        .ok_or_else(|| DbError::Corruption("bad restart count".into()))?;
    let mut entries = Vec::new();
    let mut off = 0usize;
    let mut last_key: Vec<u8> = Vec::new();
    while off < restarts_off {
        let shared = get_varint64(data, &mut off)
            .ok_or_else(|| DbError::Corruption("bad shared len".into()))?
            as usize;
        let non_shared = get_varint64(data, &mut off)
            .ok_or_else(|| DbError::Corruption("bad non-shared len".into()))?
            as usize;
        let vlen = get_varint64(data, &mut off)
            .ok_or_else(|| DbError::Corruption("bad value len".into()))?
            as usize;
        if off + non_shared + vlen > restarts_off || shared > last_key.len() {
            return Err(DbError::Corruption("block entry out of bounds".into()));
        }
        let mut key = last_key[..shared].to_vec();
        key.extend_from_slice(&data[off..off + non_shared]);
        off += non_shared;
        let value = data[off..off + vlen].to_vec();
        off += vlen;
        last_key = key.clone();
        entries.push((key, value));
    }
    Ok(Block {
        entries,
        raw_size: data.len(),
    })
}

// ---------------------------------------------------------------------------
// Table builder
// ---------------------------------------------------------------------------

/// Summary of a finished table, destined for the version manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableProperties {
    /// File size in bytes.
    pub file_size: u64,
    /// Number of entries.
    pub num_entries: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
    /// CRC32-C over the entire file as written by the builder (recorded in
    /// the MANIFEST). `0` when unknown — e.g. properties parsed back by a
    /// reader, which does not re-read the whole file to compute it.
    pub file_crc: u32,
}

/// Build-time knobs for one SST, extracted from [`crate::DbOptions`] so the
/// builder's call sites (flush, compaction, recovery, repair) plumb one
/// value instead of a growing argument list.
#[derive(Clone, Debug)]
pub struct TableOptions {
    /// Target uncompressed data-block size (bytes).
    pub block_size: usize,
    /// Bloom bits per key; `0` disables the filter block entirely.
    pub bloom_bits_per_key: usize,
    /// Per-block compression codec.
    pub compression: CompressionType,
    /// Fixed prefix length for the prefix bloom; needs
    /// `bloom_bits_per_key > 0` to take effect.
    pub prefix_extractor: Option<usize>,
}

impl Default for TableOptions {
    fn default() -> TableOptions {
        TableOptions {
            block_size: 4096,
            bloom_bits_per_key: 0,
            compression: CompressionType::None,
            prefix_extractor: None,
        }
    }
}

impl From<&crate::options::DbOptions> for TableOptions {
    fn from(opts: &crate::options::DbOptions) -> TableOptions {
        TableOptions {
            block_size: opts.block_size,
            bloom_bits_per_key: opts.bloom_bits_per_key,
            compression: opts.compression,
            prefix_extractor: opts.prefix_extractor,
        }
    }
}

/// Streams sorted internal entries into an SST file.
#[derive(Debug)]
pub struct TableBuilder {
    file: FileHandle,
    opts: TableOptions,
    block: BlockBuilder,
    index: Vec<(Vec<u8>, u64, u64)>, // (last key, offset, size)
    whole_bloom: Option<BloomBuilder>,
    prefix_bloom: Option<BloomBuilder>,
    offset: u64,
    num_entries: u64,
    smallest: Vec<u8>,
    largest: Vec<u8>,
    /// Running CRC over every byte appended so far (the whole-file
    /// checksum recorded in the manifest).
    file_crc: crc32c::Hasher,
}

impl TableBuilder {
    /// Starts building into `file` (uncompressed, whole-key bloom only) —
    /// shorthand for [`TableBuilder::with_options`].
    pub fn new(file: FileHandle, block_size: usize, bloom_bits: usize) -> TableBuilder {
        TableBuilder::with_options(
            file,
            TableOptions {
                block_size,
                bloom_bits_per_key: bloom_bits,
                ..TableOptions::default()
            },
        )
    }

    /// Starts building into `file` with full [`TableOptions`].
    pub fn with_options(file: FileHandle, opts: TableOptions) -> TableBuilder {
        let whole_bloom =
            (opts.bloom_bits_per_key > 0).then(|| BloomBuilder::new(opts.bloom_bits_per_key));
        let prefix_bloom = (opts.bloom_bits_per_key > 0 && opts.prefix_extractor.is_some())
            .then(|| BloomBuilder::new(opts.bloom_bits_per_key));
        TableBuilder {
            file,
            opts,
            block: BlockBuilder::default(),
            index: Vec::new(),
            whole_bloom,
            prefix_bloom,
            offset: 0,
            num_entries: 0,
            smallest: Vec::new(),
            largest: Vec::new(),
            file_crc: crc32c::Hasher::new(),
        }
    }

    /// Appends `data` to the file, folding it into the whole-file CRC.
    fn append_raw(&mut self, data: &[u8]) -> DbResult<()> {
        self.file_crc.update(data);
        self.file.append(data)?;
        self.offset += data.len() as u64;
        Ok(())
    }

    /// Appends a meta block (`payload ++ masked crc32c`), returning the
    /// `(offset, payload length)` pair the footer records. Readers fetch
    /// `payload length + 4` bytes and verify the trailing CRC.
    fn append_meta_block(&mut self, payload: &[u8]) -> DbResult<(u64, u64)> {
        let off = self.offset;
        let mut framed = Vec::with_capacity(payload.len() + 4);
        framed.extend_from_slice(payload);
        put_fixed32(&mut framed, crc32c::masked(crc32c::crc32c(payload)));
        self.append_raw(&framed)?;
        Ok((off, payload.len() as u64))
    }

    /// Adds an entry; keys must arrive in strictly increasing internal-key
    /// order.
    ///
    /// # Errors
    ///
    /// Filesystem errors from flushing a filled block.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> DbResult<()> {
        debug_assert!(
            self.largest.is_empty() || compare_internal(&self.largest, ikey) == Ordering::Less,
            "keys must be added in order"
        );
        if self.smallest.is_empty() {
            self.smallest = ikey.to_vec();
        }
        self.largest = ikey.to_vec();
        let uk = types::user_key(ikey);
        if let Some(b) = &mut self.whole_bloom {
            b.add_key(uk);
        }
        if let (Some(b), Some(len)) = (&mut self.prefix_bloom, self.opts.prefix_extractor) {
            if uk.len() >= len {
                b.add_key(&uk[..len]);
            }
        }
        self.block.add(ikey, value);
        self.num_entries += 1;
        if self.block.size_estimate() >= self.opts.block_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> DbResult<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let last_key = self.block.last_key.clone();
        let block = std::mem::take(&mut self.block);
        let data = block.finish();
        let (tag, payload) = compress::compress_block(self.opts.compression, data);
        let mut framed = Vec::with_capacity(payload.len() + 5);
        framed.push(tag);
        framed.extend_from_slice(&payload);
        let crc = crc32c::masked(crc32c::crc32c(&framed));
        put_fixed32(&mut framed, crc);
        let size = framed.len() as u64;
        let off = self.offset;
        self.append_raw(&framed)?;
        self.index.push((last_key, off, size));
        Ok(())
    }

    /// Bytes of heap currently held for filter construction. The builder
    /// keeps one 32-bit hash per distinct key — never the user keys
    /// themselves — so this stays far below the size of the keys streamed
    /// through (the regression guard for the old `user_keys: Vec<Vec<u8>>`
    /// buffer that doubled flush memory).
    pub fn filter_memory_bytes(&self) -> usize {
        self.whole_bloom.as_ref().map_or(0, |b| b.memory_bytes())
            + self.prefix_bloom.as_ref().map_or(0, |b| b.memory_bytes())
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written so far (flushed blocks).
    pub fn file_size(&self) -> u64 {
        self.offset
    }

    /// Finishes the table: writes filter/index/properties/footer and syncs.
    ///
    /// # Errors
    ///
    /// Filesystem errors; building an empty table is an
    /// [`DbError::InvalidArgument`].
    pub fn finish(mut self) -> DbResult<TableProperties> {
        if self.num_entries == 0 {
            return Err(DbError::InvalidArgument("empty table".into()));
        }
        self.flush_block()?;

        // Filter block: length-prefixed whole-key filter, then the prefix
        // length the prefix filter was built with (0 = none), then the
        // length-prefixed prefix filter. Footer lengths are payload lengths;
        // each meta block carries a trailing masked CRC past its payload.
        let whole = self.whole_bloom.take().map(BloomBuilder::finish);
        let prefix = self.prefix_bloom.take().map(BloomBuilder::finish);
        let (bloom_off, bloom_len) = if whole.is_some() || prefix.is_some() {
            let mut buf = Vec::new();
            put_length_prefixed(&mut buf, whole.as_deref().unwrap_or(&[]));
            match (&prefix, self.opts.prefix_extractor) {
                (Some(pf), Some(len)) => {
                    put_varint64(&mut buf, len as u64);
                    put_length_prefixed(&mut buf, pf);
                }
                _ => put_varint64(&mut buf, 0),
            }
            self.append_meta_block(&buf)?
        } else {
            (self.offset, 0)
        };

        // Index block.
        let mut index_buf = Vec::new();
        put_varint64(&mut index_buf, self.index.len() as u64);
        for (key, off, size) in &self.index {
            put_length_prefixed(&mut index_buf, key);
            put_varint64(&mut index_buf, *off);
            put_varint64(&mut index_buf, *size);
        }
        let (index_off, index_len) = self.append_meta_block(&index_buf)?;

        // Properties block.
        let mut props = Vec::new();
        put_varint64(&mut props, self.num_entries);
        put_length_prefixed(&mut props, &self.smallest);
        put_length_prefixed(&mut props, &self.largest);
        let (props_off, props_len) = self.append_meta_block(&props)?;

        // Footer: six fixed64 offsets/lengths, a masked CRC over them, then
        // the magic — so a damaged footer is distinguishable from a
        // wrong-format file.
        let mut footer = Vec::with_capacity(FOOTER_SIZE);
        put_fixed64(&mut footer, bloom_off);
        put_fixed64(&mut footer, bloom_len);
        put_fixed64(&mut footer, index_off);
        put_fixed64(&mut footer, index_len);
        put_fixed64(&mut footer, props_off);
        put_fixed64(&mut footer, props_len);
        let footer_crc = crc32c::masked(crc32c::crc32c(&footer));
        put_fixed32(&mut footer, footer_crc);
        put_fixed64(&mut footer, MAGIC);
        self.append_raw(&footer)?;

        self.file.sync()?;
        Ok(TableProperties {
            file_size: self.offset,
            num_entries: self.num_entries,
            smallest: self.smallest,
            largest: self.largest,
            file_crc: self.file_crc.finish(),
        })
    }
}

// ---------------------------------------------------------------------------
// Table reader
// ---------------------------------------------------------------------------

/// One key of a [`TableReader::get_many`] batch.
#[derive(Clone, Debug)]
pub struct TableProbe {
    /// Caller-side index of the key this probe answers (opaque to the
    /// reader; echoed back with any hit).
    pub slot: usize,
    /// Internal lookup key (`make_lookup_key(user_key, snapshot)`).
    pub lookup: Vec<u8>,
    /// The bare user key (bloom check + hit validation).
    pub user_key: Vec<u8>,
}

/// One [`TableReader::get_many`] hit: the probe's slot plus the matching
/// `(internal key, value)` entry.
pub type TableHit = (usize, (Vec<u8>, Vec<u8>));

/// Open handle to one SST: parsed index + filters, block access via cache.
pub struct TableReader {
    file: FileHandle,
    file_number: u64,
    cache: Arc<BlockCache>,
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: Option<Vec<u8>>,
    prefix_bloom: Option<Vec<u8>>,
    prefix_len: Option<usize>,
    props: TableProperties,
}

/// `(whole-key filter, prefix filter, prefix length)` as read from a
/// serialized filter block.
type ParsedFilters = (Option<Vec<u8>>, Option<Vec<u8>>, Option<usize>);

/// Reads a meta block (filter/index/properties) given its footer-recorded
/// payload offset and length, verifying the trailing masked CRC. Returns the
/// bare payload.
fn read_meta_block(
    file: &FileHandle,
    file_number: u64,
    off: u64,
    payload_len: u64,
) -> DbResult<Vec<u8>> {
    let mut framed = file.read_at(off, payload_len as usize + 4)?;
    if framed.len() < 4 {
        return Err(DbError::corruption_at(
            table_display_name(file_number),
            off,
            "meta block truncated",
        ));
    }
    let crc_raw = framed.split_off(framed.len() - 4);
    if crc32c::unmask(get_fixed32(&crc_raw, 0)) != crc32c::crc32c(&framed) {
        return Err(DbError::corruption_at(
            table_display_name(file_number),
            off,
            "meta block checksum mismatch",
        ));
    }
    Ok(framed)
}

/// Verifies every checksummed region of a finished table — footer, meta
/// blocks, and each data block frame — without decoding entries or touching
/// the block cache. This is the scrubber's (and [`verify_checksums`]'s) read
/// path: CRC-only, so a pass over a cold file costs reads plus checksum
/// arithmetic.
///
/// `pacer` is called with the byte count after every device read, letting
/// the caller charge I/O cost or enforce a scrub-rate budget.
///
/// Returns the total bytes verified (the file size on success).
///
/// [`verify_checksums`]: crate::db::Db::verify_checksums
///
/// # Errors
///
/// [`DbError::Corruption`] naming the file and offset of the first bad
/// region; filesystem errors pass through.
pub fn verify_table_file(
    file: &FileHandle,
    file_number: u64,
    pacer: &mut dyn FnMut(u64),
) -> DbResult<u64> {
    let name = table_display_name(file_number);
    let size = file.len();
    if size < FOOTER_SIZE as u64 {
        return Err(DbError::corruption_in(name, "file smaller than footer"));
    }
    let footer_off = size - FOOTER_SIZE as u64;
    let footer = file.read_at(footer_off, FOOTER_SIZE)?;
    pacer(FOOTER_SIZE as u64);
    if get_fixed64(&footer, 52) != MAGIC {
        return Err(DbError::corruption_in(name, "bad magic"));
    }
    if crc32c::unmask(get_fixed32(&footer, 48)) != crc32c::crc32c(&footer[..48]) {
        return Err(DbError::corruption_at(
            name,
            footer_off,
            "footer checksum mismatch",
        ));
    }
    let bloom_off = get_fixed64(&footer, 0);
    let bloom_len = get_fixed64(&footer, 8);
    let index_off = get_fixed64(&footer, 16);
    let index_len = get_fixed64(&footer, 24);
    let props_off = get_fixed64(&footer, 32);
    let props_len = get_fixed64(&footer, 40);

    // Meta blocks: the CRC check is the point; the index payload is also
    // parsed to find the data blocks.
    let index_raw = read_meta_block(file, file_number, index_off, index_len)?;
    pacer(index_len + 4);
    if bloom_len > 0 {
        read_meta_block(file, file_number, bloom_off, bloom_len)?;
        pacer(bloom_len + 4);
    }
    read_meta_block(file, file_number, props_off, props_len)?;
    pacer(props_len + 4);

    let mut off = 0usize;
    let n = get_varint64(&index_raw, &mut off).ok_or_else(|| {
        DbError::corruption_in(table_display_name(file_number), "bad index count")
    })?;
    let mut blocks = Vec::with_capacity(n as usize);
    for _ in 0..n {
        get_length_prefixed(&index_raw, &mut off).ok_or_else(|| {
            DbError::corruption_in(table_display_name(file_number), "bad index key")
        })?;
        let boff = get_varint64(&index_raw, &mut off).ok_or_else(|| {
            DbError::corruption_in(table_display_name(file_number), "bad index offset")
        })?;
        let bsize = get_varint64(&index_raw, &mut off).ok_or_else(|| {
            DbError::corruption_in(table_display_name(file_number), "bad index size")
        })?;
        blocks.push((boff, bsize));
    }

    // Data blocks: verify each frame's trailing CRC without decoding.
    for (boff, bsize) in blocks {
        let framed = file.read_at(boff, bsize as usize)?;
        pacer(bsize);
        if framed.len() < 5 {
            return Err(DbError::corruption_at(
                table_display_name(file_number),
                boff,
                "data block truncated",
            ));
        }
        let (data, crc_raw) = framed.split_at(framed.len() - 4);
        if crc32c::unmask(get_fixed32(crc_raw, 0)) != crc32c::crc32c(data) {
            return Err(DbError::corruption_at(
                table_display_name(file_number),
                boff,
                "block crc mismatch",
            ));
        }
    }
    Ok(size)
}

/// Parses a serialized filter block into
/// `(whole-key filter, prefix filter, prefix length)`.
fn parse_filter_block(raw: &[u8]) -> DbResult<ParsedFilters> {
    let mut off = 0usize;
    let whole = get_length_prefixed(raw, &mut off)
        .ok_or_else(|| DbError::Corruption("bad whole-key filter".into()))?
        .to_vec();
    let whole = (!whole.is_empty()).then_some(whole);
    let prefix_len = get_varint64(raw, &mut off)
        .ok_or_else(|| DbError::Corruption("bad prefix filter length".into()))?
        as usize;
    if prefix_len == 0 {
        return Ok((whole, None, None));
    }
    let prefix = get_length_prefixed(raw, &mut off)
        .ok_or_else(|| DbError::Corruption("bad prefix filter".into()))?
        .to_vec();
    Ok((whole, Some(prefix), Some(prefix_len)))
}

impl std::fmt::Debug for TableReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableReader")
            .field("file_number", &self.file_number)
            .field("entries", &self.props.num_entries)
            .field("blocks", &self.index.len())
            .finish()
    }
}

impl TableReader {
    /// Opens a finished table, reading footer, properties, index and bloom.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on format violations; filesystem errors pass
    /// through.
    pub fn open(
        file: FileHandle,
        file_number: u64,
        cache: Arc<BlockCache>,
    ) -> DbResult<TableReader> {
        let name = table_display_name(file_number);
        let size = file.len();
        if size < FOOTER_SIZE as u64 {
            return Err(DbError::corruption_in(name, "file smaller than footer"));
        }
        let footer_off = size - FOOTER_SIZE as u64;
        let footer = file.read_at(footer_off, FOOTER_SIZE)?;
        if get_fixed64(&footer, 52) != MAGIC {
            return Err(DbError::corruption_in(name, "bad magic"));
        }
        if crc32c::unmask(get_fixed32(&footer, 48)) != crc32c::crc32c(&footer[..48]) {
            return Err(DbError::corruption_at(
                name,
                footer_off,
                "footer checksum mismatch",
            ));
        }
        let bloom_off = get_fixed64(&footer, 0);
        let bloom_len = get_fixed64(&footer, 8);
        let index_off = get_fixed64(&footer, 16);
        let index_len = get_fixed64(&footer, 24);
        let props_off = get_fixed64(&footer, 32);
        let props_len = get_fixed64(&footer, 40);

        let index_raw = read_meta_block(&file, file_number, index_off, index_len)?;
        let mut off = 0usize;
        let n = get_varint64(&index_raw, &mut off)
            .ok_or_else(|| DbError::Corruption("bad index count".into()))?;
        let mut index = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = get_length_prefixed(&index_raw, &mut off)
                .ok_or_else(|| DbError::Corruption("bad index key".into()))?
                .to_vec();
            let boff = get_varint64(&index_raw, &mut off)
                .ok_or_else(|| DbError::Corruption("bad index offset".into()))?;
            let bsize = get_varint64(&index_raw, &mut off)
                .ok_or_else(|| DbError::Corruption("bad index size".into()))?;
            index.push((key, boff, bsize));
        }

        let (bloom, prefix_bloom, prefix_len) = if bloom_len > 0 {
            parse_filter_block(&read_meta_block(&file, file_number, bloom_off, bloom_len)?)?
        } else {
            (None, None, None)
        };

        let props_raw = read_meta_block(&file, file_number, props_off, props_len)?;
        let mut poff = 0usize;
        let num_entries = get_varint64(&props_raw, &mut poff)
            .ok_or_else(|| DbError::Corruption("bad props".into()))?;
        let smallest = get_length_prefixed(&props_raw, &mut poff)
            .ok_or_else(|| DbError::Corruption("bad smallest".into()))?
            .to_vec();
        let largest = get_length_prefixed(&props_raw, &mut poff)
            .ok_or_else(|| DbError::Corruption("bad largest".into()))?
            .to_vec();

        Ok(TableReader {
            file,
            file_number,
            cache,
            index,
            bloom,
            prefix_bloom,
            prefix_len,
            props: TableProperties {
                file_size: size,
                num_entries,
                smallest,
                largest,
                file_crc: 0,
            },
        })
    }

    /// Table properties (entry count, key range).
    pub fn properties(&self) -> &TableProperties {
        &self.props
    }

    /// Number of data blocks.
    pub fn num_blocks(&self) -> usize {
        self.index.len()
    }

    /// User keys on each data-block boundary (the last key of every block),
    /// in ascending order — the candidate cut points for range-partitioned
    /// subcompactions. Served from the already-parsed index: no I/O.
    pub fn block_boundary_user_keys(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.index.iter().map(|(last, _, _)| types::user_key(last))
    }

    /// Loads block `i` through the cache, charging read + decode costs.
    fn block(&self, i: usize, stats: &DbStats) -> DbResult<Arc<Block>> {
        let (_, off, size) = self.index[i];
        let key = (self.file_number, off);
        if let Some(b) = self.cache.get(&key) {
            stats.bump(Ticker::BlockCacheHit);
            return Ok(b);
        }
        stats.bump(Ticker::BlockCacheMiss);
        let framed = self.file.read_at(off, size as usize)?;
        let block = decode_framed(&framed, self.file_number, Some(stats))
            .map_err(|e| attribute(table_display_name(self.file_number), off, e))?;
        let block = Arc::new(block);
        self.cache.insert(key, Arc::clone(&block));
        Ok(block)
    }

    /// Whether the table *may* contain any key starting with `prefix`.
    /// Only decisive when the table carries a prefix filter built with
    /// exactly `prefix.len()` — any other configuration answers `true`
    /// (conservative).
    pub fn may_contain_prefix(&self, prefix: &[u8]) -> bool {
        match (&self.prefix_bloom, self.prefix_len) {
            (Some(pf), Some(len)) if len == prefix.len() => BloomFilter::may_contain(pf, prefix),
            _ => true,
        }
    }

    /// Checks the prefix filter for a point lookup of `user_key` (charging
    /// the filter-probe cost). `false` means no key with `user_key`'s
    /// prefix exists in the table, so the lookup itself cannot hit: a key
    /// starting with the extractor's `len`-byte prefix is at least `len`
    /// bytes long and therefore always in the transform's domain. Keys
    /// shorter than the prefix bypass the filter (`true`).
    fn prefix_may_match(&self, user_key: &[u8], stats: &DbStats) -> bool {
        let (Some(pf), Some(len)) = (&self.prefix_bloom, self.prefix_len) else {
            return true;
        };
        if user_key.len() < len {
            return true;
        }
        xlsm_sim::sleep_nanos(costs::BLOOM_CHECK_NS);
        if BloomFilter::may_contain(pf, &user_key[..len]) {
            true
        } else {
            stats.bump(Ticker::PrefixBloomUseful);
            false
        }
    }

    /// Index of the first block whose last key is ≥ `ikey`, or None.
    fn block_for(&self, ikey: &[u8]) -> Option<usize> {
        xlsm_sim::sleep_nanos(costs::binary_search_ns(self.index.len() as u64));
        let idx = self
            .index
            .partition_point(|(last, _, _)| compare_internal(last, ikey) == Ordering::Less);
        (idx < self.index.len()).then_some(idx)
    }

    /// Point lookup: returns the first entry with internal key ≥ `lookup`
    /// whose user key equals `user_key`, as `(ikey, value)`.
    ///
    /// # Errors
    ///
    /// Corruption or filesystem errors.
    pub fn get(
        &self,
        lookup: &[u8],
        user_key: &[u8],
        stats: &DbStats,
    ) -> DbResult<Option<(Vec<u8>, Vec<u8>)>> {
        // Filter blocks are resident with the open reader, so a rejection
        // answers before the per-table index setup is ever paid — that skip
        // is the whole value of the filters on a deep Level-0.
        if let Some(bloom) = &self.bloom {
            xlsm_sim::sleep_nanos(costs::BLOOM_CHECK_NS);
            if !BloomFilter::may_contain(bloom, user_key) {
                stats.bump(Ticker::BloomUseful);
                return Ok(None);
            }
        }
        if !self.prefix_may_match(user_key, stats) {
            return Ok(None);
        }
        xlsm_sim::sleep_nanos(costs::TABLE_LOOKUP_BASE_NS);
        let Some(bi) = self.block_for(lookup) else {
            return Ok(None);
        };
        let block = self.block(bi, stats)?;
        xlsm_sim::sleep_nanos(costs::binary_search_ns(block.entries.len() as u64));
        let pos = block
            .entries
            .partition_point(|(k, _)| compare_internal(k, lookup) == Ordering::Less);
        if pos >= block.entries.len() {
            return Ok(None);
        }
        let (k, v) = &block.entries[pos];
        if types::user_key(k) != user_key {
            return Ok(None);
        }
        Ok(Some((k.clone(), v.clone())))
    }

    /// Batched point lookup: answers every probe in one pass over the
    /// table, paying the fixed per-table cost once and decoding each
    /// distinct data block at most once (probes are grouped per block).
    /// Returns `(slot, (ikey, value))` for each probe that hit; misses are
    /// simply absent.
    ///
    /// # Errors
    ///
    /// Corruption or filesystem errors.
    pub fn get_many(&self, probes: &[TableProbe], stats: &DbStats) -> DbResult<Vec<TableHit>> {
        // Resolve each probe to its block first so block loads can be
        // shared; `by_block` is sorted so one block is decoded exactly once.
        // The per-table index setup is paid once, and only if at least one
        // probe survives the resident filter blocks.
        let mut charged_base = false;
        let mut by_block: Vec<(usize, usize)> = Vec::new(); // (block, probe idx)
        for (i, p) in probes.iter().enumerate() {
            if let Some(bloom) = &self.bloom {
                xlsm_sim::sleep_nanos(costs::BLOOM_CHECK_NS);
                if !BloomFilter::may_contain(bloom, &p.user_key) {
                    stats.bump(Ticker::BloomUseful);
                    continue;
                }
            }
            if !self.prefix_may_match(&p.user_key, stats) {
                continue;
            }
            if !charged_base {
                xlsm_sim::sleep_nanos(costs::TABLE_LOOKUP_BASE_NS);
                charged_base = true;
            }
            if let Some(bi) = self.block_for(&p.lookup) {
                by_block.push((bi, i));
            }
        }
        by_block.sort_unstable();
        let mut hits = Vec::new();
        let mut cur: Option<(usize, Arc<Block>)> = None;
        for (bi, i) in by_block {
            let block = match &cur {
                Some((loaded, b)) if *loaded == bi => Arc::clone(b),
                _ => {
                    let b = self.block(bi, stats)?;
                    cur = Some((bi, Arc::clone(&b)));
                    b
                }
            };
            let p = &probes[i];
            xlsm_sim::sleep_nanos(costs::binary_search_ns(block.entries.len() as u64));
            let pos = block
                .entries
                .partition_point(|(k, _)| compare_internal(k, &p.lookup) == Ordering::Less);
            if pos >= block.entries.len() {
                continue;
            }
            let (k, v) = &block.entries[pos];
            if types::user_key(k) == &p.user_key[..] {
                hits.push((p.slot, (k.clone(), v.clone())));
            }
        }
        Ok(hits)
    }

    /// Iterator over the whole table.
    pub fn iter(self: &Arc<Self>, stats: Arc<DbStats>) -> TableIterator {
        TableIterator {
            table: Arc::clone(self),
            stats,
            block_idx: 0,
            block: None,
            entry_idx: 0,
            readahead: false,
            ra_buf: None,
        }
    }

    /// Iterator with sequential readahead (compaction-style access): before
    /// decoding a block past the prefetch watermark, the next
    /// [`READAHEAD_BYTES`] of the file are pulled into the page cache with
    /// one coalesced device read.
    pub fn iter_with_readahead(self: &Arc<Self>, stats: Arc<DbStats>) -> TableIterator {
        TableIterator {
            readahead: true,
            ..self.iter(stats)
        }
    }
}

/// Sequential readahead window for compaction-style iteration (RocksDB's
/// `compaction_readahead_size` default is 2 MB on disks; scaled here).
pub const READAHEAD_BYTES: usize = 256 << 10;

/// Sequential/seekable iterator over a table's entries.
pub struct TableIterator {
    table: Arc<TableReader>,
    stats: Arc<DbStats>,
    block_idx: usize,
    block: Option<Arc<Block>>,
    entry_idx: usize,
    readahead: bool,
    /// Private readahead buffer `(file offset, bytes)`: compaction reads
    /// large sequential spans once and decodes blocks from process memory,
    /// independent of page-cache pressure (and without polluting the block
    /// cache).
    ra_buf: Option<(u64, Vec<u8>)>,
}

impl std::fmt::Debug for TableIterator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableIterator")
            .field("file", &self.table.file_number)
            .field("block_idx", &self.block_idx)
            .finish()
    }
}

impl TableIterator {
    fn load_block(&mut self, i: usize) -> DbResult<bool> {
        if i >= self.table.index.len() {
            self.block = None;
            return Ok(false);
        }
        if self.readahead {
            let (_, off, size) = self.table.index[i];
            let in_buf = self.ra_buf.as_ref().is_some_and(|(start, buf)| {
                off >= *start && off + size <= *start + buf.len() as u64
            });
            if !in_buf {
                let want = (size as usize).max(READAHEAD_BYTES);
                let avail = (self.table.file.len() - off) as usize;
                let len = want.min(avail);
                let buf = self.table.file.read_at(off, len)?;
                self.ra_buf = Some((off, buf));
            }
            let (start, buf) = self.ra_buf.as_ref().unwrap();
            let lo = (off - start) as usize;
            let framed = &buf[lo..lo + size as usize];
            self.block_idx = i;
            let block = decode_framed(framed, self.table.file_number, Some(&self.stats))
                .map_err(|e| attribute(table_display_name(self.table.file_number), off, e))?;
            self.block = Some(Arc::new(block));
            return Ok(true);
        }
        self.block_idx = i;
        self.block = Some(self.table.block(i, &self.stats)?);
        Ok(true)
    }

    /// Positions at the first entry.
    ///
    /// # Errors
    ///
    /// Block read/decode failures.
    pub fn seek_to_first(&mut self) -> DbResult<bool> {
        self.entry_idx = 0;
        self.load_block(0)
    }

    /// Positions at the first entry with internal key ≥ `ikey`.
    ///
    /// # Errors
    ///
    /// Block read/decode failures.
    pub fn seek(&mut self, ikey: &[u8]) -> DbResult<bool> {
        match self.table.block_for(ikey) {
            None => {
                self.block = None;
                Ok(false)
            }
            Some(bi) => {
                if !self.load_block(bi)? {
                    return Ok(false);
                }
                let block = self.block.as_ref().unwrap();
                self.entry_idx = block
                    .entries
                    .partition_point(|(k, _)| compare_internal(k, ikey) == Ordering::Less);
                if self.entry_idx >= block.entries.len() {
                    // Key is past this block's last entry: move on.
                    self.entry_idx = 0;
                    return self.load_block(bi + 1);
                }
                Ok(true)
            }
        }
    }

    /// Advances to the next entry.
    ///
    /// # Errors
    ///
    /// Block read/decode failures.
    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> DbResult<bool> {
        let Some(block) = &self.block else {
            return Ok(false);
        };
        self.entry_idx += 1;
        if self.entry_idx < block.entries.len() {
            return Ok(true);
        }
        self.entry_idx = 0;
        self.load_block(self.block_idx + 1)
    }

    /// Whether positioned at a valid entry.
    pub fn valid(&self) -> bool {
        self.block
            .as_ref()
            .is_some_and(|b| self.entry_idx < b.entries.len())
    }

    /// Current internal key.
    pub fn key(&self) -> Vec<u8> {
        self.block.as_ref().unwrap().entries[self.entry_idx]
            .0
            .clone()
    }

    /// Current value.
    pub fn value(&self) -> Vec<u8> {
        self.block.as_ref().unwrap().entries[self.entry_idx]
            .1
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::{FsOptions, SimFs};

    fn fs() -> Arc<SimFs> {
        SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        )
    }

    fn build_table(
        fs: &Arc<SimFs>,
        name: &str,
        n: u32,
        bloom: usize,
    ) -> (Arc<TableReader>, Arc<BlockCache>) {
        let f = fs.create(name).unwrap();
        let mut b = TableBuilder::new(f, 4096, bloom);
        for i in 0..n {
            let k = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
            b.add(&k, format!("value-{i}").as_bytes()).unwrap();
        }
        let props = b.finish().unwrap();
        assert_eq!(props.num_entries, n as u64);
        let cache = BlockCache::new(1 << 20);
        let reader = TableReader::open(fs.open(name).unwrap(), 1, Arc::clone(&cache)).unwrap();
        (Arc::new(reader), cache)
    }

    #[test]
    fn build_and_get_all_keys() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 500, 0);
            let stats = DbStats::new();
            for i in (0..500).step_by(7) {
                let uk = format!("key{i:06}");
                let lookup = make_lookup_key(uk.as_bytes(), u64::MAX >> 8);
                let r = t.get(&lookup, uk.as_bytes(), &stats).unwrap();
                let (_, v) = r.expect("key must be found");
                assert_eq!(v, format!("value-{i}").into_bytes());
            }
            // Absent keys.
            let lookup = make_lookup_key(b"zzz", u64::MAX >> 8);
            assert!(t.get(&lookup, b"zzz", &stats).unwrap().is_none());
            let lookup = make_lookup_key(b"key000500", u64::MAX >> 8);
            assert!(t.get(&lookup, b"key000500", &stats).unwrap().is_none());
        });
    }

    #[test]
    fn properties_record_range() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 500, 0);
            let p = t.properties();
            assert_eq!(types::user_key(&p.smallest), b"key000000");
            assert_eq!(types::user_key(&p.largest), b"key000499");
            assert!(t.num_blocks() > 1, "500*~20B entries should span blocks");
        });
    }

    #[test]
    fn bloom_skips_absent_keys() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 300, 10);
            let stats = DbStats::new();
            for i in 0..200 {
                let uk = format!("nope{i:06}");
                let lookup = make_lookup_key(uk.as_bytes(), u64::MAX >> 8);
                assert!(t.get(&lookup, uk.as_bytes(), &stats).unwrap().is_none());
            }
            assert!(
                stats.ticker(Ticker::BloomUseful) > 150,
                "bloom should reject most absent probes: {}",
                stats.ticker(Ticker::BloomUseful)
            );
        });
    }

    #[test]
    fn cache_hit_on_second_read() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, cache) = build_table(&fs, "t.sst", 200, 0);
            let stats = DbStats::new();
            let uk = b"key000050";
            let lookup = make_lookup_key(uk, u64::MAX >> 8);
            t.get(&lookup, uk, &stats).unwrap();
            let (h0, m0) = cache.counters();
            t.get(&lookup, uk, &stats).unwrap();
            let (h1, m1) = cache.counters();
            assert_eq!(m1, m0, "second read must not miss");
            assert_eq!(h1, h0 + 1);
        });
    }

    #[test]
    fn iterator_scans_in_order() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 300, 0);
            let stats = DbStats::shared();
            let mut it = t.iter(stats);
            assert!(it.seek_to_first().unwrap());
            let mut count = 0;
            let mut last: Option<Vec<u8>> = None;
            while it.valid() {
                let k = it.key();
                if let Some(l) = &last {
                    assert_eq!(compare_internal(l, &k), Ordering::Less);
                }
                last = Some(k);
                count += 1;
                it.next().unwrap();
            }
            assert_eq!(count, 300);
        });
    }

    #[test]
    fn iterator_seek_lands_correctly() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 300, 0);
            let stats = DbStats::shared();
            let mut it = t.iter(stats);
            let target = make_lookup_key(b"key000123", u64::MAX >> 8);
            assert!(it.seek(&target).unwrap());
            assert_eq!(types::user_key(&it.key()), b"key000123");
            // Seek between keys lands on the next one.
            let target = make_lookup_key(b"key000123x", u64::MAX >> 8);
            assert!(it.seek(&target).unwrap());
            assert_eq!(types::user_key(&it.key()), b"key000124");
            // Seek past the end invalidates.
            let target = make_lookup_key(b"zzz", u64::MAX >> 8);
            assert!(!it.seek(&target).unwrap());
            assert!(!it.valid());
        });
    }

    #[test]
    fn compressed_table_roundtrips_and_shrinks_io() {
        Runtime::new().run(|| {
            let fs = fs();
            let value = vec![b'x'; 256]; // run-structured: RLE collapses it
            let mut sizes = [0u64; 2];
            for (slot, codec) in [CompressionType::None, CompressionType::Rle]
                .into_iter()
                .enumerate()
            {
                let name = format!("c{slot}.sst");
                let f = fs.create(&name).unwrap();
                let mut b = TableBuilder::with_options(
                    f,
                    TableOptions {
                        compression: codec,
                        ..TableOptions::default()
                    },
                );
                for i in 0..400u32 {
                    let k = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
                    b.add(&k, &value).unwrap();
                }
                let props = b.finish().unwrap();
                sizes[slot] = props.file_size;
                let cache = BlockCache::new(1 << 20);
                let t = TableReader::open(fs.open(&name).unwrap(), slot as u64 + 1, cache).unwrap();
                let stats = DbStats::new();
                for i in (0..400).step_by(13) {
                    let uk = format!("key{i:06}");
                    let lookup = make_lookup_key(uk.as_bytes(), u64::MAX >> 8);
                    let (_, v) = t.get(&lookup, uk.as_bytes(), &stats).unwrap().unwrap();
                    assert_eq!(v, value, "codec {codec:?} must round-trip");
                }
                if codec == CompressionType::Rle {
                    assert!(stats.ticker(Ticker::BlockDecompressions) > 0);
                    assert!(
                        stats.ticker(Ticker::BlockCompressedBytes)
                            < stats.ticker(Ticker::BlockUncompressedBytes) / 4
                    );
                } else {
                    assert_eq!(stats.ticker(Ticker::BlockDecompressions), 0);
                }
            }
            assert!(
                sizes[1] < sizes[0] / 4,
                "RLE file should be much smaller: {} vs {}",
                sizes[1],
                sizes[0]
            );
        });
    }

    #[test]
    fn prefix_bloom_rejects_absent_prefixes() {
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("p.sst").unwrap();
            let mut b = TableBuilder::with_options(
                f,
                TableOptions {
                    bloom_bits_per_key: 10,
                    prefix_extractor: Some(4),
                    ..TableOptions::default()
                },
            );
            // 30 distinct 4-byte prefixes `pf00`..`pf29`, keys in order.
            for p in 0..30u32 {
                for i in 0..10u32 {
                    let k = make_internal_key(
                        format!("pf{p:02}-{i:06}").as_bytes(),
                        1,
                        ValueType::Value,
                    );
                    b.add(&k, b"v").unwrap();
                }
            }
            b.finish().unwrap();
            let cache = BlockCache::new(1 << 20);
            let t = TableReader::open(fs.open("p.sst").unwrap(), 1, cache).unwrap();
            for i in 0..30 {
                assert!(t.may_contain_prefix(format!("pf{i:02}").as_bytes()));
            }
            let mut rejected = 0;
            for i in 0..100 {
                if !t.may_contain_prefix(format!("zz{i:02}").as_bytes()) {
                    rejected += 1;
                }
            }
            assert!(rejected > 90, "prefix bloom too permissive: {rejected}");
            // Wrong query length → conservative true.
            assert!(t.may_contain_prefix(b"zzzzz"));
            assert!(t.may_contain_prefix(b"zz"));

            // A point lookup whose prefix is absent is rejected by the
            // prefix filter even when the whole-key bloom false-positives
            // (forced here by probing with the whole-key filter text of a
            // present key's prefix — use the ticker to observe the path).
            let stats = DbStats::new();
            let uk = b"zz99-suffix-not-present";
            let lookup = make_lookup_key(uk, u64::MAX >> 8);
            assert!(t.get(&lookup, uk, &stats).unwrap().is_none());
            assert_eq!(
                stats.ticker(Ticker::BloomUseful) + stats.ticker(Ticker::PrefixBloomUseful),
                1,
                "one of the two filters must have cut the probe"
            );
        });
    }

    #[test]
    fn builder_retains_hashes_not_keys() {
        // Regression: the builder used to buffer every user key until
        // finish() (`user_keys: Vec<Vec<u8>>`), doubling flush/compaction
        // memory. It must now hold only per-key hashes: 4 bytes per key
        // (plus one scratch key), a small fraction of the streamed bytes.
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("m.sst").unwrap();
            let mut b = TableBuilder::with_options(
                f,
                TableOptions {
                    bloom_bits_per_key: 10,
                    prefix_extractor: Some(8),
                    ..TableOptions::default()
                },
            );
            let mut key_bytes = 0usize;
            for i in 0..20_000u32 {
                let uk = format!("a-fairly-long-user-key-{i:012}");
                key_bytes += uk.len();
                let k = make_internal_key(uk.as_bytes(), 1, ValueType::Value);
                b.add(&k, b"v").unwrap();
            }
            assert!(
                b.filter_memory_bytes() < key_bytes / 4,
                "filter state holds {} bytes for {} bytes of keys — keys are being retained",
                b.filter_memory_bytes(),
                key_bytes
            );
            b.finish().unwrap();
        });
    }

    #[test]
    fn corruption_detected() {
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("bad.sst").unwrap();
            f.append(b"garbage that is long enough to hold a footer maybe..............")
                .unwrap();
            let cache = BlockCache::new(1 << 20);
            let r = TableReader::open(fs.open("bad.sst").unwrap(), 9, cache);
            assert!(matches!(r, Err(DbError::Corruption(_))));
        });
    }

    /// Rewrites `name` with the byte at `off` flipped. SimFs has no
    /// write-at-offset, so at-rest corruption is planted by rewriting the
    /// whole file. Returns the original bytes for restoration.
    fn flip_byte(fs: &Arc<SimFs>, name: &str, off: u64) -> Vec<u8> {
        let f = fs.open(name).unwrap();
        let orig = f.read_at(0, f.len() as usize).unwrap();
        let mut bytes = orig.clone();
        bytes[off as usize] ^= 0x40;
        drop(f);
        fs.delete(name).unwrap();
        fs.create(name).unwrap().append(&bytes).unwrap();
        orig
    }

    fn restore(fs: &Arc<SimFs>, name: &str, orig: &[u8]) {
        fs.delete(name).unwrap();
        fs.create(name).unwrap().append(orig).unwrap();
    }

    #[test]
    fn whole_file_crc_matches_on_disk_bytes() {
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("c.sst").unwrap();
            let mut b = TableBuilder::new(f, 4096, 10);
            for i in 0..200u32 {
                let k = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
                b.add(&k, b"v").unwrap();
            }
            let props = b.finish().unwrap();
            let f = fs.open("c.sst").unwrap();
            let bytes = f.read_at(0, f.len() as usize).unwrap();
            assert_eq!(props.file_crc, crc32c::crc32c(&bytes));
            assert_eq!(props.file_size, bytes.len() as u64);
        });
    }

    /// Satellite: every region of the file — data, filter, index,
    /// properties, footer — is covered by a CRC, so a single flipped byte
    /// anywhere is detected (never silently wrong). One case per block
    /// kind.
    #[test]
    fn single_byte_flip_detected_in_every_block_kind() {
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("flip.sst").unwrap();
            let mut b = TableBuilder::new(f, 4096, 10);
            for i in 0..400u32 {
                let k = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
                b.add(&k, format!("value-{i}").as_bytes()).unwrap();
            }
            let props = b.finish().unwrap();

            // Recover the region layout from the footer.
            let f = fs.open("flip.sst").unwrap();
            let size = f.len();
            let footer = f.read_at(size - FOOTER_SIZE as u64, FOOTER_SIZE).unwrap();
            let bloom_off = get_fixed64(&footer, 0);
            let index_off = get_fixed64(&footer, 16);
            let props_off = get_fixed64(&footer, 32);
            drop(f);
            assert!(bloom_off > 0, "table must span multiple data blocks");

            let cases = [
                ("data block", bloom_off / 2),
                ("filter block", bloom_off + 3),
                ("index block", index_off + 3),
                ("properties block", props_off + 1),
                ("footer", size - FOOTER_SIZE as u64 + 2),
            ];
            for (kind, off) in cases {
                let orig = flip_byte(&fs, "flip.sst", off);

                // verify_table_file sees every region.
                let mut paced = 0u64;
                let err = verify_table_file(&fs.open("flip.sst").unwrap(), 7, &mut |b| paced += b)
                    .expect_err(kind);
                let DbError::Corruption(detail) = &err else {
                    panic!("{kind}: expected corruption, got {err:?}");
                };
                assert_eq!(detail.file.as_deref(), Some("000007.sst"), "{kind}");

                // The normal read path may not detect it either at open or
                // at first read, but must never return wrong data.
                let cache = BlockCache::new(1 << 20);
                match TableReader::open(fs.open("flip.sst").unwrap(), 7, cache) {
                    Err(DbError::Corruption(_)) => {}
                    Err(e) => panic!("{kind}: unexpected error {e:?}"),
                    Ok(t) => {
                        let stats = DbStats::new();
                        for i in 0..400 {
                            let uk = format!("key{i:06}");
                            let lookup = make_lookup_key(uk.as_bytes(), u64::MAX >> 8);
                            match t.get(&lookup, uk.as_bytes(), &stats) {
                                Ok(Some((_, v))) => {
                                    assert_eq!(
                                        v,
                                        format!("value-{i}").into_bytes(),
                                        "{kind}: silent wrong read"
                                    );
                                }
                                // Bloom may reject (filter flip) — a miss is
                                // harmless for this invariant.
                                Ok(None) => {}
                                Err(DbError::Corruption(_)) => break,
                                Err(e) => panic!("{kind}: unexpected error {e:?}"),
                            }
                        }
                    }
                }
                restore(&fs, "flip.sst", &orig);
            }

            // Clean file passes and pacer sees the whole file.
            let mut paced = 0u64;
            let verified =
                verify_table_file(&fs.open("flip.sst").unwrap(), 7, &mut |b| paced += b).unwrap();
            assert_eq!(verified, props.file_size);
            assert!(paced >= props.file_size, "pacer must see every read");
        });
    }

    #[test]
    fn empty_table_rejected() {
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("e.sst").unwrap();
            let b = TableBuilder::new(f, 4096, 0);
            assert!(matches!(b.finish(), Err(DbError::InvalidArgument(_))));
        });
    }

    #[test]
    fn block_roundtrip_with_restarts() {
        // Pure block-level test: shared-prefix encoding round-trips.
        let mut b = BlockBuilder::default();
        let keys: Vec<Vec<u8>> = (0..50)
            .map(|i| {
                make_internal_key(
                    format!("prefix/common/{i:04}").as_bytes(),
                    1,
                    ValueType::Value,
                )
            })
            .collect();
        for k in &keys {
            b.add(k, b"val");
        }
        let data = b.finish();
        let block = decode_block(&data).unwrap();
        assert_eq!(block.entries.len(), 50);
        for (i, (k, v)) in block.entries.iter().enumerate() {
            assert_eq!(k, &keys[i]);
            assert_eq!(v, b"val");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::stats::DbStats;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};
    use proptest::prelude::*;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::{FsOptions, SimFs};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary (sorted, deduped) user keys and values round-trip
        /// through build → open → get / full scan, with and without blooms.
        #[test]
        fn table_roundtrip_arbitrary_keys(
            keys in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 1..24), 1..120),
            bloom in prop::bool::ANY,
            compress in prop::bool::ANY,
            prefix in prop::option::of(1usize..6),
        ) {
            let keys: Vec<Vec<u8>> = keys.into_iter().collect();
            Runtime::new().run(move || {
                let fs = SimFs::new(
                    SimDevice::shared(profiles::optane_900p()),
                    FsOptions::default(),
                );
                let file = fs.create("p.sst").unwrap();
                let mut b = TableBuilder::with_options(file, TableOptions {
                    block_size: 512,
                    bloom_bits_per_key: if bloom { 10 } else { 0 },
                    compression: if compress { CompressionType::Rle } else { CompressionType::None },
                    prefix_extractor: prefix,
                });
                for (i, k) in keys.iter().enumerate() {
                    let ik = make_internal_key(k, i as u64 + 1, ValueType::Value);
                    b.add(&ik, format!("v{i}").as_bytes()).unwrap();
                }
                let props = b.finish().unwrap();
                assert_eq!(props.num_entries, keys.len() as u64);
                let cache = crate::cache::BlockCache::new(1 << 20);
                let t = std::sync::Arc::new(
                    TableReader::open(fs.open("p.sst").unwrap(), 1, cache).unwrap(),
                );
                let stats = DbStats::new();
                // Every key is found with its value.
                for (i, k) in keys.iter().enumerate() {
                    let lookup = make_lookup_key(k, u64::MAX >> 8);
                    let got = t.get(&lookup, k, &stats).unwrap();
                    let (_, v) = got.unwrap_or_else(|| panic!("key {i} missing"));
                    assert_eq!(v, format!("v{i}").into_bytes());
                }
                // Full scan yields exactly the inserted entries in order.
                let mut it = t.iter(DbStats::shared());
                let mut n = 0usize;
                let mut ok = it.seek_to_first().unwrap();
                while ok {
                    let ik = it.key();
                    assert_eq!(types::user_key(&ik), &keys[n][..]);
                    n += 1;
                    ok = it.next().unwrap();
                }
                assert_eq!(n, keys.len());
            });
        }
    }
}
