//! Sorted String Table: block format, builder and reader.
//!
//! Layout (LevelDB-flavored):
//!
//! ```text
//! [data block 0][crc32] [data block 1][crc32] …
//! [bloom block]                (optional)
//! [index block]                (last-key, offset, size per data block)
//! [properties block]           (entry count, smallest/largest internal key)
//! [footer: 6×u64 + magic u64]
//! ```
//!
//! Data blocks use shared-prefix encoding with restart points every
//! [`RESTART_INTERVAL`] entries. Readers go through the decoded-block cache;
//! a miss charges the block read (filesystem + device) and the decode CPU.

use crate::bloom::BloomFilter;
use crate::cache::{Block, BlockCache};
use crate::coding::*;
use crate::costs;
use crate::crc32c;
use crate::error::{DbError, DbResult};
use crate::stats::{DbStats, Ticker};
use crate::types::{self, compare_internal};
use std::cmp::Ordering;
use std::sync::Arc;
use xlsm_simfs::FileHandle;

/// Restart-point spacing within a data block.
pub const RESTART_INTERVAL: usize = 16;
const FOOTER_SIZE: usize = 6 * 8 + 8;
const MAGIC: u64 = 0x584c_534d_5353_5431; // "XLSMSST1"

/// SST file names: `<db>/<number>.sst`.
pub fn sst_file_name(db_path: &str, number: u64) -> String {
    format!("{db_path}/{number:06}.sst")
}

// ---------------------------------------------------------------------------
// Block building/decoding
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    count_since_restart: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    fn add(&mut self, key: &[u8], value: &[u8]) {
        let mut shared = 0usize;
        if self.count_since_restart < RESTART_INTERVAL && !self.last_key.is_empty() {
            let max = self.last_key.len().min(key.len());
            while shared < max && self.last_key[shared] == key[shared] {
                shared += 1;
            }
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
        }
        put_varint64(&mut self.buf, shared as u64);
        put_varint64(&mut self.buf, (key.len() - shared) as u64);
        put_varint64(&mut self.buf, value.len() as u64);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key = key.to_vec();
        self.count_since_restart += 1;
        self.entries += 1;
    }

    fn finish(mut self) -> Vec<u8> {
        if self.restarts.is_empty() {
            self.restarts.push(0);
        }
        for r in &self.restarts {
            put_fixed32(&mut self.buf, *r);
        }
        put_fixed32(&mut self.buf, self.restarts.len() as u32);
        self.buf
    }

    fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 8
    }

    fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// Verifies the trailing CRC of a framed block and decodes it.
///
/// # Errors
///
/// [`DbError::Corruption`] on checksum or structural failures.
pub fn decode_framed(framed: &[u8], file_number: u64) -> DbResult<Block> {
    if framed.len() < 4 {
        return Err(DbError::Corruption("short block".into()));
    }
    let (data, crc_raw) = framed.split_at(framed.len() - 4);
    let stored = crc32c::unmask(get_fixed32(crc_raw, 0));
    if stored != crc32c::crc32c(data) {
        return Err(DbError::Corruption(format!(
            "block crc mismatch in file {file_number}"
        )));
    }
    xlsm_sim::sleep_nanos(costs::block_decode_ns(data.len()));
    decode_block(data)
}

/// Decodes a serialized data block into its entry list.
///
/// # Errors
///
/// [`DbError::Corruption`] on any structural violation.
pub fn decode_block(data: &[u8]) -> DbResult<Block> {
    if data.len() < 8 {
        return Err(DbError::Corruption("block too small".into()));
    }
    let n_restarts = get_fixed32(data, data.len() - 4) as usize;
    let restarts_off = data
        .len()
        .checked_sub(4 + n_restarts * 4)
        .ok_or_else(|| DbError::Corruption("bad restart count".into()))?;
    let mut entries = Vec::new();
    let mut off = 0usize;
    let mut last_key: Vec<u8> = Vec::new();
    while off < restarts_off {
        let shared = get_varint64(data, &mut off)
            .ok_or_else(|| DbError::Corruption("bad shared len".into()))?
            as usize;
        let non_shared = get_varint64(data, &mut off)
            .ok_or_else(|| DbError::Corruption("bad non-shared len".into()))?
            as usize;
        let vlen = get_varint64(data, &mut off)
            .ok_or_else(|| DbError::Corruption("bad value len".into()))?
            as usize;
        if off + non_shared + vlen > restarts_off || shared > last_key.len() {
            return Err(DbError::Corruption("block entry out of bounds".into()));
        }
        let mut key = last_key[..shared].to_vec();
        key.extend_from_slice(&data[off..off + non_shared]);
        off += non_shared;
        let value = data[off..off + vlen].to_vec();
        off += vlen;
        last_key = key.clone();
        entries.push((key, value));
    }
    Ok(Block {
        entries,
        raw_size: data.len(),
    })
}

// ---------------------------------------------------------------------------
// Table builder
// ---------------------------------------------------------------------------

/// Summary of a finished table, destined for the version manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableProperties {
    /// File size in bytes.
    pub file_size: u64,
    /// Number of entries.
    pub num_entries: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
}

/// Streams sorted internal entries into an SST file.
#[derive(Debug)]
pub struct TableBuilder {
    file: FileHandle,
    block_size: usize,
    bloom_bits: usize,
    block: BlockBuilder,
    index: Vec<(Vec<u8>, u64, u64)>, // (last key, offset, size)
    user_keys: Vec<Vec<u8>>,         // for bloom (if enabled)
    offset: u64,
    num_entries: u64,
    smallest: Vec<u8>,
    largest: Vec<u8>,
}

impl TableBuilder {
    /// Starts building into `file`.
    pub fn new(file: FileHandle, block_size: usize, bloom_bits: usize) -> TableBuilder {
        TableBuilder {
            file,
            block_size,
            bloom_bits,
            block: BlockBuilder::default(),
            index: Vec::new(),
            user_keys: Vec::new(),
            offset: 0,
            num_entries: 0,
            smallest: Vec::new(),
            largest: Vec::new(),
        }
    }

    /// Adds an entry; keys must arrive in strictly increasing internal-key
    /// order.
    ///
    /// # Errors
    ///
    /// Filesystem errors from flushing a filled block.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> DbResult<()> {
        debug_assert!(
            self.largest.is_empty() || compare_internal(&self.largest, ikey) == Ordering::Less,
            "keys must be added in order"
        );
        if self.smallest.is_empty() {
            self.smallest = ikey.to_vec();
        }
        self.largest = ikey.to_vec();
        if self.bloom_bits > 0 {
            self.user_keys.push(types::user_key(ikey).to_vec());
        }
        self.block.add(ikey, value);
        self.num_entries += 1;
        if self.block.size_estimate() >= self.block_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> DbResult<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let last_key = self.block.last_key.clone();
        let block = std::mem::take(&mut self.block);
        let data = block.finish();
        let crc = crc32c::masked(crc32c::crc32c(&data));
        let mut framed = data;
        put_fixed32(&mut framed, crc);
        let size = framed.len() as u64;
        self.file.append(&framed)?;
        self.index.push((last_key, self.offset, size));
        self.offset += size;
        Ok(())
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bytes written so far (flushed blocks).
    pub fn file_size(&self) -> u64 {
        self.offset
    }

    /// Finishes the table: writes bloom/index/properties/footer and syncs.
    ///
    /// # Errors
    ///
    /// Filesystem errors; building an empty table is an
    /// [`DbError::InvalidArgument`].
    pub fn finish(mut self) -> DbResult<TableProperties> {
        if self.num_entries == 0 {
            return Err(DbError::InvalidArgument("empty table".into()));
        }
        self.flush_block()?;

        // Bloom block.
        let bloom_off = self.offset;
        let mut bloom_len = 0u64;
        if self.bloom_bits > 0 {
            let keys: Vec<&[u8]> = self.user_keys.iter().map(|k| k.as_slice()).collect();
            let filter = BloomFilter::new(self.bloom_bits).build(&keys);
            bloom_len = filter.len() as u64;
            self.file.append(&filter)?;
            self.offset += bloom_len;
        }

        // Index block.
        let index_off = self.offset;
        let mut index_buf = Vec::new();
        put_varint64(&mut index_buf, self.index.len() as u64);
        for (key, off, size) in &self.index {
            put_length_prefixed(&mut index_buf, key);
            put_varint64(&mut index_buf, *off);
            put_varint64(&mut index_buf, *size);
        }
        let index_len = index_buf.len() as u64;
        self.file.append(&index_buf)?;
        self.offset += index_len;

        // Properties block.
        let props_off = self.offset;
        let mut props = Vec::new();
        put_varint64(&mut props, self.num_entries);
        put_length_prefixed(&mut props, &self.smallest);
        put_length_prefixed(&mut props, &self.largest);
        let props_len = props.len() as u64;
        self.file.append(&props)?;
        self.offset += props_len;

        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_SIZE);
        put_fixed64(&mut footer, bloom_off);
        put_fixed64(&mut footer, bloom_len);
        put_fixed64(&mut footer, index_off);
        put_fixed64(&mut footer, index_len);
        put_fixed64(&mut footer, props_off);
        put_fixed64(&mut footer, props_len);
        put_fixed64(&mut footer, MAGIC);
        self.file.append(&footer)?;
        self.offset += footer.len() as u64;

        self.file.sync()?;
        Ok(TableProperties {
            file_size: self.offset,
            num_entries: self.num_entries,
            smallest: self.smallest,
            largest: self.largest,
        })
    }
}

// ---------------------------------------------------------------------------
// Table reader
// ---------------------------------------------------------------------------

/// One key of a [`TableReader::get_many`] batch.
#[derive(Clone, Debug)]
pub struct TableProbe {
    /// Caller-side index of the key this probe answers (opaque to the
    /// reader; echoed back with any hit).
    pub slot: usize,
    /// Internal lookup key (`make_lookup_key(user_key, snapshot)`).
    pub lookup: Vec<u8>,
    /// The bare user key (bloom check + hit validation).
    pub user_key: Vec<u8>,
}

/// One [`TableReader::get_many`] hit: the probe's slot plus the matching
/// `(internal key, value)` entry.
pub type TableHit = (usize, (Vec<u8>, Vec<u8>));

/// Open handle to one SST: parsed index + bloom, block access via cache.
pub struct TableReader {
    file: FileHandle,
    file_number: u64,
    cache: Arc<BlockCache>,
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: Option<Vec<u8>>,
    props: TableProperties,
}

impl std::fmt::Debug for TableReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableReader")
            .field("file_number", &self.file_number)
            .field("entries", &self.props.num_entries)
            .field("blocks", &self.index.len())
            .finish()
    }
}

impl TableReader {
    /// Opens a finished table, reading footer, properties, index and bloom.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on format violations; filesystem errors pass
    /// through.
    pub fn open(
        file: FileHandle,
        file_number: u64,
        cache: Arc<BlockCache>,
    ) -> DbResult<TableReader> {
        let size = file.len();
        if size < FOOTER_SIZE as u64 {
            return Err(DbError::Corruption("file smaller than footer".into()));
        }
        let footer = file.read_at(size - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        if get_fixed64(&footer, 48) != MAGIC {
            return Err(DbError::Corruption("bad magic".into()));
        }
        let bloom_off = get_fixed64(&footer, 0);
        let bloom_len = get_fixed64(&footer, 8);
        let index_off = get_fixed64(&footer, 16);
        let index_len = get_fixed64(&footer, 24);
        let props_off = get_fixed64(&footer, 32);
        let props_len = get_fixed64(&footer, 40);

        let index_raw = file.read_at(index_off, index_len as usize)?;
        let mut off = 0usize;
        let n = get_varint64(&index_raw, &mut off)
            .ok_or_else(|| DbError::Corruption("bad index count".into()))?;
        let mut index = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let key = get_length_prefixed(&index_raw, &mut off)
                .ok_or_else(|| DbError::Corruption("bad index key".into()))?
                .to_vec();
            let boff = get_varint64(&index_raw, &mut off)
                .ok_or_else(|| DbError::Corruption("bad index offset".into()))?;
            let bsize = get_varint64(&index_raw, &mut off)
                .ok_or_else(|| DbError::Corruption("bad index size".into()))?;
            index.push((key, boff, bsize));
        }

        let bloom = if bloom_len > 0 {
            Some(file.read_at(bloom_off, bloom_len as usize)?)
        } else {
            None
        };

        let props_raw = file.read_at(props_off, props_len as usize)?;
        let mut poff = 0usize;
        let num_entries = get_varint64(&props_raw, &mut poff)
            .ok_or_else(|| DbError::Corruption("bad props".into()))?;
        let smallest = get_length_prefixed(&props_raw, &mut poff)
            .ok_or_else(|| DbError::Corruption("bad smallest".into()))?
            .to_vec();
        let largest = get_length_prefixed(&props_raw, &mut poff)
            .ok_or_else(|| DbError::Corruption("bad largest".into()))?
            .to_vec();

        Ok(TableReader {
            file,
            file_number,
            cache,
            index,
            bloom,
            props: TableProperties {
                file_size: size,
                num_entries,
                smallest,
                largest,
            },
        })
    }

    /// Table properties (entry count, key range).
    pub fn properties(&self) -> &TableProperties {
        &self.props
    }

    /// Number of data blocks.
    pub fn num_blocks(&self) -> usize {
        self.index.len()
    }

    /// User keys on each data-block boundary (the last key of every block),
    /// in ascending order — the candidate cut points for range-partitioned
    /// subcompactions. Served from the already-parsed index: no I/O.
    pub fn block_boundary_user_keys(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.index.iter().map(|(last, _, _)| types::user_key(last))
    }

    /// Loads block `i` through the cache, charging read + decode costs.
    fn block(&self, i: usize, stats: &DbStats) -> DbResult<Arc<Block>> {
        let (_, off, size) = self.index[i];
        let key = (self.file_number, off);
        if let Some(b) = self.cache.get(&key) {
            stats.bump(Ticker::BlockCacheHit);
            return Ok(b);
        }
        stats.bump(Ticker::BlockCacheMiss);
        let framed = self.file.read_at(off, size as usize)?;
        let block = Arc::new(decode_framed(&framed, self.file_number)?);
        self.cache.insert(key, Arc::clone(&block));
        Ok(block)
    }

    /// Index of the first block whose last key is ≥ `ikey`, or None.
    fn block_for(&self, ikey: &[u8]) -> Option<usize> {
        xlsm_sim::sleep_nanos(costs::binary_search_ns(self.index.len() as u64));
        let idx = self
            .index
            .partition_point(|(last, _, _)| compare_internal(last, ikey) == Ordering::Less);
        (idx < self.index.len()).then_some(idx)
    }

    /// Point lookup: returns the first entry with internal key ≥ `lookup`
    /// whose user key equals `user_key`, as `(ikey, value)`.
    ///
    /// # Errors
    ///
    /// Corruption or filesystem errors.
    pub fn get(
        &self,
        lookup: &[u8],
        user_key: &[u8],
        stats: &DbStats,
    ) -> DbResult<Option<(Vec<u8>, Vec<u8>)>> {
        xlsm_sim::sleep_nanos(costs::TABLE_LOOKUP_BASE_NS);
        if let Some(bloom) = &self.bloom {
            xlsm_sim::sleep_nanos(costs::BLOOM_CHECK_NS);
            if !BloomFilter::may_contain(bloom, user_key) {
                stats.bump(Ticker::BloomUseful);
                return Ok(None);
            }
        }
        let Some(bi) = self.block_for(lookup) else {
            return Ok(None);
        };
        let block = self.block(bi, stats)?;
        xlsm_sim::sleep_nanos(costs::binary_search_ns(block.entries.len() as u64));
        let pos = block
            .entries
            .partition_point(|(k, _)| compare_internal(k, lookup) == Ordering::Less);
        if pos >= block.entries.len() {
            return Ok(None);
        }
        let (k, v) = &block.entries[pos];
        if types::user_key(k) != user_key {
            return Ok(None);
        }
        Ok(Some((k.clone(), v.clone())))
    }

    /// Batched point lookup: answers every probe in one pass over the
    /// table, paying the fixed per-table cost once and decoding each
    /// distinct data block at most once (probes are grouped per block).
    /// Returns `(slot, (ikey, value))` for each probe that hit; misses are
    /// simply absent.
    ///
    /// # Errors
    ///
    /// Corruption or filesystem errors.
    pub fn get_many(&self, probes: &[TableProbe], stats: &DbStats) -> DbResult<Vec<TableHit>> {
        xlsm_sim::sleep_nanos(costs::TABLE_LOOKUP_BASE_NS);
        // Resolve each probe to its block first so block loads can be
        // shared; `by_block` is sorted so one block is decoded exactly once.
        let mut by_block: Vec<(usize, usize)> = Vec::new(); // (block, probe idx)
        for (i, p) in probes.iter().enumerate() {
            if let Some(bloom) = &self.bloom {
                xlsm_sim::sleep_nanos(costs::BLOOM_CHECK_NS);
                if !BloomFilter::may_contain(bloom, &p.user_key) {
                    stats.bump(Ticker::BloomUseful);
                    continue;
                }
            }
            if let Some(bi) = self.block_for(&p.lookup) {
                by_block.push((bi, i));
            }
        }
        by_block.sort_unstable();
        let mut hits = Vec::new();
        let mut cur: Option<(usize, Arc<Block>)> = None;
        for (bi, i) in by_block {
            let block = match &cur {
                Some((loaded, b)) if *loaded == bi => Arc::clone(b),
                _ => {
                    let b = self.block(bi, stats)?;
                    cur = Some((bi, Arc::clone(&b)));
                    b
                }
            };
            let p = &probes[i];
            xlsm_sim::sleep_nanos(costs::binary_search_ns(block.entries.len() as u64));
            let pos = block
                .entries
                .partition_point(|(k, _)| compare_internal(k, &p.lookup) == Ordering::Less);
            if pos >= block.entries.len() {
                continue;
            }
            let (k, v) = &block.entries[pos];
            if types::user_key(k) == &p.user_key[..] {
                hits.push((p.slot, (k.clone(), v.clone())));
            }
        }
        Ok(hits)
    }

    /// Iterator over the whole table.
    pub fn iter(self: &Arc<Self>, stats: Arc<DbStats>) -> TableIterator {
        TableIterator {
            table: Arc::clone(self),
            stats,
            block_idx: 0,
            block: None,
            entry_idx: 0,
            readahead: false,
            ra_buf: None,
        }
    }

    /// Iterator with sequential readahead (compaction-style access): before
    /// decoding a block past the prefetch watermark, the next
    /// [`READAHEAD_BYTES`] of the file are pulled into the page cache with
    /// one coalesced device read.
    pub fn iter_with_readahead(self: &Arc<Self>, stats: Arc<DbStats>) -> TableIterator {
        TableIterator {
            readahead: true,
            ..self.iter(stats)
        }
    }
}

/// Sequential readahead window for compaction-style iteration (RocksDB's
/// `compaction_readahead_size` default is 2 MB on disks; scaled here).
pub const READAHEAD_BYTES: usize = 256 << 10;

/// Sequential/seekable iterator over a table's entries.
pub struct TableIterator {
    table: Arc<TableReader>,
    stats: Arc<DbStats>,
    block_idx: usize,
    block: Option<Arc<Block>>,
    entry_idx: usize,
    readahead: bool,
    /// Private readahead buffer `(file offset, bytes)`: compaction reads
    /// large sequential spans once and decodes blocks from process memory,
    /// independent of page-cache pressure (and without polluting the block
    /// cache).
    ra_buf: Option<(u64, Vec<u8>)>,
}

impl std::fmt::Debug for TableIterator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableIterator")
            .field("file", &self.table.file_number)
            .field("block_idx", &self.block_idx)
            .finish()
    }
}

impl TableIterator {
    fn load_block(&mut self, i: usize) -> DbResult<bool> {
        if i >= self.table.index.len() {
            self.block = None;
            return Ok(false);
        }
        if self.readahead {
            let (_, off, size) = self.table.index[i];
            let in_buf = self.ra_buf.as_ref().is_some_and(|(start, buf)| {
                off >= *start && off + size <= *start + buf.len() as u64
            });
            if !in_buf {
                let want = (size as usize).max(READAHEAD_BYTES);
                let avail = (self.table.file.len() - off) as usize;
                let len = want.min(avail);
                let buf = self.table.file.read_at(off, len)?;
                self.ra_buf = Some((off, buf));
            }
            let (start, buf) = self.ra_buf.as_ref().unwrap();
            let lo = (off - start) as usize;
            let framed = &buf[lo..lo + size as usize];
            self.block_idx = i;
            self.block = Some(Arc::new(decode_framed(framed, self.table.file_number)?));
            return Ok(true);
        }
        self.block_idx = i;
        self.block = Some(self.table.block(i, &self.stats)?);
        Ok(true)
    }

    /// Positions at the first entry.
    ///
    /// # Errors
    ///
    /// Block read/decode failures.
    pub fn seek_to_first(&mut self) -> DbResult<bool> {
        self.entry_idx = 0;
        self.load_block(0)
    }

    /// Positions at the first entry with internal key ≥ `ikey`.
    ///
    /// # Errors
    ///
    /// Block read/decode failures.
    pub fn seek(&mut self, ikey: &[u8]) -> DbResult<bool> {
        match self.table.block_for(ikey) {
            None => {
                self.block = None;
                Ok(false)
            }
            Some(bi) => {
                if !self.load_block(bi)? {
                    return Ok(false);
                }
                let block = self.block.as_ref().unwrap();
                self.entry_idx = block
                    .entries
                    .partition_point(|(k, _)| compare_internal(k, ikey) == Ordering::Less);
                if self.entry_idx >= block.entries.len() {
                    // Key is past this block's last entry: move on.
                    self.entry_idx = 0;
                    return self.load_block(bi + 1);
                }
                Ok(true)
            }
        }
    }

    /// Advances to the next entry.
    ///
    /// # Errors
    ///
    /// Block read/decode failures.
    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> DbResult<bool> {
        let Some(block) = &self.block else {
            return Ok(false);
        };
        self.entry_idx += 1;
        if self.entry_idx < block.entries.len() {
            return Ok(true);
        }
        self.entry_idx = 0;
        self.load_block(self.block_idx + 1)
    }

    /// Whether positioned at a valid entry.
    pub fn valid(&self) -> bool {
        self.block
            .as_ref()
            .is_some_and(|b| self.entry_idx < b.entries.len())
    }

    /// Current internal key.
    pub fn key(&self) -> Vec<u8> {
        self.block.as_ref().unwrap().entries[self.entry_idx]
            .0
            .clone()
    }

    /// Current value.
    pub fn value(&self) -> Vec<u8> {
        self.block.as_ref().unwrap().entries[self.entry_idx]
            .1
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::{FsOptions, SimFs};

    fn fs() -> Arc<SimFs> {
        SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        )
    }

    fn build_table(
        fs: &Arc<SimFs>,
        name: &str,
        n: u32,
        bloom: usize,
    ) -> (Arc<TableReader>, Arc<BlockCache>) {
        let f = fs.create(name).unwrap();
        let mut b = TableBuilder::new(f, 4096, bloom);
        for i in 0..n {
            let k = make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
            b.add(&k, format!("value-{i}").as_bytes()).unwrap();
        }
        let props = b.finish().unwrap();
        assert_eq!(props.num_entries, n as u64);
        let cache = BlockCache::new(1 << 20);
        let reader = TableReader::open(fs.open(name).unwrap(), 1, Arc::clone(&cache)).unwrap();
        (Arc::new(reader), cache)
    }

    #[test]
    fn build_and_get_all_keys() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 500, 0);
            let stats = DbStats::new();
            for i in (0..500).step_by(7) {
                let uk = format!("key{i:06}");
                let lookup = make_lookup_key(uk.as_bytes(), u64::MAX >> 8);
                let r = t.get(&lookup, uk.as_bytes(), &stats).unwrap();
                let (_, v) = r.expect("key must be found");
                assert_eq!(v, format!("value-{i}").into_bytes());
            }
            // Absent keys.
            let lookup = make_lookup_key(b"zzz", u64::MAX >> 8);
            assert!(t.get(&lookup, b"zzz", &stats).unwrap().is_none());
            let lookup = make_lookup_key(b"key000500", u64::MAX >> 8);
            assert!(t.get(&lookup, b"key000500", &stats).unwrap().is_none());
        });
    }

    #[test]
    fn properties_record_range() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 500, 0);
            let p = t.properties();
            assert_eq!(types::user_key(&p.smallest), b"key000000");
            assert_eq!(types::user_key(&p.largest), b"key000499");
            assert!(t.num_blocks() > 1, "500*~20B entries should span blocks");
        });
    }

    #[test]
    fn bloom_skips_absent_keys() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 300, 10);
            let stats = DbStats::new();
            for i in 0..200 {
                let uk = format!("nope{i:06}");
                let lookup = make_lookup_key(uk.as_bytes(), u64::MAX >> 8);
                assert!(t.get(&lookup, uk.as_bytes(), &stats).unwrap().is_none());
            }
            assert!(
                stats.ticker(Ticker::BloomUseful) > 150,
                "bloom should reject most absent probes: {}",
                stats.ticker(Ticker::BloomUseful)
            );
        });
    }

    #[test]
    fn cache_hit_on_second_read() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, cache) = build_table(&fs, "t.sst", 200, 0);
            let stats = DbStats::new();
            let uk = b"key000050";
            let lookup = make_lookup_key(uk, u64::MAX >> 8);
            t.get(&lookup, uk, &stats).unwrap();
            let (h0, m0) = cache.counters();
            t.get(&lookup, uk, &stats).unwrap();
            let (h1, m1) = cache.counters();
            assert_eq!(m1, m0, "second read must not miss");
            assert_eq!(h1, h0 + 1);
        });
    }

    #[test]
    fn iterator_scans_in_order() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 300, 0);
            let stats = DbStats::shared();
            let mut it = t.iter(stats);
            assert!(it.seek_to_first().unwrap());
            let mut count = 0;
            let mut last: Option<Vec<u8>> = None;
            while it.valid() {
                let k = it.key();
                if let Some(l) = &last {
                    assert_eq!(compare_internal(l, &k), Ordering::Less);
                }
                last = Some(k);
                count += 1;
                it.next().unwrap();
            }
            assert_eq!(count, 300);
        });
    }

    #[test]
    fn iterator_seek_lands_correctly() {
        Runtime::new().run(|| {
            let fs = fs();
            let (t, _) = build_table(&fs, "t.sst", 300, 0);
            let stats = DbStats::shared();
            let mut it = t.iter(stats);
            let target = make_lookup_key(b"key000123", u64::MAX >> 8);
            assert!(it.seek(&target).unwrap());
            assert_eq!(types::user_key(&it.key()), b"key000123");
            // Seek between keys lands on the next one.
            let target = make_lookup_key(b"key000123x", u64::MAX >> 8);
            assert!(it.seek(&target).unwrap());
            assert_eq!(types::user_key(&it.key()), b"key000124");
            // Seek past the end invalidates.
            let target = make_lookup_key(b"zzz", u64::MAX >> 8);
            assert!(!it.seek(&target).unwrap());
            assert!(!it.valid());
        });
    }

    #[test]
    fn corruption_detected() {
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("bad.sst").unwrap();
            f.append(b"garbage that is long enough to hold a footer maybe..............")
                .unwrap();
            let cache = BlockCache::new(1 << 20);
            let r = TableReader::open(fs.open("bad.sst").unwrap(), 9, cache);
            assert!(matches!(r, Err(DbError::Corruption(_))));
        });
    }

    #[test]
    fn empty_table_rejected() {
        Runtime::new().run(|| {
            let fs = fs();
            let f = fs.create("e.sst").unwrap();
            let b = TableBuilder::new(f, 4096, 0);
            assert!(matches!(b.finish(), Err(DbError::InvalidArgument(_))));
        });
    }

    #[test]
    fn block_roundtrip_with_restarts() {
        // Pure block-level test: shared-prefix encoding round-trips.
        let mut b = BlockBuilder::default();
        let keys: Vec<Vec<u8>> = (0..50)
            .map(|i| {
                make_internal_key(
                    format!("prefix/common/{i:04}").as_bytes(),
                    1,
                    ValueType::Value,
                )
            })
            .collect();
        for k in &keys {
            b.add(k, b"val");
        }
        let data = b.finish();
        let block = decode_block(&data).unwrap();
        assert_eq!(block.entries.len(), 50);
        for (i, (k, v)) in block.entries.iter().enumerate() {
            assert_eq!(k, &keys[i]);
            assert_eq!(v, b"val");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::stats::DbStats;
    use crate::types::{make_internal_key, make_lookup_key, ValueType};
    use proptest::prelude::*;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::{FsOptions, SimFs};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary (sorted, deduped) user keys and values round-trip
        /// through build → open → get / full scan, with and without blooms.
        #[test]
        fn table_roundtrip_arbitrary_keys(
            keys in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 1..24), 1..120),
            bloom in prop::bool::ANY,
        ) {
            let keys: Vec<Vec<u8>> = keys.into_iter().collect();
            Runtime::new().run(move || {
                let fs = SimFs::new(
                    SimDevice::shared(profiles::optane_900p()),
                    FsOptions::default(),
                );
                let file = fs.create("p.sst").unwrap();
                let mut b = TableBuilder::new(file, 512, if bloom { 10 } else { 0 });
                for (i, k) in keys.iter().enumerate() {
                    let ik = make_internal_key(k, i as u64 + 1, ValueType::Value);
                    b.add(&ik, format!("v{i}").as_bytes()).unwrap();
                }
                let props = b.finish().unwrap();
                assert_eq!(props.num_entries, keys.len() as u64);
                let cache = crate::cache::BlockCache::new(1 << 20);
                let t = std::sync::Arc::new(
                    TableReader::open(fs.open("p.sst").unwrap(), 1, cache).unwrap(),
                );
                let stats = DbStats::new();
                // Every key is found with its value.
                for (i, k) in keys.iter().enumerate() {
                    let lookup = make_lookup_key(k, u64::MAX >> 8);
                    let got = t.get(&lookup, k, &stats).unwrap();
                    let (_, v) = got.unwrap_or_else(|| panic!("key {i} missing"));
                    assert_eq!(v, format!("v{i}").into_bytes());
                }
                // Full scan yields exactly the inserted entries in order.
                let mut it = t.iter(DbStats::shared());
                let mut n = 0usize;
                let mut ok = it.seek_to_first().unwrap();
                while ok {
                    let ik = it.key();
                    assert_eq!(types::user_key(&ik), &keys[n][..]);
                    n += 1;
                    ok = it.next().unwrap();
                }
                assert_eq!(n, keys.len());
            });
        }
    }
}
