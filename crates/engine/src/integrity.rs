//! End-to-end integrity primitives: per-key-value protection info and
//! whole-file checksum helpers.
//!
//! The per-entry checksum is the RocksDB `protection_bytes_per_key` analogue:
//! a CRC computed over an entry's *content* (value type, user key, value) at
//! [`crate::batch::WriteBatch`] build time, carried alongside the batch
//! through every handoff — group-commit merge, WAL encode, memtable insert —
//! and re-verified at each one, so a corrupted entry is caught at the layer
//! that corrupted it rather than served back to a client.
//!
//! The checksum is deliberately *sequence-independent*: group commit stamps
//! sequences after batches are built and merged, and recomputing protection
//! on every restamp would both cost CPU and launder any corruption that
//! happened in between.

use crate::crc32c;
use crate::error::{DbError, DbResult};
use crate::types::ValueType;
use xlsm_simfs::FileHandle;

/// Protection widths accepted by
/// [`crate::options::DbOptions::protection_bytes_per_key`].
pub const VALID_PROTECTION_WIDTHS: [usize; 5] = [0, 1, 2, 4, 8];

/// Salt prepended when deriving the upper 32 bits of the 8-byte protection
/// value, so the two halves never collide for the same entry bytes.
const WIDE_SALT: [u8; 1] = [0xa5];

/// The full 8-byte protection value for one entry. The low 32 bits are the
/// CRC32-C of the framed entry; the high 32 bits a salted CRC over the same
/// bytes (only consulted at widths > 4).
pub fn entry_protection(t: ValueType, key: &[u8], value: &[u8]) -> u64 {
    let mut lo = crc32c::Hasher::new();
    feed_entry(&mut lo, t, key, value);
    let mut hi = crc32c::Hasher::new();
    hi.update(&WIDE_SALT);
    feed_entry(&mut hi, t, key, value);
    (lo.finish() as u64) | ((hi.finish() as u64) << 32)
}

/// The 32-bit entry checksum (the low half of [`entry_protection`]) — what
/// the memtable stores per node to protect entries at rest.
pub fn entry_checksum(t: ValueType, key: &[u8], value: &[u8]) -> u32 {
    let mut h = crc32c::Hasher::new();
    feed_entry(&mut h, t, key, value);
    h.finish()
}

fn feed_entry(h: &mut crc32c::Hasher, t: ValueType, key: &[u8], value: &[u8]) {
    // Length framing keeps ("ab", "c") and ("a", "bc") distinct.
    h.update(&[t as u8]);
    h.update(&(key.len() as u32).to_le_bytes());
    h.update(key);
    h.update(&(value.len() as u32).to_le_bytes());
    h.update(value);
}

/// Truncates an 8-byte protection value to `width` bytes (little-endian
/// prefix). `width` must be one of [`VALID_PROTECTION_WIDTHS`].
pub fn truncate_protection(full: u64, width: usize) -> u64 {
    if width >= 8 {
        full
    } else {
        full & ((1u64 << (width * 8)) - 1)
    }
}

/// Verifies one entry against its stored (truncated) protection value.
///
/// # Errors
///
/// [`DbError::Corruption`] naming `layer` (the handoff that caught the
/// mismatch) and the entry index within its batch.
pub fn verify_entry(
    stored: u64,
    width: usize,
    t: ValueType,
    key: &[u8],
    value: &[u8],
    layer: &str,
    index: usize,
) -> DbResult<()> {
    let expect = truncate_protection(entry_protection(t, key, value), width);
    if stored != expect {
        return Err(DbError::corruption(format!(
            "per-key protection mismatch at {layer} (entry {index}): \
             stored {stored:#x} != computed {expect:#x}"
        )));
    }
    Ok(())
}

/// Chunk size for whole-file CRC reads: large enough to amortize per-request
/// device overhead, small enough that scrub pacing stays smooth.
pub const FILE_CRC_CHUNK: usize = 64 << 10;

/// CRC32-C over an entire file, read in [`FILE_CRC_CHUNK`] pieces. `pacer`
/// is invoked after every chunk with the bytes just read — the scrubber uses
/// it to sleep off its rate budget; verification passes a no-op.
///
/// # Errors
///
/// Filesystem errors from the underlying reads.
pub fn file_crc32c(file: &FileHandle, pacer: &mut dyn FnMut(u64)) -> DbResult<u32> {
    let len = file.len();
    let mut h = crc32c::Hasher::new();
    let mut off = 0u64;
    while off < len {
        let n = FILE_CRC_CHUNK.min((len - off) as usize);
        let chunk = file.read_at(off, n)?;
        h.update(&chunk);
        off += chunk.len() as u64;
        pacer(chunk.len() as u64);
    }
    Ok(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_is_sequence_independent_and_framed() {
        let a = entry_protection(ValueType::Value, b"ab", b"c");
        let b = entry_protection(ValueType::Value, b"a", b"bc");
        assert_ne!(a, b, "length framing must separate key/value boundaries");
        let del = entry_protection(ValueType::Deletion, b"ab", b"c");
        assert_ne!(a, del, "value type must be covered");
        // Deterministic.
        assert_eq!(a, entry_protection(ValueType::Value, b"ab", b"c"));
    }

    #[test]
    fn truncation_widths() {
        let full = 0x1122_3344_5566_7788u64;
        assert_eq!(truncate_protection(full, 1), 0x88);
        assert_eq!(truncate_protection(full, 2), 0x7788);
        assert_eq!(truncate_protection(full, 4), 0x5566_7788);
        assert_eq!(truncate_protection(full, 8), full);
    }

    #[test]
    fn verify_entry_detects_flip() {
        let t = ValueType::Value;
        let stored = truncate_protection(entry_protection(t, b"k", b"v"), 8);
        assert!(verify_entry(stored, 8, t, b"k", b"v", "test", 0).is_ok());
        let e = verify_entry(stored, 8, t, b"k", b"w", "memtable insert", 3).unwrap_err();
        assert!(e.is_corruption());
        let msg = e.to_string();
        assert!(msg.contains("memtable insert"), "layer missing: {msg}");
        assert!(msg.contains("entry 3"), "index missing: {msg}");
    }

    #[test]
    fn narrow_widths_still_catch_most_flips() {
        // A 1-byte checksum misses 1-in-256 flips; make sure the plumbing
        // truncates consistently rather than zeroing out.
        let t = ValueType::Value;
        let stored = truncate_protection(entry_protection(t, b"key", b"value"), 1);
        assert!(verify_entry(stored, 1, t, b"key", b"value", "t", 0).is_ok());
        let mismatches = (0u8..=255)
            .filter(|b| verify_entry(stored, 1, t, b"key", &[*b], "t", 0).is_err())
            .count();
        assert!(
            mismatches >= 250,
            "1-byte protection too weak: {mismatches}"
        );
    }
}
