//! The write controller — the paper's **Algorithm 1** (write control
//! process) plus the stall-condition evaluation that feeds it.
//!
//! RocksDB slows incoming writes when flush/compaction falls behind:
//!
//! * too many memtables → **stop**;
//! * L0 file count ≥ `level0_stop_writes_trigger` → **stop**;
//! * L0 file count ≥ `level0_slowdown_writes_trigger` → **delay**, paced by
//!   `delayed_write_rate`, which adapts by ×0.8 / ×1.25 depending on whether
//!   compaction is keeping up (Algorithm 1 lines 7–11);
//! * each delayed write sleeps per `DELAYWRITE` (Algorithm 1 lines 17–31)
//!   with `refill_interval = 1024 µs`.
//!
//! The *policy* deciding which stall level applies is pluggable via
//! [`ThrottlePolicy`]; the paper's case study V-A installs a two-stage
//! policy (see `xlsm-core`) without touching this mechanism.

use crate::options::DbOptions;
use std::fmt;
use std::sync::Arc;
use xlsm_sim::sync::WaitSet;
use xlsm_sim::Nanos;

/// Refill interval of Algorithm 1 (1024 µs).
pub const REFILL_INTERVAL_NS: Nanos = 1_024_000;
/// Rate decrease factor when compaction is keeping up poorly.
pub const RATE_DEC: f64 = 0.8;
/// Rate increase factor when compaction catches up.
pub const RATE_INC: f64 = 1.25;
/// Floor for the adaptive rate (bytes/s).
pub const MIN_RATE: u64 = 1 << 20;

/// Inputs to stall evaluation, gathered from the LSM state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallSignals {
    /// Current number of Level-0 files.
    pub l0_files: usize,
    /// Memtables (mutable + immutable).
    pub memtables: usize,
    /// Estimated bytes awaiting compaction (Algorithm 1's `Esti_Bytes`).
    pub pending_compaction_bytes: u64,
    /// Cumulative bytes processed by flush + compaction (the source of
    /// Algorithm 1's per-interval `Prev_Bytes`).
    pub compacted_bytes: u64,
}

/// The stall level a policy selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallLevel {
    /// No throttling.
    Clear,
    /// Rate-limited, but the adaptive rate is floored at `min_rate`
    /// (stage 1 of the two-stage case study).
    GentleDelay {
        /// Lowest allowed write rate in bytes/s.
        min_rate: u64,
    },
    /// Full Algorithm 1 adaptive delay.
    Delay,
    /// Writes blocked until conditions clear.
    Stop,
}

/// Chooses a [`StallLevel`] from the signals. Implementations must be cheap
/// and non-blocking.
pub trait ThrottlePolicy: Send + Sync {
    /// Evaluates the current stall level.
    fn evaluate(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel;
    /// Short name for reports.
    fn name(&self) -> &'static str;
}

impl fmt::Debug for dyn ThrottlePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThrottlePolicy({})", self.name())
    }
}

/// RocksDB 5.17's original single-stage policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct OriginalThrottlePolicy;

impl ThrottlePolicy for OriginalThrottlePolicy {
    fn evaluate(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel {
        if sig.memtables > opts.max_write_buffer_number {
            return StallLevel::Stop;
        }
        if sig.l0_files >= opts.level0_stop_writes_trigger {
            return StallLevel::Stop;
        }
        if sig.l0_files >= opts.level0_slowdown_writes_trigger {
            return StallLevel::Delay;
        }
        StallLevel::Clear
    }

    fn name(&self) -> &'static str {
        "original"
    }
}

/// A policy that never throttles (ablation baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoThrottlePolicy;

impl ThrottlePolicy for NoThrottlePolicy {
    fn evaluate(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel {
        // Memtable stop cannot be disabled: the write path has nowhere to
        // put data without a mutable memtable.
        if sig.memtables > opts.max_write_buffer_number {
            StallLevel::Stop
        } else {
            StallLevel::Clear
        }
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

struct CtlState {
    level: StallLevel,
    rate: u64,
    last_refill: Nanos,
    /// Reservation timeline for the smooth (stage-1) pacer.
    gentle_next: Nanos,
    prev_compacted: u64,
}

/// Snapshot of controller state, for analysis and figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControllerSnapshot {
    /// Current stall level.
    pub level: StallLevel,
    /// Current adaptive `delayed_write_rate` in bytes/s.
    pub delayed_write_rate: u64,
}

/// The write controller instance owned by a database.
pub struct WriteController {
    policy: Arc<dyn ThrottlePolicy>,
    init_rate: u64,
    state: parking_lot::Mutex<CtlState>,
    stopped: WaitSet,
}

impl fmt::Debug for WriteController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("WriteController")
            .field("policy", &self.policy.name())
            .field("level", &s.level)
            .field("rate", &s.rate)
            .finish()
    }
}

impl WriteController {
    /// Creates a controller with the policy and initial rate from `opts`.
    pub fn new(opts: &DbOptions) -> WriteController {
        WriteController {
            policy: Arc::clone(&opts.throttle_policy),
            init_rate: opts.delayed_write_rate,
            state: parking_lot::Mutex::new(CtlState {
                level: StallLevel::Clear,
                rate: opts.delayed_write_rate,
                last_refill: 0,
                gentle_next: 0,
                prev_compacted: 0,
            }),
            stopped: WaitSet::new("write-stopped"),
        }
    }

    /// Re-evaluates stall conditions; called whenever LSM shape changes
    /// (memtable switch, flush installed, compaction installed).
    ///
    /// Returns the new level.
    pub fn update(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel {
        let new_level = self.policy.evaluate(sig, opts);
        let mut wake = false;
        {
            let mut st = self.state.lock();
            let was_delay = matches!(
                st.level,
                StallLevel::Delay | StallLevel::GentleDelay { .. }
            );
            match new_level {
                StallLevel::Delay | StallLevel::GentleDelay { .. } => {
                    if was_delay {
                        // Algorithm 1 lines 7–11: Prev_Bytes (processed
                        // since the previous interval) vs. Esti_Bytes (the
                        // outstanding backlog). While compaction processes
                        // less than the backlog, keep slowing down — this
                        // is what compounds the rate toward the near-stop
                        // floor during bursts.
                        let prev_bytes = sig.compacted_bytes.saturating_sub(st.prev_compacted);
                        let esti_bytes = sig.pending_compaction_bytes;
                        if prev_bytes <= esti_bytes {
                            st.rate = ((st.rate as f64) * RATE_DEC) as u64;
                        } else {
                            st.rate = ((st.rate as f64) * RATE_INC) as u64;
                        }
                    } else {
                        st.rate = self.init_rate;
                    }
                    let floor = match new_level {
                        StallLevel::GentleDelay { min_rate } => min_rate.max(MIN_RATE),
                        _ => MIN_RATE,
                    };
                    st.rate = st.rate.clamp(floor, self.init_rate.max(floor));
                }
                StallLevel::Clear | StallLevel::Stop => {}
            }
            if matches!(st.level, StallLevel::Stop) && !matches!(new_level, StallLevel::Stop) {
                wake = true;
            }
            st.prev_compacted = sig.compacted_bytes;
            st.level = new_level;
        }
        if wake {
            self.stopped.notify_all();
        }
        new_level
    }

    /// Current state.
    pub fn snapshot(&self) -> ControllerSnapshot {
        let st = self.state.lock();
        ControllerSnapshot {
            level: st.level,
            delayed_write_rate: st.rate,
        }
    }

    /// Whether writes are currently fully stopped.
    pub fn is_stopped(&self) -> bool {
        matches!(self.state.lock().level, StallLevel::Stop)
    }

    /// Blocks the caller while writes are stopped. Returns the nanoseconds
    /// spent waiting.
    pub fn wait_while_stopped(&self) -> Nanos {
        let t0 = xlsm_sim::now_nanos();
        loop {
            if !self.is_stopped() {
                return xlsm_sim::now_nanos() - t0;
            }
            self.stopped.wait();
        }
    }

    /// How long the writer of `num_bytes` must sleep under the current
    /// stall level. Returns 0 when not delayed.
    ///
    /// * `Delay` follows Algorithm 1's `DELAYWRITE` verbatim — note that a
    ///   back-to-back stream of small writes sleeps one full
    ///   `refill_interval` per group regardless of the rate, which is
    ///   exactly the paper's Eq. 2 near-stop behavior.
    /// * `GentleDelay` (the two-stage case study's stage 1) paces writes on
    ///   a smooth reservation timeline at the floored rate, with no
    ///   mandatory interval sleep.
    pub fn delay_for_write(&self, num_bytes: u64) -> Nanos {
        let mut st = self.state.lock();
        let rate = match st.level {
            StallLevel::Clear | StallLevel::Stop => return 0,
            StallLevel::Delay | StallLevel::GentleDelay { .. } => st.rate.max(1),
        };
        if matches!(st.level, StallLevel::GentleDelay { .. }) {
            let now = xlsm_sim::now_nanos();
            let needed = (num_bytes as u128 * 1_000_000_000 / rate as u128) as Nanos;
            let start = st.gentle_next.max(now);
            st.gentle_next = start + needed;
            return start - now;
        }
        let now = xlsm_sim::now_nanos();
        let time_slice = now.saturating_sub(st.last_refill);
        let bytes_refilled = (time_slice as u128 * rate as u128 / 1_000_000_000) as u64;
        if bytes_refilled > num_bytes && time_slice > REFILL_INTERVAL_NS {
            st.last_refill = now;
            return 0;
        }
        let single_ref = (REFILL_INTERVAL_NS as u128 * rate as u128 / 1_000_000_000) as u64;
        st.last_refill = now;
        if bytes_refilled + single_ref > num_bytes {
            REFILL_INTERVAL_NS
        } else {
            (num_bytes as u128 * 1_000_000_000 / rate as u128) as Nanos
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_sim::Runtime;

    fn sig(l0: usize, mems: usize, pending: u64) -> StallSignals {
        StallSignals {
            l0_files: l0,
            memtables: mems,
            pending_compaction_bytes: pending,
            compacted_bytes: 0,
        }
    }

    #[test]
    fn original_policy_thresholds() {
        let opts = DbOptions::default();
        let p = OriginalThrottlePolicy;
        assert_eq!(p.evaluate(&sig(0, 1, 0), &opts), StallLevel::Clear);
        assert_eq!(p.evaluate(&sig(19, 2, 0), &opts), StallLevel::Clear);
        assert_eq!(p.evaluate(&sig(20, 2, 0), &opts), StallLevel::Delay);
        assert_eq!(p.evaluate(&sig(36, 2, 0), &opts), StallLevel::Stop);
        assert_eq!(p.evaluate(&sig(0, 3, 0), &opts), StallLevel::Stop);
    }

    #[test]
    fn rate_adapts_with_compaction_progress() {
        Runtime::new().run(|| {
            let opts = DbOptions::default();
            let c = WriteController::new(&opts);
            let sig_p = |pending: u64, compacted: u64| StallSignals {
                l0_files: 21,
                memtables: 2,
                pending_compaction_bytes: pending,
                compacted_bytes: compacted,
            };
            c.update(&sig_p(100 << 20, 0), &opts); // enter Delay at init rate
            let r0 = c.snapshot().delayed_write_rate;
            assert_eq!(r0, opts.delayed_write_rate);
            // Processed 1 MiB while 100 MiB is pending → slow down.
            c.update(&sig_p(100 << 20, 1 << 20), &opts);
            let r1 = c.snapshot().delayed_write_rate;
            assert!((r1 as f64 - r0 as f64 * RATE_DEC).abs() < 2.0);
            // Processed 200 MiB more while only 1 KiB pending → speed up.
            c.update(&sig_p(1 << 10, 201 << 20), &opts);
            let r2 = c.snapshot().delayed_write_rate;
            assert!(r2 > r1);
            // Sustained backlog compounds down to the floor, never below.
            for i in 0..40u64 {
                c.update(&sig_p(100 << 20, (202 + i) << 20), &opts);
            }
            let floor = c.snapshot().delayed_write_rate;
            assert_eq!(floor, MIN_RATE, "sustained backlog hits the near-stop floor");
        });
    }

    #[test]
    fn delay_write_token_bucket() {
        Runtime::new().run(|| {
            let opts = DbOptions {
                delayed_write_rate: 1 << 20, // 1 MiB/s
                ..DbOptions::default()
            };
            let c = WriteController::new(&opts);
            c.update(&sig(20, 2, 0), &opts);
            // Small write relative to one refill: exactly one interval.
            let d = c.delay_for_write(1024);
            assert_eq!(d, REFILL_INTERVAL_NS);
            // Huge write: paced at num_bytes / rate.
            let d2 = c.delay_for_write(1 << 20);
            assert_eq!(d2, 1_000_000_000);
            // After enough virtual time passes, credit accrues and the next
            // small write passes free.
            xlsm_sim::sleep_nanos(REFILL_INTERVAL_NS * 4);
            let d3 = c.delay_for_write(128);
            assert_eq!(d3, 0);
        });
    }

    #[test]
    fn stop_blocks_until_cleared() {
        Runtime::new().run(|| {
            let opts = DbOptions::default();
            let c = std::sync::Arc::new(WriteController::new(&opts));
            c.update(&sig(36, 2, 0), &opts);
            let c2 = std::sync::Arc::clone(&c);
            let h = xlsm_sim::spawn("writer", move || c2.wait_while_stopped());
            xlsm_sim::sleep_nanos(5_000_000);
            let opts2 = DbOptions::default();
            c.update(&sig(10, 2, 0), &opts2);
            let waited = h.join();
            assert!(waited >= 5_000_000, "writer should have waited: {waited}");
            assert!(!c.is_stopped());
        });
    }

    #[test]
    fn gentle_delay_respects_floor() {
        Runtime::new().run(|| {
            let opts = DbOptions::default();
            let c = WriteController::new(&opts);
            let min_rate = 4 << 20;
            let gentle = StallSignals {
                l0_files: 20,
                memtables: 2,
                pending_compaction_bytes: 0,
                compacted_bytes: 0,
            };
            // Hand-roll a gentle policy by driving update with a custom policy.
            struct Gentle(u64);
            impl ThrottlePolicy for Gentle {
                fn evaluate(&self, s: &StallSignals, o: &DbOptions) -> StallLevel {
                    if s.l0_files >= o.level0_slowdown_writes_trigger {
                        StallLevel::GentleDelay { min_rate: self.0 }
                    } else {
                        StallLevel::Clear
                    }
                }
                fn name(&self) -> &'static str {
                    "gentle-test"
                }
            }
            let opts_g = DbOptions {
                throttle_policy: Arc::new(Gentle(min_rate)),
                ..DbOptions::default()
            };
            let cg = WriteController::new(&opts_g);
            cg.update(&gentle, &opts_g);
            // Drive the backlog up repeatedly: rate must not fall below floor.
            for i in 0..50 {
                cg.update(
                    &StallSignals {
                        l0_files: 20,
                        memtables: 2,
                        pending_compaction_bytes: 1 << 30,
                        compacted_bytes: 1000 * (i + 1),
                    },
                    &opts_g,
                );
            }
            assert!(cg.snapshot().delayed_write_rate >= min_rate);
            // The plain controller (full Delay) would have gone far lower.
            c.update(&gentle, &opts);
            for i in 0..50 {
                c.update(
                    &StallSignals {
                        l0_files: 20,
                        memtables: 2,
                        pending_compaction_bytes: 1 << 30,
                        compacted_bytes: 1000 * (i + 1),
                    },
                    &opts,
                );
            }
            assert!(c.snapshot().delayed_write_rate < min_rate);
        });
    }
}
