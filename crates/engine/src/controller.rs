//! The write controller — the paper's **Algorithm 1** (write control
//! process) plus the stall-condition evaluation that feeds it.
//!
//! RocksDB slows incoming writes when flush/compaction falls behind:
//!
//! * too many memtables → **stop**;
//! * L0 file count ≥ `level0_stop_writes_trigger` → **stop**;
//! * L0 file count ≥ `level0_slowdown_writes_trigger` → **delay**, paced by
//!   `delayed_write_rate`, which adapts by ×0.8 / ×1.25 depending on whether
//!   compaction is keeping up (Algorithm 1 lines 7–11);
//! * each delayed write sleeps per `DELAYWRITE` (Algorithm 1 lines 17–31)
//!   with `refill_interval = 1024 µs`.
//!
//! The *policy* deciding which stall level applies is pluggable via
//! [`ThrottlePolicy`]; the paper's case study V-A installs a two-stage
//! policy (see `xlsm-core`) without touching this mechanism.

use crate::options::DbOptions;
use crate::stall::{StallAccounting, StallCause, StallEvent};
use std::fmt;
use std::sync::Arc;
use xlsm_sim::sync::WaitSet;
use xlsm_sim::Nanos;

/// Refill interval of Algorithm 1 (1024 µs).
pub const REFILL_INTERVAL_NS: Nanos = 1_024_000;
/// Rate decrease factor when compaction is keeping up poorly.
pub const RATE_DEC: f64 = 0.8;
/// Rate increase factor when compaction catches up.
pub const RATE_INC: f64 = 1.25;
/// Floor for the adaptive rate (bytes/s).
pub const MIN_RATE: u64 = 1 << 20;

/// Inputs to stall evaluation, gathered from the LSM state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallSignals {
    /// Current number of Level-0 files.
    pub l0_files: usize,
    /// Memtables counted against `max_write_buffer_number`: the immutables
    /// plus the mutable one once it is full (switching it would then exceed
    /// the budget). Writes stop when this *reaches* the configured maximum,
    /// matching RocksDB's unflushed-memtable stop condition.
    pub memtables: usize,
    /// Estimated bytes awaiting compaction (Algorithm 1's `Esti_Bytes`).
    pub pending_compaction_bytes: u64,
    /// Cumulative bytes processed by flush + compaction (the source of
    /// Algorithm 1's per-interval `Prev_Bytes`).
    pub compacted_bytes: u64,
    /// Background-I/O budget currently in effect (bytes per virtual second,
    /// 0 = unthrottled — see [`crate::scheduler::BgIoLimiter`]). The stock
    /// policies ignore it; a custom [`ThrottlePolicy`] can use it to
    /// coordinate foreground pacing with the background budget instead of
    /// reacting to L0 shape alone.
    pub bg_io_budget_bytes_per_sec: u64,
}

/// The stall level a policy selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallLevel {
    /// No throttling.
    Clear,
    /// Rate-limited, but the adaptive rate is floored at `min_rate`
    /// (stage 1 of the two-stage case study).
    GentleDelay {
        /// Lowest allowed write rate in bytes/s.
        min_rate: u64,
    },
    /// Full Algorithm 1 adaptive delay.
    Delay,
    /// Writes blocked until conditions clear.
    Stop,
}

impl StallLevel {
    /// Short label for reports and stall timelines.
    pub fn name(&self) -> &'static str {
        match self {
            StallLevel::Clear => "clear",
            StallLevel::GentleDelay { .. } => "gentle-delay",
            StallLevel::Delay => "delay",
            StallLevel::Stop => "stop",
        }
    }
}

/// Chooses a [`StallLevel`] from the signals. Implementations must be cheap
/// and non-blocking.
pub trait ThrottlePolicy: Send + Sync {
    /// Evaluates the current stall level.
    fn evaluate(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel;
    /// Short name for reports.
    fn name(&self) -> &'static str;
}

impl fmt::Debug for dyn ThrottlePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThrottlePolicy({})", self.name())
    }
}

/// RocksDB 5.17's original single-stage policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct OriginalThrottlePolicy;

impl ThrottlePolicy for OriginalThrottlePolicy {
    fn evaluate(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel {
        if sig.memtables >= opts.max_write_buffer_number {
            return StallLevel::Stop;
        }
        if sig.l0_files >= opts.level0_stop_writes_trigger {
            return StallLevel::Stop;
        }
        if sig.l0_files >= opts.level0_slowdown_writes_trigger {
            return StallLevel::Delay;
        }
        StallLevel::Clear
    }

    fn name(&self) -> &'static str {
        "original"
    }
}

/// A policy that never throttles (ablation baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoThrottlePolicy;

impl ThrottlePolicy for NoThrottlePolicy {
    fn evaluate(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel {
        // Memtable stop cannot be disabled: the write path has nowhere to
        // put data without a mutable memtable.
        if sig.memtables >= opts.max_write_buffer_number {
            StallLevel::Stop
        } else {
            StallLevel::Clear
        }
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

struct CtlState {
    level: StallLevel,
    rate: u64,
    last_refill: Nanos,
    /// Reservation timeline for the smooth (stage-1) pacer.
    gentle_next: Nanos,
    prev_compacted: u64,
    /// When the current level was entered (for event durations).
    level_since: Nanos,
    /// Transition sink; attached by the database after open.
    sink: Option<Arc<StallAccounting>>,
}

/// Snapshot of controller state, for analysis and figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControllerSnapshot {
    /// Current stall level.
    pub level: StallLevel,
    /// Current adaptive `delayed_write_rate` in bytes/s.
    pub delayed_write_rate: u64,
}

/// The write controller instance owned by a database.
pub struct WriteController {
    policy: Arc<dyn ThrottlePolicy>,
    init_rate: u64,
    state: parking_lot::Mutex<CtlState>,
    stopped: WaitSet,
    /// When set, stopped writers pass through the stall wait immediately
    /// (the database went read-only — the stall will never clear).
    released: std::sync::atomic::AtomicBool,
}

impl fmt::Debug for WriteController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("WriteController")
            .field("policy", &self.policy.name())
            .field("level", &s.level)
            .field("rate", &s.rate)
            .finish()
    }
}

impl WriteController {
    /// Creates a controller with the policy and initial rate from `opts`.
    pub fn new(opts: &DbOptions) -> WriteController {
        WriteController {
            policy: Arc::clone(&opts.throttle_policy),
            init_rate: opts.delayed_write_rate,
            state: parking_lot::Mutex::new(CtlState {
                level: StallLevel::Clear,
                rate: opts.delayed_write_rate,
                last_refill: 0,
                gentle_next: 0,
                prev_compacted: 0,
                level_since: 0,
                sink: None,
            }),
            stopped: WaitSet::new("write-stopped"),
            released: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Forces writers out of (or back into) the stopped-wait: used when
    /// the database enters read-only mode, where the stall condition will
    /// never clear and blocked writers must observe the failure instead.
    pub fn force_release(&self, on: bool) {
        self.released
            .store(on, std::sync::atomic::Ordering::Relaxed);
        if on {
            self.stopped.notify_all();
        }
    }

    /// Attaches the stall registry that receives a [`StallEvent`] on every
    /// level transition (and on rate adaptations while delayed).
    pub fn attach_accounting(&self, sink: Arc<StallAccounting>) {
        self.state.lock().sink = Some(sink);
    }

    /// Re-evaluates stall conditions; called whenever LSM shape changes
    /// (memtable switch, flush installed, compaction installed).
    ///
    /// Returns the new level.
    pub fn update(&self, sig: &StallSignals, opts: &DbOptions) -> StallLevel {
        let new_level = self.policy.evaluate(sig, opts);
        let mut wake = false;
        let mut event = None;
        {
            let mut st = self.state.lock();
            let prev_level = st.level;
            let prev_rate = st.rate;
            let was_delay = matches!(st.level, StallLevel::Delay | StallLevel::GentleDelay { .. });
            let now_delay = matches!(
                new_level,
                StallLevel::Delay | StallLevel::GentleDelay { .. }
            );
            match new_level {
                StallLevel::Delay | StallLevel::GentleDelay { .. } => {
                    if was_delay {
                        // Algorithm 1 lines 7–11: Prev_Bytes (processed
                        // since the previous interval) vs. Esti_Bytes (the
                        // outstanding backlog). While compaction processes
                        // less than the backlog, keep slowing down — this
                        // is what compounds the rate toward the near-stop
                        // floor during bursts.
                        let prev_bytes = sig.compacted_bytes.saturating_sub(st.prev_compacted);
                        let esti_bytes = sig.pending_compaction_bytes;
                        if prev_bytes <= esti_bytes {
                            st.rate = ((st.rate as f64) * RATE_DEC) as u64;
                        } else {
                            st.rate = ((st.rate as f64) * RATE_INC) as u64;
                        }
                    } else {
                        st.rate = self.init_rate;
                        // A fresh delay episode starts with an empty token
                        // bucket: credit must not carry over from the
                        // unthrottled period before it.
                        st.last_refill = xlsm_sim::now_nanos();
                    }
                    let floor = match new_level {
                        StallLevel::GentleDelay { min_rate } => min_rate.max(MIN_RATE),
                        _ => MIN_RATE,
                    };
                    st.rate = st.rate.clamp(floor, self.init_rate.max(floor));
                }
                StallLevel::Clear | StallLevel::Stop => {}
            }
            if matches!(st.level, StallLevel::Stop) && !matches!(new_level, StallLevel::Stop) {
                wake = true;
            }
            st.prev_compacted = sig.compacted_bytes;
            st.level = new_level;
            if let Some(sink) = st.sink.clone() {
                let level_changed = prev_level != new_level;
                // Rate adaptations while delayed are transitions too: they
                // are what the paper's Fig. 6 rate timeline plots.
                if level_changed || (now_delay && st.rate != prev_rate) {
                    let now = xlsm_sim::now_nanos();
                    event = Some((
                        sink,
                        StallEvent {
                            at: now,
                            cause: cause_of(new_level, sig, opts),
                            level: new_level,
                            prev_level,
                            duration: now.saturating_sub(st.level_since),
                            l0_files: sig.l0_files,
                            memtables: sig.memtables,
                            rate: st.rate,
                        },
                    ));
                    if level_changed {
                        st.level_since = now;
                    }
                }
            }
        }
        if let Some((sink, ev)) = event {
            sink.record_event(ev);
        }
        if wake {
            self.stopped.notify_all();
        }
        new_level
    }

    /// Current state.
    pub fn snapshot(&self) -> ControllerSnapshot {
        let st = self.state.lock();
        ControllerSnapshot {
            level: st.level,
            delayed_write_rate: st.rate,
        }
    }

    /// Whether writes are currently fully stopped.
    pub fn is_stopped(&self) -> bool {
        matches!(self.state.lock().level, StallLevel::Stop)
    }

    /// Blocks the caller while writes are stopped. Returns the nanoseconds
    /// spent waiting.
    pub fn wait_while_stopped(&self) -> Nanos {
        let t0 = xlsm_sim::now_nanos();
        loop {
            if !self.is_stopped() || self.released.load(std::sync::atomic::Ordering::Relaxed) {
                return xlsm_sim::now_nanos() - t0;
            }
            self.stopped.wait();
        }
    }

    /// How long the writer of `num_bytes` must sleep under the current
    /// stall level. Returns 0 when not delayed.
    ///
    /// * `Delay` follows Algorithm 1's `DELAYWRITE` verbatim — note that a
    ///   back-to-back stream of small writes sleeps one full
    ///   `refill_interval` per group regardless of the rate, which is
    ///   exactly the paper's Eq. 2 near-stop behavior.
    /// * `GentleDelay` (the two-stage case study's stage 1) paces writes on
    ///   a smooth reservation timeline at the floored rate, with no
    ///   mandatory interval sleep.
    pub fn delay_for_write(&self, num_bytes: u64) -> Nanos {
        let mut st = self.state.lock();
        let rate = match st.level {
            StallLevel::Clear | StallLevel::Stop => return 0,
            StallLevel::Delay | StallLevel::GentleDelay { .. } => st.rate.max(1),
        };
        if matches!(st.level, StallLevel::GentleDelay { .. }) {
            let now = xlsm_sim::now_nanos();
            let needed = (num_bytes as u128 * 1_000_000_000 / rate as u128) as Nanos;
            let start = st.gentle_next.max(now);
            st.gentle_next = start + needed;
            return start - now;
        }
        let now = xlsm_sim::now_nanos();
        let time_slice = now.saturating_sub(st.last_refill);
        let bytes_refilled = (time_slice as u128 * rate as u128 / 1_000_000_000) as u64;
        if bytes_refilled > num_bytes && time_slice > REFILL_INTERVAL_NS {
            // Free pass: consume only this write's share of the accrued
            // credit; the surplus stays banked so a burst of writes after a
            // quiet period is not throttled below `delayed_write_rate`.
            st.last_refill += (num_bytes as u128 * 1_000_000_000 / rate as u128) as Nanos;
            return 0;
        }
        let single_ref = (REFILL_INTERVAL_NS as u128 * rate as u128 / 1_000_000_000) as u64;
        st.last_refill = now;
        if bytes_refilled + single_ref > num_bytes {
            REFILL_INTERVAL_NS
        } else {
            (num_bytes as u128 * 1_000_000_000 / rate as u128) as Nanos
        }
    }
}

/// Classifies the dominant reason for `level` given the triggering signals.
fn cause_of(level: StallLevel, sig: &StallSignals, opts: &DbOptions) -> StallCause {
    match level {
        StallLevel::Stop => {
            if sig.memtables >= opts.max_write_buffer_number {
                StallCause::MemtableLimit
            } else {
                StallCause::L0Stop
            }
        }
        StallLevel::Delay | StallLevel::GentleDelay { .. } => StallCause::L0Slowdown,
        StallLevel::Clear => StallCause::Cleared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_sim::Runtime;

    fn sig(l0: usize, mems: usize, pending: u64) -> StallSignals {
        StallSignals {
            l0_files: l0,
            memtables: mems,
            pending_compaction_bytes: pending,
            ..StallSignals::default()
        }
    }

    #[test]
    fn original_policy_thresholds() {
        let opts = DbOptions::default(); // max_write_buffer_number = 2
        let p = OriginalThrottlePolicy;
        assert_eq!(p.evaluate(&sig(0, 0, 0), &opts), StallLevel::Clear);
        assert_eq!(p.evaluate(&sig(19, 1, 0), &opts), StallLevel::Clear);
        assert_eq!(p.evaluate(&sig(20, 1, 0), &opts), StallLevel::Delay);
        assert_eq!(p.evaluate(&sig(36, 1, 0), &opts), StallLevel::Stop);
        // RocksDB stops when the unflushed memtable count *reaches* the
        // maximum, not only once it exceeds it.
        assert_eq!(p.evaluate(&sig(0, 2, 0), &opts), StallLevel::Stop);
        assert_eq!(p.evaluate(&sig(0, 3, 0), &opts), StallLevel::Stop);
    }

    #[test]
    fn rate_adapts_with_compaction_progress() {
        Runtime::new().run(|| {
            let opts = DbOptions::default();
            let c = WriteController::new(&opts);
            let sig_p = |pending: u64, compacted: u64| StallSignals {
                l0_files: 21,
                memtables: 1,
                pending_compaction_bytes: pending,
                compacted_bytes: compacted,
                ..StallSignals::default()
            };
            c.update(&sig_p(100 << 20, 0), &opts); // enter Delay at init rate
            let r0 = c.snapshot().delayed_write_rate;
            assert_eq!(r0, opts.delayed_write_rate);
            // Processed 1 MiB while 100 MiB is pending → slow down.
            c.update(&sig_p(100 << 20, 1 << 20), &opts);
            let r1 = c.snapshot().delayed_write_rate;
            assert!((r1 as f64 - r0 as f64 * RATE_DEC).abs() < 2.0);
            // Processed 200 MiB more while only 1 KiB pending → speed up.
            c.update(&sig_p(1 << 10, 201 << 20), &opts);
            let r2 = c.snapshot().delayed_write_rate;
            assert!(r2 > r1);
            // Sustained backlog compounds down to the floor, never below.
            for i in 0..40u64 {
                c.update(&sig_p(100 << 20, (202 + i) << 20), &opts);
            }
            let floor = c.snapshot().delayed_write_rate;
            assert_eq!(
                floor, MIN_RATE,
                "sustained backlog hits the near-stop floor"
            );
        });
    }

    #[test]
    fn delay_write_token_bucket() {
        Runtime::new().run(|| {
            let opts = DbOptions {
                delayed_write_rate: 1 << 20, // 1 MiB/s
                ..DbOptions::default()
            };
            let c = WriteController::new(&opts);
            c.update(&sig(20, 1, 0), &opts);
            // Small write relative to one refill: exactly one interval.
            let d = c.delay_for_write(1024);
            assert_eq!(d, REFILL_INTERVAL_NS);
            // Huge write: paced at num_bytes / rate.
            let d2 = c.delay_for_write(1 << 20);
            assert_eq!(d2, 1_000_000_000);
            // After enough virtual time passes, credit accrues and the next
            // small write passes free.
            xlsm_sim::sleep_nanos(REFILL_INTERVAL_NS * 4);
            let d3 = c.delay_for_write(128);
            assert_eq!(d3, 0);
        });
    }

    #[test]
    fn delay_credit_carries_across_free_passes() {
        // Regression for the free-pass branch discarding surplus credit:
        // it used to reset `last_refill = now`, so only the FIRST write of
        // a post-idle burst passed free and the rest were charged a full
        // refill interval each, throttling the effective rate below the
        // configured `delayed_write_rate`.
        Runtime::new().run(|| {
            let rate = 1u64 << 20; // 1 MiB/s
            let opts = DbOptions {
                delayed_write_rate: rate,
                ..DbOptions::default()
            };
            let c = WriteController::new(&opts);
            c.update(&sig(20, 1, 0), &opts);
            // Accrue ~100 ms of credit (≈102400 bytes at 1 MiB/s).
            xlsm_sim::sleep_nanos(100_000_000);
            let t0 = xlsm_sim::now_nanos();
            let mut bytes = 0u64;
            for _ in 0..8 {
                let nb = 8 << 10; // 64 KiB total, well inside the credit
                let d = c.delay_for_write(nb);
                assert_eq!(d, 0, "burst within accrued credit must pass free");
                xlsm_sim::sleep_nanos(d);
                bytes += nb;
            }
            let elapsed = xlsm_sim::now_nanos() - t0;
            // Effective throughput of the burst window must be at least the
            // configured rate (the whole burst drains banked credit).
            let ideal_ns = bytes * 1_000_000_000 / rate;
            assert!(
                elapsed < ideal_ns,
                "burst should beat the configured rate using banked credit: \
                 elapsed={elapsed}ns ideal={ideal_ns}ns"
            );
            // The credit is bounded: once the bank is drained, pacing
            // resumes (no unlimited debt-free writing).
            let mut paid = 0u64;
            for _ in 0..8 {
                paid += c.delay_for_write(8 << 10);
            }
            assert!(paid > 0, "drained bucket must resume pacing");
        });
    }

    #[test]
    fn fresh_delay_episode_starts_without_credit() {
        // Entering Delay after a long unthrottled stretch must not grant
        // phantom credit accrued while the controller was Clear.
        Runtime::new().run(|| {
            let opts = DbOptions {
                delayed_write_rate: 1 << 20,
                ..DbOptions::default()
            };
            let c = WriteController::new(&opts);
            xlsm_sim::sleep_nanos(10_000_000_000); // 10 s idle while Clear
            c.update(&sig(20, 1, 0), &opts);
            let d = c.delay_for_write(1024);
            assert_eq!(
                d, REFILL_INTERVAL_NS,
                "first delayed write of a fresh episode is paced"
            );
        });
    }

    #[test]
    fn transitions_emit_stall_events() {
        Runtime::new().run(|| {
            use crate::stall::{StallAccounting, StallCause};
            let opts = DbOptions::default();
            let c = WriteController::new(&opts);
            let acc = Arc::new(StallAccounting::default());
            c.attach_accounting(Arc::clone(&acc));
            xlsm_sim::sleep_nanos(1_000);
            c.update(&sig(20, 1, 0), &opts); // Clear -> Delay
            xlsm_sim::sleep_nanos(2_000);
            c.update(&sig(36, 1, 0), &opts); // Delay -> Stop (L0)
            xlsm_sim::sleep_nanos(3_000);
            c.update(&sig(0, 2, 0), &opts); // Stop (memtable limit)
            c.update(&sig(0, 0, 0), &opts); // -> Clear
            c.update(&sig(0, 0, 0), &opts); // no transition: no event
            let events = acc.drain_events();
            assert_eq!(events.len(), 3, "one event per transition: {events:?}");
            assert_eq!(events[0].level, StallLevel::Delay);
            assert_eq!(events[0].prev_level, StallLevel::Clear);
            assert_eq!(events[0].cause, StallCause::L0Slowdown);
            assert_eq!(events[0].at, 1_000);
            assert_eq!(events[0].duration, 1_000);
            assert_eq!(events[0].rate, opts.delayed_write_rate);
            assert_eq!(events[1].level, StallLevel::Stop);
            assert_eq!(events[1].cause, StallCause::L0Stop);
            assert_eq!(events[1].duration, 2_000, "time spent in Delay");
            assert_eq!(events[1].l0_files, 36);
            // Stop -> Stop with a different trigger is not a level change
            // and not a rate change, so only the final clear is logged.
            assert_eq!(events[2].level, StallLevel::Clear);
            assert_eq!(events[2].cause, StallCause::Cleared);
            assert_eq!(events[2].duration, 3_000, "time spent in Stop");
        });
    }

    #[test]
    fn rate_adaptation_emits_events_while_delayed() {
        Runtime::new().run(|| {
            use crate::stall::StallAccounting;
            let opts = DbOptions::default();
            let c = WriteController::new(&opts);
            let acc = Arc::new(StallAccounting::default());
            c.attach_accounting(Arc::clone(&acc));
            let sig_p = |pending: u64, compacted: u64| StallSignals {
                l0_files: 21,
                memtables: 1,
                pending_compaction_bytes: pending,
                compacted_bytes: compacted,
                ..StallSignals::default()
            };
            c.update(&sig_p(100 << 20, 0), &opts); // enter Delay
            c.update(&sig_p(100 << 20, 1 << 20), &opts); // rate ×0.8
            let events = acc.drain_events();
            assert_eq!(events.len(), 2);
            assert_eq!(events[1].level, StallLevel::Delay);
            assert_eq!(events[1].prev_level, StallLevel::Delay);
            assert!(
                events[1].rate < events[0].rate,
                "adaptation event carries the new rate: {events:?}"
            );
        });
    }

    #[test]
    fn stop_blocks_until_cleared() {
        Runtime::new().run(|| {
            let opts = DbOptions::default();
            let c = std::sync::Arc::new(WriteController::new(&opts));
            c.update(&sig(36, 1, 0), &opts);
            let c2 = std::sync::Arc::clone(&c);
            let h = xlsm_sim::spawn("writer", move || c2.wait_while_stopped());
            xlsm_sim::sleep_nanos(5_000_000);
            let opts2 = DbOptions::default();
            c.update(&sig(10, 1, 0), &opts2);
            let waited = h.join();
            assert!(waited >= 5_000_000, "writer should have waited: {waited}");
            assert!(!c.is_stopped());
        });
    }

    #[test]
    fn gentle_delay_respects_floor() {
        Runtime::new().run(|| {
            let opts = DbOptions::default();
            let c = WriteController::new(&opts);
            let min_rate = 4 << 20;
            let gentle = StallSignals {
                l0_files: 20,
                memtables: 1,
                ..StallSignals::default()
            };
            // Hand-roll a gentle policy by driving update with a custom policy.
            struct Gentle(u64);
            impl ThrottlePolicy for Gentle {
                fn evaluate(&self, s: &StallSignals, o: &DbOptions) -> StallLevel {
                    if s.l0_files >= o.level0_slowdown_writes_trigger {
                        StallLevel::GentleDelay { min_rate: self.0 }
                    } else {
                        StallLevel::Clear
                    }
                }
                fn name(&self) -> &'static str {
                    "gentle-test"
                }
            }
            let opts_g = DbOptions {
                throttle_policy: Arc::new(Gentle(min_rate)),
                ..DbOptions::default()
            };
            let cg = WriteController::new(&opts_g);
            cg.update(&gentle, &opts_g);
            // Drive the backlog up repeatedly: rate must not fall below floor.
            for i in 0..50 {
                cg.update(
                    &StallSignals {
                        l0_files: 20,
                        memtables: 1,
                        pending_compaction_bytes: 1 << 30,
                        compacted_bytes: 1000 * (i + 1),
                        ..StallSignals::default()
                    },
                    &opts_g,
                );
            }
            assert!(cg.snapshot().delayed_write_rate >= min_rate);
            // The plain controller (full Delay) would have gone far lower.
            c.update(&gentle, &opts);
            for i in 0..50 {
                c.update(
                    &StallSignals {
                        l0_files: 20,
                        memtables: 1,
                        pending_compaction_bytes: 1 << 30,
                        compacted_bytes: 1000 * (i + 1),
                        ..StallSignals::default()
                    },
                    &opts,
                );
            }
            assert!(c.snapshot().delayed_write_rate < min_rate);
        });
    }
}
