//! Calibrated CPU cost model.
//!
//! Because the engine executes under a virtual clock, pure-CPU work (skiplist
//! hops, block decoding, key comparisons) must be charged explicitly. The
//! constants below are anchored to the paper's own software-cost
//! measurements:
//!
//! * a Level-0 table lookup costs ≈ 8.5 µs in a 32 MB file and ≈ 9.7 µs in a
//!   256 MB file (Section IV-B) — i.e. a large fixed software cost plus a
//!   slowly growing size-dependent term;
//! * the median write (memtable insert + WAL buffer append) is ≈ 15 µs
//!   (Section IV-A's throughput model);
//! * memtable size increases WRITE tail latency noticeably from 64 MB to
//!   256 MB (Fig. 12), implying per-hop costs grow with structure size
//!   (cache misses), not just `O(log N)` hop counts.
//!
//! All functions return nanoseconds; callers charge them with
//! [`xlsm_sim::sleep_nanos`].

/// Fixed cost of entering the write path (batch setup, sequence assignment).
pub const WRITE_SETUP_NS: u64 = 1_500;

/// Fixed cost of a Get call (key hashing, version pinning).
pub const GET_SETUP_NS: u64 = 1_200;

/// Cost of appending one record to the WAL's in-memory buffer, per KiB.
pub const WAL_ENCODE_NS_PER_KIB: u64 = 350;

/// Per-entry cost of computing or verifying per-key-value protection info
/// (`protection_bytes_per_key`). A software CRC32-C over a ~100-byte entry
/// plus framing; RocksDB measures the feature at a few percent of write-path
/// CPU, which at a ~15 µs median write is a few hundred ns per entry.
pub const KV_PROTECTION_NS: u64 = 250;

/// Base cost of one skiplist hop in a small structure.
pub const SKIPLIST_HOP_BASE_NS: u64 = 60;

/// Extra per-hop cost per doubling of structure size above 64 KiB
/// (cache-miss growth).
pub const SKIPLIST_HOP_GROWTH_NS: u64 = 18;

/// Arena allocation + node linking for an insert.
pub const SKIPLIST_INSERT_BASE_NS: u64 = 400;

/// Decoding one SST block, per KiB.
pub const BLOCK_DECODE_NS_PER_KIB: u64 = 220;

/// Decompressing one SST block, per KiB of *compressed* payload. Cheap
/// codecs (LZ4-class; the engine's RLE stands in for them) decompress at
/// multiple GB/s, so the per-byte cost is well below block decoding.
pub const BLOCK_DECOMPRESS_NS_PER_KIB: u64 = 64;

/// One table-cache lookup under the shard lock: hash, probe, LRU touch.
/// This is the critical section `table_cache_shards` exists to split — at
/// `multi_get` fan-out every probe thread passes through it.
pub const TABLE_CACHE_FIND_NS: u64 = 350;

/// One key comparison during binary search (index or restart array).
pub const SEARCH_CMP_NS: u64 = 55;

/// Checking a bloom filter.
pub const BLOOM_CHECK_NS: u64 = 200;

/// Fixed per-SST-file overhead for a point lookup (table handle, index
/// setup). Dominates the paper's per-L0-file cost. Charged only once a
/// probe survives the table's filter blocks: those live with the open
/// reader, so a bloom rejection skips this cost entirely.
pub const TABLE_LOOKUP_BASE_NS: u64 = 2_600;

/// Per-entry cost while merging during compaction/flush: merge-heap
/// comparisons, block building, checksumming, property collection. Real
/// RocksDB compactions run at roughly 100–300 MB/s of CPU per thread; at
/// ~1 KiB entries that is ≈ 2.5 µs per entry.
pub const MERGE_ENTRY_NS: u64 = 3_500;

/// Per-entry cost while flushing a memtable to an L0 SST. Cheaper than a
/// compaction entry: single sorted input, no merge heap, no tombstone
/// bookkeeping (RocksDB flushes run at several hundred MB/s).
pub const FLUSH_ENTRY_NS: u64 = 1_200;

/// Integer log2 (floor), with `log2ceil(0|1) = 0`.
pub fn log2_floor(v: u64) -> u64 {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as u64
    }
}

/// Cost of one skiplist *hop* in a structure currently holding
/// `approx_bytes`.
pub fn skiplist_hop_ns(approx_bytes: u64) -> u64 {
    let doublings = log2_floor((approx_bytes / (64 << 10)).max(1));
    SKIPLIST_HOP_BASE_NS + SKIPLIST_HOP_GROWTH_NS * doublings
}

/// Cost of a skiplist search among `entries` entries occupying
/// `approx_bytes`.
pub fn skiplist_search_ns(entries: u64, approx_bytes: u64) -> u64 {
    (log2_floor(entries.max(2)) + 1) * skiplist_hop_ns(approx_bytes)
}

/// Cost of a skiplist insert (search + node allocation + linking).
pub fn skiplist_insert_ns(entries: u64, approx_bytes: u64) -> u64 {
    skiplist_search_ns(entries, approx_bytes) + SKIPLIST_INSERT_BASE_NS
}

/// Cost of binary search over `n` sorted entries.
pub fn binary_search_ns(n: u64) -> u64 {
    (log2_floor(n.max(2)) + 1) * SEARCH_CMP_NS
}

/// Cost of decoding a block of `bytes` bytes.
pub fn block_decode_ns(bytes: usize) -> u64 {
    (bytes as u64 * BLOCK_DECODE_NS_PER_KIB) / 1024
}

/// Cost of decompressing a block whose compressed payload is `bytes` bytes.
pub fn block_decompress_ns(bytes: usize) -> u64 {
    (bytes as u64 * BLOCK_DECOMPRESS_NS_PER_KIB) / 1024 + 150
}

/// Cost of encoding `bytes` of WAL payload.
pub fn wal_encode_ns(bytes: usize) -> u64 {
    (bytes as u64 * WAL_ENCODE_NS_PER_KIB) / 1024 + 300
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_floor_values() {
        assert_eq!(log2_floor(0), 0);
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(2), 1);
        assert_eq!(log2_floor(3), 1);
        assert_eq!(log2_floor(1024), 10);
    }

    #[test]
    fn hop_cost_grows_with_size() {
        let small = skiplist_hop_ns(64 << 10);
        let large = skiplist_hop_ns(256 << 20);
        assert!(large > small);
        // 256 MB = 12 doublings above 64 KiB.
        assert_eq!(large, SKIPLIST_HOP_BASE_NS + 12 * SKIPLIST_HOP_GROWTH_NS);
    }

    #[test]
    fn insert_cost_monotone_in_entries_and_bytes() {
        let a = skiplist_insert_ns(1_000, 1 << 20);
        let b = skiplist_insert_ns(100_000, 1 << 20);
        let c = skiplist_insert_ns(100_000, 256 << 20);
        assert!(a < b && b < c);
    }

    #[test]
    fn paper_l0_lookup_anchor() {
        // One L0 table probe (no bloom, index + one cached block):
        // base + index search (~5 cmps) + 4 KiB decode + restart search.
        let cost = TABLE_LOOKUP_BASE_NS
            + binary_search_ns(32)
            + block_decode_ns(4096)
            + binary_search_ns(16);
        // Paper anchor: ≈ 8.5 µs including the page-cache read (~2 µs in
        // simfs) and memtable/bloom bits; CPU share should land ≈ 3.5–5 µs.
        assert!(
            (3_000..6_500).contains(&cost),
            "L0 probe CPU cost out of calibration: {cost} ns"
        );
    }
}
