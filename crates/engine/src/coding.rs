//! Varint/fixed integer and length-prefixed slice encoding (LevelDB style).

/// Appends a little-endian u32.
pub fn put_fixed32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_fixed64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian u32 at `off`.
///
/// # Panics
///
/// Panics if the slice is too short.
pub fn get_fixed32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(data[off..off + 4].try_into().unwrap())
}

/// Reads a little-endian u64 at `off`.
///
/// # Panics
///
/// Panics if the slice is too short.
pub fn get_fixed64(data: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(data[off..off + 8].try_into().unwrap())
}

/// Appends a varint-encoded u64.
pub fn put_varint64(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decodes a varint u64 at `*off`, advancing the offset.
///
/// Returns `None` on truncation or overlong encodings.
pub fn get_varint64(data: &[u8], off: &mut usize) -> Option<u64> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    loop {
        if shift > 63 || *off >= data.len() {
            return None;
        }
        let byte = data[*off];
        *off += 1;
        result |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
}

/// Appends a varint length followed by the bytes.
pub fn put_length_prefixed(out: &mut Vec<u8>, data: &[u8]) {
    put_varint64(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Decodes a length-prefixed slice at `*off`, advancing the offset.
pub fn get_length_prefixed<'a>(data: &'a [u8], off: &mut usize) -> Option<&'a [u8]> {
    let len = get_varint64(data, off)? as usize;
    if *off + len > data.len() {
        return None;
    }
    let s = &data[*off..*off + len];
    *off += len;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xDEAD_BEEF);
        put_fixed64(&mut buf, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_fixed32(&buf, 0), 0xDEAD_BEEF);
        assert_eq!(get_fixed64(&buf, 4), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let mut off = 0;
            assert_eq!(get_varint64(&buf, &mut off), Some(v));
            assert_eq!(off, buf.len());
        }
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        let mut off = 0;
        assert_eq!(get_varint64(&buf[..buf.len() - 1], &mut off), None);
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"alpha");
        put_length_prefixed(&mut buf, b"");
        put_length_prefixed(&mut buf, b"omega");
        let mut off = 0;
        assert_eq!(get_length_prefixed(&buf, &mut off), Some(&b"alpha"[..]));
        assert_eq!(get_length_prefixed(&buf, &mut off), Some(&b""[..]));
        assert_eq!(get_length_prefixed(&buf, &mut off), Some(&b"omega"[..]));
        assert_eq!(get_length_prefixed(&buf, &mut off), None);
    }

    proptest! {
        #[test]
        fn varint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let mut off = 0;
            prop_assert_eq!(get_varint64(&buf, &mut off), Some(v));
        }

        #[test]
        fn slices_roundtrip(items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..20)) {
            let mut buf = Vec::new();
            for item in &items {
                put_length_prefixed(&mut buf, item);
            }
            let mut off = 0;
            for item in &items {
                prop_assert_eq!(get_length_prefixed(&buf, &mut off), Some(&item[..]));
            }
        }
    }
}
