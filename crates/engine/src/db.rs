//! The database: open/recover, read & write paths, background flush and
//! compaction, shutdown.

use crate::batch::WriteBatch;
use crate::bgerror::{BackgroundOp, ErrorHandler, ErrorSeverity};
use crate::cache::BlockCache;
use crate::compaction::{pick_compaction, run_compaction, CompactionCursors};
use crate::controller::{StallSignals, WriteController};
use crate::costs;
use crate::error::{DbError, DbResult};
use crate::integrity;
use crate::iterator::{DbIterator, InternalIterator, LevelIterator, MergingIterator};
use crate::memtable::MemTable;
use crate::options::{DbOptions, WalRecoveryMode};
use crate::scheduler::{BgIoLimiter, BgIoPriority};
use crate::sst::{
    sst_file_name, verify_table_file, TableBuilder, TableOptions, TableProbe, TableReader,
};
use crate::stall::PreprocessStalls;
use crate::stats::{DbStats, Metrics, Ticker};
use crate::types::{self, SequenceNumber, ValueType};
use crate::version::{FileMetaData, Version, VersionEdit, VersionSet};
use crate::wal::{read_wal, scan_wal, wal_file_name, WalWriter};
use crate::write::{WriteBackend, WriteQueue};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use xlsm_sim::sync::{channel, Receiver, Semaphore, Sender};
use xlsm_sim::JoinHandle;
use xlsm_simfs::{FsError, SimFs};

// ---------------------------------------------------------------------------
// Table cache
// ---------------------------------------------------------------------------

/// LRU state for the open-reader map: recency is a logical tick with a
/// lazily-invalidated queue, mirroring the block-cache shards so eviction
/// stays deterministic.
struct ReaderMap {
    map: std::collections::HashMap<u64, (Arc<TableReader>, u64)>,
    queue: std::collections::VecDeque<(u64, u64)>,
    tick: u64,
    /// Maximum cached readers (`0` = unbounded).
    cap: usize,
}

impl ReaderMap {
    fn touch(&mut self, number: u64) -> Option<Arc<TableReader>> {
        self.tick += 1;
        let tick = self.tick;
        let r = self.map.get_mut(&number).map(|(r, last)| {
            *last = tick;
            Arc::clone(r)
        });
        if r.is_some() {
            self.queue.push_back((number, tick));
            self.drain_stale();
        }
        r
    }

    fn insert(&mut self, number: u64, reader: Arc<TableReader>) -> Arc<TableReader> {
        self.tick += 1;
        let tick = self.tick;
        let out = Arc::clone(
            &self
                .map
                .entry(number)
                .or_insert_with(|| (reader, tick))
                // A racing open may have beaten us here; keep the first
                // reader, but refresh its recency either way.
                .0,
        );
        self.map.get_mut(&number).unwrap().1 = tick;
        self.queue.push_back((number, tick));
        while self.cap > 0 && self.map.len() > self.cap {
            match self.queue.pop_front() {
                Some((n, t)) => {
                    if matches!(self.map.get(&n), Some((_, last)) if *last == t) {
                        self.map.remove(&n);
                    }
                }
                None => break,
            }
        }
        self.drain_stale();
        out
    }

    /// Compacts the recency queue once stale entries dominate; afterwards
    /// it holds exactly one entry per cached reader. Amortized O(1).
    fn drain_stale(&mut self) {
        if self.queue.len() > 2 * self.map.len() {
            self.queue
                .retain(|(n, t)| matches!(self.map.get(n), Some((_, last)) if last == t));
        }
    }
}

/// One table-cache shard: its own LRU reader map plus a simulated critical
/// section. Under the cooperative virtual clock a `parking_lot` lock never
/// shows contention, so the serialized lookup cost the paper observes is
/// modeled explicitly: every lookup holds the shard's `gate` semaphore while
/// charging [`costs::TABLE_CACHE_FIND_NS`].
struct TableCacheShard {
    gate: Semaphore,
    readers: parking_lot::Mutex<ReaderMap>,
}

impl TableCacheShard {
    /// Runs `f` on the reader map inside the shard's simulated critical
    /// section, charging one lookup of CPU while the gate is held.
    fn locked<T>(&self, f: impl FnOnce(&mut ReaderMap) -> T) -> T {
        self.gate.acquire(1);
        xlsm_sim::sleep_nanos(costs::TABLE_CACHE_FIND_NS);
        let out = f(&mut self.readers.lock());
        self.gate.release(1);
        out
    }
}

/// Caches open [`TableReader`]s (bounded by `max_open_files`, LRU) and owns
/// the shared block cache. Sharded by file number so concurrent
/// `multi_get` probes do not serialize on a single lookup lock.
pub struct TableCache {
    fs: Arc<SimFs>,
    db_path: String,
    block_cache: Arc<BlockCache>,
    shards: Vec<TableCacheShard>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Verify the whole-file CRC recorded in the manifest on every
    /// cache-miss open (`DbOptions::paranoid_file_checks`).
    paranoid_file_checks: bool,
}

impl std::fmt::Debug for TableCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableCache")
            .field("shards", &self.shards.len())
            .field("open_tables", &self.open_readers())
            .finish_non_exhaustive()
    }
}

impl TableCache {
    /// Creates a table cache over `fs` with a block cache of
    /// `block_cache_capacity` bytes, keeping at most `max_open_files`
    /// readers open (`0` = unbounded) across `shards` independent shards.
    /// With `paranoid_file_checks`, every cache-miss open re-reads the
    /// whole file and verifies it against the manifest-recorded CRC.
    pub fn new(
        fs: Arc<SimFs>,
        db_path: &str,
        block_cache_capacity: usize,
        max_open_files: usize,
        shards: usize,
        paranoid_file_checks: bool,
    ) -> Arc<TableCache> {
        let shards = shards.max(1);
        // Split the open-file budget evenly; each shard keeps at least one
        // reader so a tiny budget never thrashes to zero.
        let per_shard_cap = if max_open_files == 0 {
            0
        } else {
            (max_open_files / shards).max(1)
        };
        Arc::new(TableCache {
            fs,
            db_path: db_path.to_owned(),
            block_cache: BlockCache::new(block_cache_capacity),
            shards: (0..shards)
                .map(|_| TableCacheShard {
                    gate: Semaphore::new("table-cache-shard", 1),
                    readers: parking_lot::Mutex::new(ReaderMap {
                        map: std::collections::HashMap::new(),
                        queue: std::collections::VecDeque::new(),
                        tick: 0,
                        cap: per_shard_cap,
                    }),
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            paranoid_file_checks,
        })
    }

    fn shard_of(&self, number: u64) -> &TableCacheShard {
        // Fibonacci multiplicative hash: file numbers are sequential, so a
        // plain modulus would put consecutive L0 files in adjacent shards
        // but stripe badly once levels skip numbers.
        let mixed = number.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize % self.shards.len()]
    }

    /// Opens (or returns the cached) reader for `meta`.
    ///
    /// # Errors
    ///
    /// Filesystem or corruption errors from opening the table.
    pub fn reader(&self, meta: &Arc<FileMetaData>) -> DbResult<Arc<TableReader>> {
        let shard = self.shard_of(meta.number);
        if let Some(r) = shard.locked(|m| m.touch(meta.number)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Open outside the shard gate (it performs reads).
        let file = self.fs.open(&sst_file_name(&self.db_path, meta.number))?;
        if self.paranoid_file_checks {
            if let Some(expected) = meta.file_crc {
                let actual = integrity::file_crc32c(&file, &mut |_| {})?;
                if actual != expected {
                    return Err(DbError::corruption_in(
                        sst_file_name(&self.db_path, meta.number),
                        format!(
                            "whole-file checksum mismatch at open: \
                             manifest {expected:#010x}, disk {actual:#010x}"
                        ),
                    ));
                }
            }
        }
        let reader = Arc::new(TableReader::open(
            file,
            meta.number,
            Arc::clone(&self.block_cache),
        )?);
        Ok(shard.locked(|m| m.insert(meta.number, reader)))
    }

    /// Currently cached open readers.
    pub fn open_readers(&self) -> usize {
        self.shards.iter().map(|s| s.readers.lock().map.len()).sum()
    }

    /// Lifetime `(hits, misses)` of reader lookups.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops cached state for a deleted file.
    pub fn evict(&self, number: u64) {
        self.shard_of(number).readers.lock().map.remove(&number);
        self.block_cache.remove_file(number);
    }

    /// The shared decoded-block cache.
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.block_cache
    }
}

// ---------------------------------------------------------------------------
// Memtable state
// ---------------------------------------------------------------------------

/// Builds a memtable configured from `opts`: whole-key memtable bloom bits
/// plus an expected-entry estimate derived from the write buffer size.
fn new_memtable(opts: &DbOptions, id: u64) -> Arc<MemTable> {
    // ≈ 48 bytes per skiplist entry (key + node overhead) is a deliberately
    // low per-entry estimate: overshooting `expected_entries` only rounds
    // the bloom up, it can never cause a false negative.
    let expected = (opts.write_buffer_size / 48).max(1);
    MemTable::with_options(
        id,
        opts.memtable_bloom_bits,
        expected,
        opts.protection_bytes_per_key > 0,
    )
}

/// Probes one memtable for `key`, consulting its whole-key bloom first when
/// enabled: a bloom rejection answers without walking the skiplist at all,
/// which is the entire point of `memtable_bloom_bits`.
fn mem_probe(
    m: &MemTable,
    key: &[u8],
    snapshot: SequenceNumber,
    stats: &DbStats,
) -> DbResult<Option<Option<Vec<u8>>>> {
    if m.bloom_enabled() {
        xlsm_sim::sleep_nanos(costs::BLOOM_CHECK_NS);
        if !m.may_contain(key) {
            stats.bump(Ticker::MemtableBloomUseful);
            return Ok(None);
        }
    }
    xlsm_sim::sleep_nanos(costs::skiplist_search_ns(
        m.num_entries().max(1),
        m.approximate_bytes().max(1) as u64,
    ));
    m.get(key, snapshot)
}

struct MemState {
    mutable: Arc<MemTable>,
    /// WAL backing the mutable memtable (None when WAL disabled).
    wal: Option<Arc<WalWriter>>,
    wal_number: u64,
    /// Immutable memtables with their WAL numbers, oldest first.
    immutables: Vec<(Arc<MemTable>, u64)>,
    next_mem_id: u64,
}

// ---------------------------------------------------------------------------
// Db
// ---------------------------------------------------------------------------

/// Summary of the LSM shape, for experiments and reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LsmShape {
    /// Files per level.
    pub files_per_level: Vec<usize>,
    /// Bytes per level.
    pub bytes_per_level: Vec<u64>,
    /// Immutable memtable count.
    pub immutables: usize,
    /// Mutable memtable fill in bytes.
    pub mutable_bytes: usize,
}

/// What [`Db::verify_checksums`] covered, for experiments and reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntegrityReport {
    /// Live SSTs verified block-by-block.
    pub sst_files: u64,
    /// Total SST bytes read and checksummed.
    pub sst_bytes: u64,
    /// Sealed WALs verified against their manifest-recorded CRCs.
    pub wal_files: u64,
    /// Total WAL bytes read and checksummed.
    pub wal_bytes: u64,
    /// MANIFEST records whose framing CRCs were verified.
    pub manifest_records: u64,
}

struct DbInner {
    opts: DbOptions,
    fs: Arc<SimFs>,
    wal_fs: Arc<SimFs>,
    versions: VersionSet,
    mem: parking_lot::Mutex<MemState>,
    table_cache: Arc<TableCache>,
    stats: Arc<DbStats>,
    controller: WriteController,
    /// Shared background-I/O budget flushes and compactions draw from
    /// (`bg_io_rate_bytes_per_sec`; disabled at rate 0).
    io_limiter: BgIoLimiter,
    queue: WriteQueue,
    write_buffer_size: AtomicUsize,
    snapshots: parking_lot::Mutex<Vec<SequenceNumber>>,
    shutdown: AtomicBool,
    l0_trigger_override: AtomicUsize,
    install_lock: Semaphore,
    flush_serial: Semaphore,
    flush_tx: Sender<()>,
    compact_tx: Sender<()>,
    compact_queued: AtomicUsize,
    in_compaction: parking_lot::Mutex<HashSet<u64>>,
    cursors: parking_lot::Mutex<CompactionCursors>,
    obsolete: parking_lot::Mutex<Vec<u64>>,
    bg: ErrorHandler,
    /// Background scrubber position (see [`DbInner::scrub_one`]).
    scrub: parking_lot::Mutex<ScrubState>,
}

/// Cursor state for the background scrubber: it walks live SSTs in file-number
/// order, wrapping around at the end of each pass.
#[derive(Default)]
struct ScrubState {
    /// Highest file number verified so far in the current pass.
    cursor: u64,
    /// Virtual time the current pass started (0 = not started).
    pass_start_ns: u64,
    /// Files verified in the current pass.
    files_scanned: u64,
}

/// The key-value store handle. Cheap to clone via `Arc` semantics? No —
/// share by reference or wrap in `Arc<Db>`; the struct owns background
/// worker handles and must be [`Db::close`]d before the sim runtime exits.
pub struct Db {
    inner: Arc<DbInner>,
    workers: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("path", &self.inner.opts.db_path)
            .finish_non_exhaustive()
    }
}

/// Write-path callbacks bound to the database.
struct DbBackend {
    inner: Arc<DbInner>,
}

impl DbInner {
    fn current_write_buffer_size(&self) -> usize {
        self.write_buffer_size.load(Ordering::Relaxed)
    }

    /// Options with any runtime overrides applied (currently the L0
    /// compaction trigger, used by the dynamic-L0 case study).
    fn effective_opts(&self) -> DbOptions {
        let mut opts = self.opts.clone();
        let trig = self.l0_trigger_override.load(Ordering::Relaxed);
        if trig > 0 {
            opts.level0_file_num_compaction_trigger = trig;
        }
        opts
    }

    fn stall_signals(&self) -> StallSignals {
        let version = self.versions.current();
        let (imm, mutable_full) = {
            let mem = self.mem.lock();
            (
                mem.immutables.len(),
                mem.mutable.approximate_bytes() >= self.current_write_buffer_size(),
            )
        };
        StallSignals {
            l0_files: version.num_l0_files(),
            // Memtables counted against the budget: immutables, plus the
            // mutable one once full (switching it would add an immutable).
            // The policy stops at `>= max_write_buffer_number`.
            memtables: imm + usize::from(mutable_full),
            pending_compaction_bytes: version.pending_compaction_bytes(&self.effective_opts()),
            compacted_bytes: self.stats.ticker(Ticker::FlushBytes)
                + self.stats.ticker(Ticker::CompactWriteBytes),
            bg_io_budget_bytes_per_sec: self.io_limiter.current_rate(),
        }
    }

    fn update_stall_conditions(&self) {
        let mut sig = self.stall_signals();
        // Auto-tune the background budget from the debt this update
        // measured, so the signals handed to the throttle policy carry the
        // budget actually in effect.
        self.io_limiter.retune(sig.pending_compaction_bytes);
        sig.bg_io_budget_bytes_per_sec = self.io_limiter.current_rate();
        self.controller.update(&sig, &self.effective_opts());
    }

    /// Draws `bytes` from the shared background-I/O budget and attributes
    /// the wait to `BgIoThrottledNs` + the `bg_io_wait` histogram.
    fn charge_bg_io(&self, bytes: u64, pri: BgIoPriority) {
        if !self.io_limiter.enabled() {
            return;
        }
        let waited = self.io_limiter.acquire(bytes, pri);
        self.stats.add(Ticker::BgIoThrottledNs, waited);
        self.stats.bg_io_wait.record(waited);
    }

    fn schedule_flush(&self) {
        let _ = self.flush_tx.send(());
    }

    fn maybe_schedule_compaction(&self) {
        if self.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let version = self.versions.current();
        let (_, score) = version.compaction_score(&self.effective_opts());
        if score >= 1.0 {
            let queued = self.compact_queued.load(Ordering::Relaxed);
            if queued < self.opts.max_background_compactions * 2 {
                self.compact_queued.fetch_add(1, Ordering::Relaxed);
                let _ = self.compact_tx.send(());
            }
        }
    }

    /// Rotates the mutable memtable to immutable, creating a fresh memtable
    /// and WAL. Caller must be the (serialized) write leader.
    fn switch_memtable(self: &Arc<Self>) -> DbResult<()> {
        // Create the new WAL outside any lock.
        let (new_wal, new_number) = if self.opts.enable_wal {
            let number = self.versions.new_file_number();
            let wal = WalWriter::create(
                &self.wal_fs,
                &self.opts.db_path,
                number,
                self.opts.wal_bytes_per_sync,
            )?;
            (Some(Arc::new(wal)), number)
        } else {
            (None, self.versions.new_file_number())
        };
        // Hold the memtable-stage permit across the swap: a concurrent
        // write group's members each apply straight into `mutable`, and
        // rotating it mid-group would strand part of the group in a
        // memtable that flush is already iterating. Callers (preprocess,
        // Db::flush) never hold the permit here, so this cannot deadlock.
        self.queue.lock_mem_stage();
        let (new_mem, old_wal) = {
            let mut mem = self.mem.lock();
            mem.next_mem_id += 1;
            let new_mem = new_memtable(&self.opts, mem.next_mem_id);
            let old_mem = std::mem::replace(&mut mem.mutable, Arc::clone(&new_mem));
            let old_wal_number = mem.wal_number;
            let old_wal = std::mem::replace(&mut mem.wal, new_wal);
            mem.wal_number = new_number;
            mem.immutables.push((old_mem, old_wal_number));
            (new_mem, old_wal.map(|w| (old_wal_number, w)))
        };
        self.queue.unlock_mem_stage();
        let _ = new_mem;
        // The sealed log will never be appended to again (the mem-stage
        // permit serialized us against in-flight groups), so its whole-file
        // CRC is final. Record it in the manifest for recovery to check.
        if let Some((old_number, wal)) = old_wal {
            let edit = VersionEdit {
                wal_crcs: vec![(old_number, wal.file_crc())],
                ..VersionEdit::default()
            };
            self.install_lock.acquire(1);
            let install = self.versions.log_and_apply(edit);
            self.install_lock.release(1);
            install.map_err(harden_install_error)?;
        }
        self.update_stall_conditions();
        self.schedule_flush();
        Ok(())
    }

    /// Deletes SSTs queued as obsolete that no live version references.
    /// A failed deletion re-queues the file and records the error; it is
    /// retried at the next purge and never makes data unsafe, so the
    /// database stays writable.
    fn purge_obsolete(&self) {
        let candidates: Vec<u64> = std::mem::take(&mut *self.obsolete.lock());
        if candidates.is_empty() {
            return;
        }
        let live = self.versions.live_files();
        let mut still_pinned = Vec::new();
        let mut had_error = false;
        for n in candidates {
            if live.contains(&n) {
                still_pinned.push(n);
            } else {
                self.table_cache.evict(n);
                match self.fs.delete(&sst_file_name(&self.opts.db_path, n)) {
                    Ok(()) | Err(FsError::NotFound(_)) => {}
                    Err(e) => {
                        had_error = true;
                        still_pinned.push(n);
                        self.stats.bump(Ticker::BackgroundErrors);
                        let _ = self.bg.record(BackgroundOp::ObsoletePurge, e.into(), 0);
                    }
                }
            }
        }
        self.obsolete.lock().extend(still_pinned);
        if !had_error && !self.bg.is_read_only() {
            // A fully clean purge resolves an earlier purge failure.
            if matches!(self.bg.current(), Some(b) if b.op == BackgroundOp::ObsoletePurge) {
                self.bg.clear();
            }
        }
    }

    /// Deletes WAL files with number < the version set's log watermark.
    fn purge_old_wals(&self) {
        let watermark = self.versions.log_number();
        let prefix = format!("{}/", self.opts.db_path);
        for path in self.wal_fs.list(&prefix) {
            if path[prefix.len()..].contains('/') {
                continue; // files archived under lost/ are not ours to reap
            }
            if let Some(number) = parse_file_number(&path, ".log") {
                if number < watermark {
                    let _ = self.wal_fs.delete(&path);
                }
            }
        }
    }

    // -- scrubbing ---------------------------------------------------------

    /// Verifies one live SST against its recorded checksums and advances the
    /// scrub cursor (file-number order, wrapping at the end of a pass).
    ///
    /// Reads are paced to `scrub_rate_bytes_per_sec` so the scrubber's I/O
    /// cost is honest but bounded. Returns `Ok(false)` when scrubbing is
    /// disabled or there is nothing to scan; corruption errors propagate to
    /// [`DbInner::run_background_job`], which counts them and flips the
    /// database read-only.
    fn scrub_one(self: &Arc<Self>) -> DbResult<bool> {
        let rate = self.opts.scrub_rate_bytes_per_sec;
        if rate == 0 {
            return Ok(false);
        }
        let version = self.versions.current();
        let mut metas: Vec<Arc<FileMetaData>> = version.levels.iter().flatten().cloned().collect();
        metas.sort_by_key(|m| m.number);
        metas.dedup_by_key(|m| m.number);
        if metas.is_empty() {
            return Ok(false);
        }
        let meta = {
            let mut state = self.scrub.lock();
            if state.pass_start_ns == 0 {
                state.pass_start_ns = xlsm_sim::now_nanos();
            }
            match metas.iter().find(|m| m.number > state.cursor) {
                Some(m) => {
                    state.cursor = m.number;
                    state.files_scanned += 1;
                    Arc::clone(m)
                }
                None => {
                    // Pass complete: record its duration, wrap around.
                    if state.files_scanned > 0 {
                        self.stats
                            .scrub_pass
                            .record(xlsm_sim::now_nanos() - state.pass_start_ns);
                    }
                    state.pass_start_ns = xlsm_sim::now_nanos();
                    state.files_scanned = 1;
                    let m = Arc::clone(&metas[0]);
                    state.cursor = m.number;
                    m
                }
            }
        };
        let path = sst_file_name(&self.opts.db_path, meta.number);
        let file = match self.fs.open(&path) {
            Ok(f) => f,
            // Compacted away between the version snapshot and the open.
            Err(FsError::NotFound(_)) => return Ok(true),
            Err(e) => return Err(e.into()),
        };
        let mut pacer = |bytes: u64| {
            xlsm_sim::sleep_nanos(bytes.saturating_mul(1_000_000_000) / rate);
        };
        let result = (|| {
            if let Some(expected) = meta.file_crc {
                let actual = integrity::file_crc32c(&file, &mut pacer)?;
                if actual != expected {
                    // Localize the damage: a block-level walk usually pins
                    // the corrupt offset; if every block passes (e.g. the
                    // flip is in a spot the whole-file CRC alone covers),
                    // report the file-level mismatch.
                    verify_table_file(&file, meta.number, &mut pacer)?;
                    return Err(DbError::corruption_in(
                        path.clone(),
                        format!(
                            "whole-file checksum mismatch: \
                             manifest {expected:#010x}, disk {actual:#010x}"
                        ),
                    ));
                }
                Ok(file.len())
            } else {
                verify_table_file(&file, meta.number, &mut pacer)
            }
        })();
        match result {
            Ok(bytes) => {
                self.stats.add(Ticker::ScrubBytesVerified, bytes);
                Ok(true)
            }
            Err(e) => {
                if matches!(e, DbError::Corruption(_)) {
                    self.stats.bump(Ticker::ScrubCorruptionsFound);
                }
                Err(e)
            }
        }
    }

    // -- flush ------------------------------------------------------------

    fn flush_one(self: &Arc<Self>) -> DbResult<bool> {
        // Serialize flush jobs (RocksDB flushes one memtable at a time).
        self.flush_serial.acquire(1);
        let result = self.flush_one_locked();
        self.flush_serial.release(1);
        result
    }

    fn flush_one_locked(self: &Arc<Self>) -> DbResult<bool> {
        let (mem, _wal_number) = {
            let state = self.mem.lock();
            match state.immutables.first() {
                Some((m, w)) => (Arc::clone(m), *w),
                None => return Ok(false),
            }
        };
        let t0 = xlsm_sim::now_nanos();
        let number = self.versions.new_file_number();
        let sst_path = sst_file_name(&self.opts.db_path, number);
        let build = (|| {
            let file = self.fs.create(&sst_path)?;
            let mut builder = TableBuilder::with_options(file, TableOptions::from(&self.opts));
            let mut iter = mem.iter();
            let mut ok = InternalIterator::seek_to_first(&mut iter)?;
            let mut cpu = 0u64;
            while ok {
                iter.verify_entry()?;
                builder.add(
                    &InternalIterator::key(&iter),
                    &InternalIterator::value(&iter),
                )?;
                cpu += costs::FLUSH_ENTRY_NS;
                if cpu >= 256 * costs::FLUSH_ENTRY_NS {
                    xlsm_sim::sleep_nanos(cpu);
                    cpu = 0;
                }
                ok = InternalIterator::next(&mut iter)?;
            }
            if cpu > 0 {
                xlsm_sim::sleep_nanos(cpu);
            }
            builder.finish()
        })();
        let props = match build {
            Ok(props) => props,
            Err(e) => {
                // Drop the partial output so a retried flush starts clean;
                // the immutable memtable stays queued for the retry.
                let _ = self.fs.delete(&sst_path);
                return Err(e);
            }
        };
        // Settle the flush's bytes against the shared background budget at
        // flush priority: queued compactions must leave room for it.
        self.charge_bg_io(props.file_size, BgIoPriority::Flush);

        // Install.
        self.install_lock.acquire(1);
        let log_watermark = {
            let state = self.mem.lock();
            state
                .immutables
                .iter()
                .skip(1)
                .map(|(_, w)| *w)
                .chain(std::iter::once(state.wal_number))
                .min()
                .unwrap_or(state.wal_number)
        };
        let mut edit = VersionEdit::default();
        edit.added.push((
            0,
            FileMetaData {
                number,
                file_size: props.file_size,
                smallest: props.smallest,
                largest: props.largest,
                num_entries: props.num_entries,
                file_crc: Some(props.file_crc),
            },
        ));
        edit.log_number = Some(log_watermark);
        let install = self.versions.log_and_apply(edit);
        self.install_lock.release(1);
        if let Err(e) = install {
            // The manifest record may or may not be durable — its state is
            // unknown, so the error is never retryable. The built SST stays
            // on disk: if the edit did land, deleting it would leave the
            // manifest pointing at a missing file.
            return Err(harden_install_error(e));
        }

        {
            let mut state = self.mem.lock();
            debug_assert!(Arc::ptr_eq(&state.immutables[0].0, &mem));
            state.immutables.remove(0);
        }
        self.stats.bump(Ticker::FlushCount);
        self.stats.add(Ticker::FlushBytes, props.file_size);
        self.stats.flush_duration.record(xlsm_sim::now_nanos() - t0);
        self.purge_old_wals();
        self.update_stall_conditions();
        self.maybe_schedule_compaction();
        Ok(true)
    }

    // -- compaction --------------------------------------------------------

    fn compact_one(self: &Arc<Self>) -> DbResult<bool> {
        let effective = self.effective_opts();
        let task = {
            let version = self.versions.current();
            let in_progress = self.in_compaction.lock();
            let mut cursors = self.cursors.lock();
            pick_compaction(
                &version,
                &effective,
                &in_progress,
                &mut cursors,
                &*self.opts.compaction_scheduler,
            )
        };
        let Some(task) = task else {
            return Ok(false);
        };
        match self.opts.compaction_scheduler.name() {
            "greedy" => self.stats.bump(Ticker::CompactionsScheduledGreedy),
            "round-robin" => self.stats.bump(Ticker::CompactionsScheduledRoundRobin),
            "fair" => self.stats.bump(Ticker::CompactionsScheduledFair),
            _ => {}
        }
        {
            let mut in_progress = self.in_compaction.lock();
            for n in task.input_numbers() {
                in_progress.insert(n);
            }
        }
        let t0 = xlsm_sim::now_nanos();
        let min_snapshot = self
            .snapshots
            .lock()
            .iter()
            .min()
            .copied()
            .unwrap_or_else(|| self.versions.last_sequence());
        // A real merge reads every input byte; settle that against the
        // shared budget before touching the device (trivial moves are
        // metadata-only and free). Compaction priority: any flush that has
        // registered bytes overtakes us at the bucket.
        if !task.is_trivial_move {
            self.charge_bg_io(task.input_bytes(), BgIoPriority::Compaction);
        }
        let inner = Arc::clone(self);
        let result = run_compaction(
            &task,
            &self.fs,
            &self.opts.db_path,
            &self.table_cache,
            &self.stats,
            &self.opts,
            Arc::new(move || inner.versions.new_file_number()),
            min_snapshot,
        );
        let edit = match result {
            Ok(edit) => edit,
            Err(e) => {
                let mut in_progress = self.in_compaction.lock();
                for n in task.input_numbers() {
                    in_progress.remove(&n);
                }
                return Err(e);
            }
        };
        if !task.is_trivial_move {
            // …and the bytes the merge wrote back out.
            let out_bytes: u64 = edit.added.iter().map(|(_, f)| f.file_size).sum();
            self.charge_bg_io(out_bytes, BgIoPriority::Compaction);
        }
        self.install_lock.acquire(1);
        let install = self.versions.log_and_apply(edit);
        self.install_lock.release(1);
        {
            let mut in_progress = self.in_compaction.lock();
            for n in task.input_numbers() {
                in_progress.remove(&n);
            }
        }
        // Manifest state is unknown after an install failure: hard error,
        // and the outputs stay on disk in case the edit landed.
        install.map_err(harden_install_error)?;
        if !task.is_trivial_move {
            self.obsolete.lock().extend(task.input_numbers());
            self.purge_obsolete();
        }
        self.stats.bump(Ticker::CompactionCount);
        self.stats
            .compaction_duration
            .record(xlsm_sim::now_nanos() - t0);
        self.update_stall_conditions();
        self.maybe_schedule_compaction();
        Ok(true)
    }

    // -- background-error handling ------------------------------------------

    /// Runs one background job with RocksDB-style error handling: transient
    /// I/O errors are retried with bounded exponential backoff (auto-resume
    /// on success); hard errors — corruption, power loss, exhausted retries
    /// — transition the database to read-only, where writes fail fast with
    /// [`DbError::ReadOnly`] while reads keep serving. Workers never panic.
    fn run_background_job(self: &Arc<Self>, op: BackgroundOp) {
        let mut retries = 0u32;
        loop {
            if self.shutdown.load(Ordering::Relaxed) || self.bg.is_read_only() {
                return;
            }
            let result = match op {
                BackgroundOp::Flush => self.flush_one().map(|_| ()),
                BackgroundOp::Compaction => self.compact_one().map(|_| ()),
                BackgroundOp::ObsoletePurge => {
                    self.purge_obsolete();
                    Ok(())
                }
                BackgroundOp::Scrub => self.scrub_one().map(|_| ()),
            };
            let e = match result {
                Ok(()) => {
                    if retries > 0 && !self.bg.is_read_only() {
                        self.bg.clear();
                        self.stats.bump(Ticker::BackgroundAutoResumes);
                        self.update_stall_conditions();
                    }
                    return;
                }
                Err(e) => e,
            };
            if matches!(e, DbError::Corruption(_)) {
                self.stats.bump(Ticker::CorruptionDetected);
                if !self.opts.paranoid_checks && op == BackgroundOp::Compaction {
                    // Without paranoid checks a corrupt compaction input
                    // abandons that compaction but keeps the database
                    // writable (the inputs stay in place).
                    self.stats.bump(Ticker::BackgroundErrors);
                    return;
                }
            }
            self.stats.bump(Ticker::BackgroundErrors);
            let severity = self.bg.record(op, e, retries);
            if severity == ErrorSeverity::Retryable
                && retries < self.opts.max_background_error_retries
            {
                self.stats.bump(Ticker::BackgroundErrorRetries);
                let backoff = self
                    .opts
                    .background_error_retry_backoff_ns
                    .saturating_mul(1u64 << retries.min(20));
                retries += 1;
                xlsm_sim::sleep_nanos(backoff.max(1));
                continue;
            }
            self.bg.escalate();
            self.enter_read_only_mode();
            return;
        }
    }

    /// Transitions to read-only mode and force-releases any writers stalled
    /// inside the controller so they can observe the error and fail fast.
    fn enter_read_only_mode(&self) {
        if !self.bg.is_read_only() {
            self.bg.enter_read_only();
            self.stats.bump(Ticker::ReadOnlyTransitions);
        }
        self.controller.force_release(true);
    }
}

/// One file's worth of a MultiGet batch: the SST to open plus every probe
/// it must answer.
struct ProbeJob {
    level: usize,
    file: Arc<FileMetaData>,
    probes: Vec<TableProbe>,
}

/// A MultiGet probe hit: `(batch slot, level, internal key, value)`.
type ProbeHit = (usize, usize, Vec<u8>, Vec<u8>);

/// Probes each job's table once with its whole probe set, returning
/// `(slot, level, ikey, value)` hits. Runs on a MultiGet probe thread (or
/// inline when the batch doesn't warrant fan-out).
fn run_probe_jobs(
    table_cache: &Arc<TableCache>,
    stats: &Arc<DbStats>,
    jobs: &[ProbeJob],
) -> DbResult<Vec<ProbeHit>> {
    let mut hits = Vec::new();
    for job in jobs {
        if job.level == 0 {
            stats.add(Ticker::L0FilesSearched, job.probes.len() as u64);
        }
        let reader = table_cache.reader(&job.file)?;
        for (slot, (ikey, value)) in reader.get_many(&job.probes, stats)? {
            hits.push((slot, job.level, ikey, value));
        }
    }
    Ok(hits)
}

/// Maps a failed MANIFEST install to a non-retryable error: the record may
/// or may not have become durable, so blindly re-running the job could
/// apply the same edit twice.
fn harden_install_error(e: DbError) -> DbError {
    match e {
        DbError::Io { source, .. } => DbError::Io {
            retryable: false,
            source,
        },
        other => other,
    }
}

fn parse_file_number(path: &str, suffix: &str) -> Option<u64> {
    let name = path.rsplit('/').next()?;
    name.strip_suffix(suffix)?.parse().ok()
}

/// The smallest user key greater than *every* key starting with `prefix`
/// (`None` when no upper bound exists, i.e. `prefix` is empty or all
/// `0xff`). Together with `prefix` itself this brackets exactly the
/// starts-with set: `k` starts with `prefix` ⇔ `prefix ≤ k < successor`.
fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last == 0xff {
            out.pop();
        } else {
            *last += 1;
            return Some(out);
        }
    }
    None
}

impl WriteBackend for DbBackend {
    fn preprocess(&self, group_bytes: u64) -> DbResult<PreprocessStalls> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Relaxed) {
            return Err(DbError::ShuttingDown);
        }
        if let Some(e) = inner.bg.read_only_error() {
            return Err(e);
        }
        let mut stalls = PreprocessStalls::default();
        loop {
            // Stop conditions (Algorithm 1's stop threshold, memtable limit).
            let stopped_ns = inner.controller.wait_while_stopped();
            if stopped_ns > 0 {
                inner.stats.bump(Ticker::StallStoppedWrites);
                inner.stats.add(Ticker::StallMicros, stopped_ns / 1_000);
                stalls.stop_wait_ns += stopped_ns;
            }
            // A hard background error force-releases stalled writers; they
            // must fail fast rather than re-enter the stall loop.
            if let Some(e) = inner.bg.read_only_error() {
                return Err(e);
            }
            // Delay (Algorithm 1's DELAYWRITE pacing).
            let delay = inner.controller.delay_for_write(group_bytes);
            if delay > 0 {
                inner.stats.bump(Ticker::StallDelayedWrites);
                inner.stats.add(Ticker::StallMicros, delay / 1_000);
                xlsm_sim::sleep_nanos(delay);
                stalls.delay_sleep_ns += delay;
            }
            // Room in the mutable memtable.
            let (mutable_full, imm_count) = {
                let mem = inner.mem.lock();
                (
                    mem.mutable.approximate_bytes() >= inner.current_write_buffer_size(),
                    mem.immutables.len(),
                )
            };
            if !mutable_full {
                return Ok(stalls);
            }
            if imm_count + 1 >= inner.opts.max_write_buffer_number {
                // Switching now would exceed the memtable budget: raise the
                // stop condition and wait for a flush.
                inner.update_stall_conditions();
                if !inner.controller.is_stopped() {
                    // Flush just finished between our check and update;
                    // retry.
                    continue;
                }
                continue;
            }
            inner.switch_memtable()?;
        }
    }

    fn allocate_seq(&self, count: u64) -> u64 {
        self.inner.versions.allocate_sequences(count)
    }

    fn reserve_seq(&self, count: u64) -> u64 {
        self.inner.versions.reserve_sequences(count)
    }

    fn publish_seq(&self, last: u64) {
        self.inner.versions.publish_sequence(last);
    }

    fn write_wal(&self, group: &WriteBatch) -> DbResult<()> {
        if !self.inner.opts.enable_wal {
            return Ok(());
        }
        let wal = {
            let mem = self.inner.mem.lock();
            mem.wal.clone()
        };
        let Some(wal) = wal else {
            return Ok(());
        };
        let t0 = xlsm_sim::now_nanos();
        let written = wal.append(group.data(), self.inner.opts.wal_sync)?;
        self.inner.stats.add(Ticker::WalBytes, written);
        if self.inner.opts.wal_sync {
            self.inner.stats.bump(Ticker::WalSyncs);
        }
        self.inner
            .stats
            .wal_append
            .record(xlsm_sim::now_nanos() - t0);
        Ok(())
    }

    fn write_memtable(&self, group: &WriteBatch) -> DbResult<()> {
        let mem = {
            let state = self.inner.mem.lock();
            Arc::clone(&state.mutable)
        };
        let entries = mem.num_entries();
        let bytes = mem.approximate_bytes() as u64;
        let per_insert = costs::skiplist_insert_ns(entries.max(1), bytes.max(1));
        xlsm_sim::sleep_nanos(per_insert * group.count() as u64);
        group.apply_to(&mem)
    }

    fn write_memtable_member(&self, batch: &WriteBatch) -> DbResult<()> {
        let mem = {
            let state = self.inner.mem.lock();
            Arc::clone(&state.mutable)
        };
        let entries = mem.num_entries();
        let bytes = mem.approximate_bytes() as u64;
        let per_insert = costs::skiplist_insert_ns(entries.max(1), bytes.max(1));
        for (i, (seq, op)) in (batch.sequence()..).zip(batch.iter()).enumerate() {
            let (t, key, value) = op?;
            batch.verify_entry(i, t, key, value, "concurrent memtable insert")?;
            // The per-insert CPU cost is charged inside the concurrent
            // insert, between splice location and CAS linking, so members'
            // costs overlap in virtual time (and CAS retries are real).
            mem.add_concurrent(seq, t, key, value, per_insert);
        }
        Ok(())
    }
}

impl Db {
    /// Opens (creating or recovering) a database on `fs`.
    ///
    /// # Errors
    ///
    /// Option validation, filesystem, or corruption errors.
    pub fn open(fs: Arc<SimFs>, opts: DbOptions) -> DbResult<Db> {
        opts.validate().map_err(DbError::InvalidArgument)?;
        let wal_fs = opts.wal_fs.clone().unwrap_or_else(|| Arc::clone(&fs));
        let db_path = opts.db_path.clone();
        let existing = fs.exists(&format!("{db_path}/CURRENT"));
        let versions = if existing {
            VersionSet::recover(Arc::clone(&fs), &db_path, &opts)?
        } else {
            VersionSet::create_new(Arc::clone(&fs), &db_path, &opts)?
        };
        let table_cache = TableCache::new(
            Arc::clone(&fs),
            &db_path,
            opts.block_cache_capacity,
            opts.max_open_files,
            opts.table_cache_shards,
            opts.paranoid_file_checks,
        );
        let stats = DbStats::shared();

        // A power cut between a file's creation and the durable MANIFEST
        // record of its number leaves the file on disk with the recovered
        // counter still pointing at (or below) it; re-claim every number
        // found so the recovery flush and fresh WAL never collide with a
        // leftover the orphan sweep has yet to collect.
        if existing {
            let prefix = format!("{db_path}/");
            for path in fs.list(&prefix) {
                if let Some(n) = parse_file_number(&path, ".sst") {
                    versions.mark_file_number_used(n);
                }
            }
            for path in wal_fs.list(&prefix) {
                if let Some(n) = parse_file_number(&path, ".log") {
                    versions.mark_file_number_used(n);
                }
            }
        }

        // --- WAL recovery ---------------------------------------------------
        let mut recovered = Vec::new();
        if existing {
            let prefix = format!("{db_path}/");
            let mut wals: Vec<(u64, String)> = wal_fs
                .list(&prefix)
                .into_iter()
                .filter_map(|p| parse_file_number(&p, ".log").map(|n| (n, p)))
                .filter(|(n, _)| *n >= versions.log_number())
                .collect();
            wals.sort();
            recovered = wals;
        }
        let mode = opts.wal_recovery_mode;
        let recovery_mem = MemTable::with_options(0, 0, 1, opts.protection_bytes_per_key > 0);
        let mut max_seq = versions.last_sequence();
        // Sequence the next replayed batch must start at: logs concatenate
        // into one contiguous sequence stream, so a jump means a record
        // between two intact ones was lost.
        let mut expected_next: Option<u64> = None;
        // Point-in-time stop: once set, every remaining record and log is
        // beyond the recovered point in time and is discarded wholesale.
        let mut replay_stopped = false;
        'logs: for (number, path) in &recovered {
            if replay_stopped {
                let remaining = match wal_fs.open(path) {
                    Ok(f) => f.len(),
                    Err(_) => 0,
                };
                stats.add(Ticker::WalDroppedTailBytes, remaining);
                continue;
            }
            // A sealed log carries a whole-file CRC in the manifest. Under
            // AbsoluteConsistency a mismatch fails recovery outright; the
            // lenient modes fall through to the per-record scan, whose own
            // CRCs then decide what survives.
            if let Some(expected) = versions.wal_crc(*number) {
                let file = wal_fs.open(path)?;
                let actual = integrity::file_crc32c(&file, &mut |_| {})?;
                if actual != expected && mode == WalRecoveryMode::AbsoluteConsistency {
                    return Err(DbError::corruption_in(
                        path.clone(),
                        format!(
                            "whole-file checksum mismatch: \
                             manifest {expected:#010x}, disk {actual:#010x}"
                        ),
                    ));
                }
            }
            let scan = scan_wal(&wal_fs, path, mode)?;
            stats.add(Ticker::WalDroppedTailBytes, scan.dropped_tail_bytes);
            stats.add(
                Ticker::WalSkippedCorruptRecords,
                scan.skipped_corrupt_records,
            );
            for (i, payload) in scan.records.iter().enumerate() {
                let corrupt = |what: &str| {
                    DbError::corruption_in(path.clone(), format!("{what} (record {i})"))
                };
                // Count the records a point-in-time stop abandons, so the
                // drop is surfaced instead of silent.
                let stop_here = |stats: &DbStats| {
                    let dropped: u64 = scan.records[i..].iter().map(|r| 8 + r.len() as u64).sum();
                    stats.add(Ticker::WalDroppedTailBytes, dropped);
                };
                let batch = match WriteBatch::from_data(payload) {
                    // The record CRC vouched for these bytes; re-enabling
                    // protection recomputes the per-entry sidecar so the
                    // memtable insert below verifies and stores checksums.
                    Ok(mut b) => {
                        b.enable_protection(opts.protection_bytes_per_key);
                        b
                    }
                    Err(_) => match mode {
                        WalRecoveryMode::AbsoluteConsistency => {
                            return Err(corrupt("undecodable write batch"));
                        }
                        WalRecoveryMode::PointInTimeRecovery => {
                            stop_here(&stats);
                            replay_stopped = true;
                            continue 'logs;
                        }
                        WalRecoveryMode::TolerateCorruptedTailRecords => {
                            // Treat like a corrupt tail of this log.
                            stop_here(&stats);
                            continue 'logs;
                        }
                        WalRecoveryMode::SkipAnyCorruptedRecords => {
                            stats.bump(Ticker::WalSkippedCorruptRecords);
                            continue;
                        }
                    },
                };
                let seq = batch.sequence();
                if let Some(expected) = expected_next {
                    if seq != expected && mode != WalRecoveryMode::TolerateCorruptedTailRecords {
                        match mode {
                            WalRecoveryMode::AbsoluteConsistency => {
                                return Err(DbError::corruption_in(
                                    path.clone(),
                                    format!("sequence gap: expected {expected}, found {seq}"),
                                ));
                            }
                            WalRecoveryMode::PointInTimeRecovery => {
                                // The prefix before the gap is the
                                // recovered point in time.
                                stop_here(&stats);
                                replay_stopped = true;
                                continue 'logs;
                            }
                            WalRecoveryMode::SkipAnyCorruptedRecords => {
                                // The lost records are counted; this one
                                // still applies.
                                stats.bump(Ticker::WalSkippedCorruptRecords);
                            }
                            WalRecoveryMode::TolerateCorruptedTailRecords => unreachable!(),
                        }
                    }
                }
                batch.apply_to(&recovery_mem)?;
                stats.bump(Ticker::WalRecoveredRecords);
                max_seq = max_seq.max(seq + batch.count() as u64 - 1);
                expected_next = Some(seq + batch.count() as u64);
            }
            if mode == WalRecoveryMode::PointInTimeRecovery && !scan.is_clean() {
                // This log lost its tail: anything in later logs is past
                // the recovered point in time.
                replay_stopped = true;
            }
        }
        while versions.last_sequence() < max_seq {
            versions.allocate_sequences(max_seq - versions.last_sequence());
        }

        // Flush recovered entries straight to L0.
        if !recovery_mem.is_empty() {
            let number = versions.new_file_number();
            let file = fs.create(&sst_file_name(&db_path, number))?;
            let mut builder = TableBuilder::with_options(file, TableOptions::from(&opts));
            let mem_arc = recovery_mem;
            let mut iter = mem_arc.iter();
            let mut ok = InternalIterator::seek_to_first(&mut iter)?;
            while ok {
                iter.verify_entry()?;
                builder.add(
                    &InternalIterator::key(&iter),
                    &InternalIterator::value(&iter),
                )?;
                ok = InternalIterator::next(&mut iter)?;
            }
            let props = builder.finish()?;
            let mut edit = VersionEdit::default();
            edit.added.push((
                0,
                FileMetaData {
                    number,
                    file_size: props.file_size,
                    smallest: props.smallest,
                    largest: props.largest,
                    num_entries: props.num_entries,
                    file_crc: Some(props.file_crc),
                },
            ));
            versions.log_and_apply(edit)?;
        }

        // --- Fresh WAL + memtable --------------------------------------------
        let wal_number = versions.new_file_number();
        let wal = if opts.enable_wal {
            Some(Arc::new(WalWriter::create(
                &wal_fs,
                &db_path,
                wal_number,
                opts.wal_bytes_per_sync,
            )?))
        } else {
            None
        };
        // Old WALs are fully represented in L0 now.
        let edit = VersionEdit {
            log_number: Some(wal_number),
            ..VersionEdit::default()
        };
        versions.log_and_apply(edit)?;

        let (flush_tx, flush_rx) = channel::<()>("flush-jobs");
        let (compact_tx, compact_rx) = channel::<()>("compaction-jobs");

        let controller = WriteController::new(&opts);
        controller.attach_accounting(Arc::clone(&stats.stall));
        // Auto-tune reference: debt equal to 4× the L1 target doubles the
        // budget; the scale caps at 4× base (see `BgIoLimiter::retune`).
        let io_limiter = BgIoLimiter::new(
            opts.bg_io_rate_bytes_per_sec,
            opts.bg_io_auto_tune
                .then(|| 4 * opts.max_bytes_for_level_base),
        );
        let inner = Arc::new(DbInner {
            controller,
            io_limiter,
            queue: WriteQueue::new(opts.pipelined_write, opts.max_write_batch_group_size)
                .with_concurrent_apply(
                    opts.allow_concurrent_memtable_write,
                    opts.concurrent_apply_min_batches,
                ),
            write_buffer_size: AtomicUsize::new(opts.write_buffer_size),
            l0_trigger_override: AtomicUsize::new(0),
            mem: parking_lot::Mutex::new(MemState {
                mutable: new_memtable(&opts, 1),
                wal,
                wal_number,
                immutables: Vec::new(),
                next_mem_id: 1,
            }),
            table_cache,
            stats,
            versions,
            snapshots: parking_lot::Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            install_lock: Semaphore::new("manifest-install", 1),
            flush_serial: Semaphore::new("flush-serial", 1),
            flush_tx,
            compact_tx,
            compact_queued: AtomicUsize::new(0),
            in_compaction: parking_lot::Mutex::new(HashSet::new()),
            cursors: parking_lot::Mutex::new(CompactionCursors::new(opts.num_levels)),
            obsolete: parking_lot::Mutex::new(Vec::new()),
            bg: ErrorHandler::new(),
            scrub: parking_lot::Mutex::new(ScrubState::default()),
            wal_fs,
            fs,
            opts,
        });
        inner.purge_old_wals();

        // --- Orphan sweep ---------------------------------------------------
        // A crash between a flush/compaction output being written and its
        // manifest install strands `.sst` files no version references (old
        // logs are the WAL purge's job, just above). Queue every
        // unreferenced table through the ordinary obsolete purge so cache
        // eviction and error handling are shared with the steady state.
        if existing {
            let live = inner.versions.live_files();
            let prefix = format!("{}/", inner.opts.db_path);
            let orphans: Vec<u64> = inner
                .fs
                .list(&prefix)
                .into_iter()
                .filter(|p| !p[prefix.len()..].contains('/'))
                .filter_map(|p| parse_file_number(&p, ".sst"))
                .filter(|n| !live.contains(n))
                .collect();
            if !orphans.is_empty() {
                inner.obsolete.lock().extend(orphans.iter().copied());
                inner.purge_obsolete();
                let deleted = orphans
                    .iter()
                    .filter(|n| !inner.fs.exists(&sst_file_name(&inner.opts.db_path, **n)))
                    .count() as u64;
                inner.stats.add(Ticker::OrphanFilesDeleted, deleted);
            }
        }

        // --- Background workers ----------------------------------------------
        let mut workers = Vec::new();
        for i in 0..inner.opts.max_background_flushes {
            let rx: Receiver<()> = flush_rx.clone();
            let inner2 = Arc::clone(&inner);
            workers.push(xlsm_sim::spawn(&format!("flush-{i}"), move || {
                while rx.recv().is_some() {
                    if inner2.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    inner2.run_background_job(BackgroundOp::Flush);
                }
            }));
        }
        for i in 0..inner.opts.max_background_compactions {
            let rx: Receiver<()> = compact_rx.clone();
            let inner2 = Arc::clone(&inner);
            workers.push(xlsm_sim::spawn(&format!("compact-{i}"), move || {
                while rx.recv().is_some() {
                    inner2.compact_queued.fetch_sub(1, Ordering::Relaxed);
                    if inner2.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    inner2.run_background_job(BackgroundOp::Compaction);
                }
            }));
        }
        if inner.opts.scrub_rate_bytes_per_sec > 0 {
            let inner2 = Arc::clone(&inner);
            workers.push(xlsm_sim::spawn("scrub-0", move || {
                while !inner2.shutdown.load(Ordering::Relaxed) {
                    inner2.run_background_job(BackgroundOp::Scrub);
                    // Idle tick between files; also the shutdown poll
                    // interval (and the only wait while read-only).
                    xlsm_sim::sleep_nanos(10_000_000);
                }
            }));
        }

        Ok(Db {
            inner,
            workers: parking_lot::Mutex::new(workers),
        })
    }

    /// Rebuilds the database's MANIFEST from surviving files alone — the
    /// last-resort path when [`Db::open`] fails because the manifest (or
    /// CURRENT) is torn, missing, or corrupt. See [`crate::repair`] for
    /// the full contract.
    ///
    /// # Errors
    ///
    /// Option validation and filesystem errors; damaged tables and logs
    /// are salvaged or archived rather than reported.
    pub fn repair(fs: Arc<SimFs>, opts: &DbOptions) -> DbResult<crate::repair::RepairReport> {
        crate::repair::repair_db(fs, opts)
    }

    /// Writes a batch (group-committed).
    ///
    /// # Errors
    ///
    /// Shutdown or I/O failures.
    pub fn write(&self, mut batch: WriteBatch) -> DbResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let t0 = xlsm_sim::now_nanos();
        xlsm_sim::sleep_nanos(costs::WRITE_SETUP_NS);
        // Seal every entry with protection info before it enters the write
        // pipeline; the checksums travel with the batch through group merge,
        // the WAL, and the memtable insert. Charged per key, like the WAL
        // CRC, because it hashes the full key+value.
        let width = self.inner.opts.protection_bytes_per_key;
        if width > 0 && batch.protection_width() != width {
            xlsm_sim::sleep_nanos(costs::KV_PROTECTION_NS * batch.count() as u64);
            batch.enable_protection(width);
        }
        self.inner.stats.add(Ticker::Puts, batch.count() as u64);
        let backend = DbBackend {
            inner: Arc::clone(&self.inner),
        };
        let r = self.inner.queue.submit(batch, &backend, &self.inner.stats);
        self.inner
            .stats
            .write_latency
            .record(xlsm_sim::now_nanos() - t0);
        r
    }

    /// Puts one key-value pair.
    ///
    /// # Errors
    ///
    /// See [`Db::write`].
    pub fn put(&self, key: &[u8], value: &[u8]) -> DbResult<()> {
        let mut b = WriteBatch::new();
        b.put(key, value);
        self.write(b)
    }

    /// Deletes one key.
    ///
    /// # Errors
    ///
    /// See [`Db::write`].
    pub fn delete(&self, key: &[u8]) -> DbResult<()> {
        let mut b = WriteBatch::new();
        b.delete(key);
        self.inner.stats.bump(Ticker::Deletes);
        self.write(b)
    }

    /// Reads the newest visible value for `key`.
    ///
    /// # Errors
    ///
    /// I/O or corruption failures.
    pub fn get(&self, key: &[u8]) -> DbResult<Option<Vec<u8>>> {
        self.get_at(key, self.inner.versions.last_sequence())
    }

    /// Reads `key` as of `snapshot`.
    ///
    /// # Errors
    ///
    /// I/O or corruption failures.
    pub fn get_at(&self, key: &[u8], snapshot: SequenceNumber) -> DbResult<Option<Vec<u8>>> {
        let t0 = xlsm_sim::now_nanos();
        xlsm_sim::sleep_nanos(costs::GET_SETUP_NS);
        let inner = &self.inner;
        inner.stats.bump(Ticker::Gets);
        let result = self.get_inner(key, snapshot);
        inner.stats.get_latency.record(xlsm_sim::now_nanos() - t0);
        result
    }

    fn get_inner(&self, key: &[u8], snapshot: SequenceNumber) -> DbResult<Option<Vec<u8>>> {
        let inner = &self.inner;
        let (mutable, immutables) = {
            let mem = inner.mem.lock();
            (
                Arc::clone(&mem.mutable),
                mem.immutables
                    .iter()
                    .map(|(m, _)| Arc::clone(m))
                    .collect::<Vec<_>>(),
            )
        };
        // Memtable.
        if let Some(found) = mem_probe(&mutable, key, snapshot, &inner.stats)? {
            inner.stats.bump(Ticker::GetHitMemtable);
            return Ok(found);
        }
        // Immutables, newest first.
        for m in immutables.iter().rev() {
            if let Some(found) = mem_probe(m, key, snapshot, &inner.stats)? {
                inner.stats.bump(Ticker::GetHitImmutable);
                return Ok(found);
            }
        }
        // SSTs.
        let version = inner.versions.current();
        let lookup = types::make_lookup_key(key, snapshot);
        // L0: newest-first, all covering files (the paper's Finding #2).
        for f in &version.levels[0] {
            if !f.may_contain_user_key(key) {
                continue;
            }
            inner.stats.bump(Ticker::L0FilesSearched);
            let reader = inner.table_cache.reader(f)?;
            if let Some((ikey, value)) = reader.get(&lookup, key, &inner.stats)? {
                let (_, _, t) = types::parse_internal_key(&ikey);
                inner.stats.bump(Ticker::GetHitL0);
                return Ok(match t {
                    ValueType::Value => Some(value),
                    ValueType::Deletion => None,
                });
            }
        }
        // Deeper levels: binary search for the single candidate file.
        for level in 1..version.levels.len() {
            let Some(f) = version.file_for_key(level, key) else {
                continue;
            };
            let reader = inner.table_cache.reader(&f)?;
            if let Some((ikey, value)) = reader.get(&lookup, key, &inner.stats)? {
                let (_, _, t) = types::parse_internal_key(&ikey);
                inner.stats.bump(Ticker::GetHitLn);
                return Ok(match t {
                    ValueType::Value => Some(value),
                    ValueType::Deletion => None,
                });
            }
        }
        inner.stats.bump(Ticker::GetMiss);
        Ok(None)
    }

    /// Batched point lookups at the current snapshot: the batch pins one
    /// sequence number, consults the memtables inline, then fans the
    /// unresolved keys out across table readers in parallel (grouped so
    /// each SST is probed once per batch) — the read-side analogue of the
    /// device's internal channel parallelism. Results are positionally
    /// aligned with `keys`.
    ///
    /// # Errors
    ///
    /// I/O or corruption failures from any probe thread.
    pub fn multi_get(&self, keys: &[&[u8]]) -> DbResult<Vec<Option<Vec<u8>>>> {
        self.multi_get_at(keys, self.inner.versions.last_sequence())
    }

    /// [`Db::multi_get`] as of `snapshot`.
    ///
    /// # Errors
    ///
    /// I/O or corruption failures from any probe thread.
    pub fn multi_get_at(
        &self,
        keys: &[&[u8]],
        snapshot: SequenceNumber,
    ) -> DbResult<Vec<Option<Vec<u8>>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = xlsm_sim::now_nanos();
        // Batch setup (key hashing, version pinning) is paid once.
        xlsm_sim::sleep_nanos(costs::GET_SETUP_NS);
        let inner = &self.inner;
        inner.stats.bump(Ticker::MultiGetBatches);
        inner.stats.add(Ticker::MultiGetKeys, keys.len() as u64);
        inner.stats.add(Ticker::Gets, keys.len() as u64);
        let result = self.multi_get_inner(keys, snapshot);
        inner
            .stats
            .multi_get_latency
            .record(xlsm_sim::now_nanos() - t0);
        result
    }

    fn multi_get_inner(
        &self,
        keys: &[&[u8]],
        snapshot: SequenceNumber,
    ) -> DbResult<Vec<Option<Vec<u8>>>> {
        let inner = &self.inner;
        let (mutable, immutables) = {
            let mem = inner.mem.lock();
            (
                Arc::clone(&mem.mutable),
                mem.immutables
                    .iter()
                    .map(|(m, _)| Arc::clone(m))
                    .collect::<Vec<_>>(),
            )
        };
        // Memtables are strictly newer than any SST: resolve inline first.
        // Outer None = unresolved; `Some(found)` carries hit-or-tombstone.
        let mut out: Vec<Option<Option<Vec<u8>>>> = vec![None; keys.len()];
        for (i, key) in keys.iter().enumerate() {
            if let Some(found) = mem_probe(&mutable, key, snapshot, &inner.stats)? {
                inner.stats.bump(Ticker::GetHitMemtable);
                out[i] = Some(found);
                continue;
            }
            for m in immutables.iter().rev() {
                if let Some(found) = mem_probe(m, key, snapshot, &inner.stats)? {
                    inner.stats.bump(Ticker::GetHitImmutable);
                    out[i] = Some(found);
                    break;
                }
            }
        }
        let unresolved: Vec<(usize, &[u8])> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| out[*i].is_none())
            .map(|(i, k)| (i, *k))
            .collect();
        if unresolved.is_empty() {
            return Ok(out.into_iter().map(Option::unwrap).collect());
        }

        // Group unresolved keys per SST, then probe files concurrently.
        // Sequence numbers are unique per key version and only ever move
        // *down* the tree, so the visible value is simply the hit with the
        // highest sequence ≤ snapshot across all probed files — no
        // level-by-level short-circuit needed.
        let version = inner.versions.current();
        let jobs: Vec<ProbeJob> = version
            .probe_groups(&unresolved)
            .into_iter()
            .map(|(level, file, slots)| ProbeJob {
                level,
                file,
                probes: slots
                    .into_iter()
                    .map(|slot| TableProbe {
                        slot,
                        lookup: types::make_lookup_key(keys[slot], snapshot),
                        user_key: keys[slot].to_vec(),
                    })
                    .collect(),
            })
            .collect();
        let threads = inner.opts.multi_get_parallelism.min(jobs.len());
        let hits = if threads <= 1 {
            run_probe_jobs(&inner.table_cache, &inner.stats, &jobs)?
        } else {
            inner
                .stats
                .add(Ticker::MultiGetProbeThreads, threads as u64);
            let mut buckets: Vec<Vec<ProbeJob>> = (0..threads).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                buckets[i % threads].push(job);
            }
            let mut handles = Vec::with_capacity(threads);
            for (i, bucket) in buckets.into_iter().enumerate() {
                let table_cache = Arc::clone(&inner.table_cache);
                let stats = Arc::clone(&inner.stats);
                handles.push(xlsm_sim::spawn(&format!("multiget-{i}"), move || {
                    run_probe_jobs(&table_cache, &stats, &bucket)
                }));
            }
            let mut hits = Vec::new();
            let mut first_err = None;
            for h in handles {
                match h.join() {
                    Ok(hs) => hits.extend(hs),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            hits
        };

        type BestVersion = (SequenceNumber, ValueType, Vec<u8>, usize);
        let mut best: Vec<Option<BestVersion>> = vec![None; keys.len()];
        for (slot, level, ikey, value) in hits {
            let (_, seq, t) = types::parse_internal_key(&ikey);
            if best[slot].as_ref().is_none_or(|(bs, ..)| seq > *bs) {
                best[slot] = Some((seq, t, value, level));
            }
        }
        for (i, o) in out.iter_mut().enumerate() {
            if o.is_some() {
                continue;
            }
            *o = Some(match best[i].take() {
                Some((_, t, value, level)) => {
                    inner.stats.bump(if level == 0 {
                        Ticker::GetHitL0
                    } else {
                        Ticker::GetHitLn
                    });
                    match t {
                        ValueType::Value => Some(value),
                        ValueType::Deletion => None,
                    }
                }
                None => {
                    inner.stats.bump(Ticker::GetMiss);
                    None
                }
            });
        }
        Ok(out.into_iter().map(Option::unwrap).collect())
    }

    /// A full-database scan cursor at the current snapshot.
    ///
    /// # Errors
    ///
    /// I/O failures opening tables.
    pub fn scan(&self) -> DbResult<DbScanner> {
        let inner = &self.inner;
        let snapshot = inner.versions.last_sequence();
        let (mutable, immutables) = {
            let mem = inner.mem.lock();
            (
                Arc::clone(&mem.mutable),
                mem.immutables
                    .iter()
                    .map(|(m, _)| Arc::clone(m))
                    .collect::<Vec<_>>(),
            )
        };
        let version = inner.versions.current();
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(Box::new(mutable.iter()));
        for m in immutables.iter().rev() {
            children.push(Box::new(m.iter()));
        }
        for f in &version.levels[0] {
            let reader = inner.table_cache.reader(f)?;
            children.push(Box::new(reader.iter(Arc::clone(&inner.stats))));
        }
        for level in 1..version.levels.len() {
            if !version.levels[level].is_empty() {
                children.push(Box::new(LevelIterator::new(
                    version.levels[level].clone(),
                    Arc::clone(&inner.table_cache),
                    Arc::clone(&inner.stats),
                )));
            }
        }
        Ok(DbScanner {
            iter: DbIterator::new(MergingIterator::new(children), snapshot),
            _version: version,
            upper_bound: None,
        })
    }

    /// A scan cursor restricted to user keys starting with `prefix`,
    /// already positioned on the first match.
    ///
    /// Two layers of pruning make this cheaper than [`Db::scan`]: SST files
    /// whose key range cannot intersect `[prefix, successor(prefix))` are
    /// never opened, and — when [`DbOptions::prefix_extractor`] is set to
    /// exactly `prefix.len()` — files whose prefix bloom rules the prefix
    /// out are skipped without touching a data block.
    ///
    /// # Errors
    ///
    /// I/O failures opening tables.
    pub fn scan_prefix(&self, prefix: &[u8]) -> DbResult<DbScanner> {
        let inner = &self.inner;
        let snapshot = inner.versions.last_sequence();
        let upper = prefix_successor(prefix);
        let in_range = |f: &FileMetaData| {
            types::user_key(&f.largest) >= prefix
                && upper
                    .as_deref()
                    .is_none_or(|u| types::user_key(&f.smallest) < u)
        };
        let (mutable, immutables) = {
            let mem = inner.mem.lock();
            (
                Arc::clone(&mem.mutable),
                mem.immutables
                    .iter()
                    .map(|(m, _)| Arc::clone(m))
                    .collect::<Vec<_>>(),
            )
        };
        let version = inner.versions.current();
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        // Memtable blooms are whole-key, so the skiplists always join in.
        children.push(Box::new(mutable.iter()));
        for m in immutables.iter().rev() {
            children.push(Box::new(m.iter()));
        }
        for level in 0..version.levels.len() {
            let mut kept = Vec::new();
            for f in &version.levels[level] {
                if !in_range(f) {
                    continue;
                }
                let reader = inner.table_cache.reader(f)?;
                if !reader.may_contain_prefix(prefix) {
                    inner.stats.bump(Ticker::PrefixBloomUseful);
                    continue;
                }
                kept.push(Arc::clone(f));
            }
            if level == 0 {
                // L0 files overlap; each needs its own merge child.
                for f in kept {
                    let reader = inner.table_cache.reader(&f)?;
                    children.push(Box::new(reader.iter(Arc::clone(&inner.stats))));
                }
            } else if !kept.is_empty() {
                children.push(Box::new(LevelIterator::new(
                    kept,
                    Arc::clone(&inner.table_cache),
                    Arc::clone(&inner.stats),
                )));
            }
        }
        let mut scanner = DbScanner {
            iter: DbIterator::new(MergingIterator::new(children), snapshot),
            _version: version,
            upper_bound: upper,
        };
        scanner.seek(prefix)?;
        Ok(scanner)
    }

    /// Takes a consistent snapshot; reads through [`Db::get_at`] with
    /// [`Snapshot::sequence`] see a frozen view, and compaction preserves
    /// the versions it needs.
    pub fn snapshot(&self) -> Snapshot {
        let seq = self.inner.versions.last_sequence();
        self.inner.snapshots.lock().push(seq);
        Snapshot {
            inner: Arc::clone(&self.inner),
            seq,
        }
    }

    /// Forces a memtable switch + flush and waits until no immutables
    /// remain (test/diagnostic helper).
    ///
    /// # Errors
    ///
    /// Background flush failures surface here instead of panicking the
    /// worker: a transient I/O error is retried with exponential backoff
    /// and, once it resolves, this returns `Ok`; a hard error (or an
    /// exhausted retry budget) transitions the database to read-only and
    /// this returns [`DbError::ReadOnly`]. See [`Db::resume`].
    pub fn flush(&self) -> DbResult<()> {
        if let Some(e) = self.inner.bg.read_only_error() {
            return Err(e);
        }
        {
            let state = self.inner.mem.lock();
            if state.mutable.is_empty() && state.immutables.is_empty() {
                return Ok(());
            }
            if state.mutable.is_empty() {
                drop(state);
                self.inner.schedule_flush();
            }
        }
        if !{ self.inner.mem.lock().mutable.is_empty() } {
            self.inner.switch_memtable()?;
        }
        while !{ self.inner.mem.lock().immutables.is_empty() } {
            if let Some(e) = self.inner.bg.read_only_error() {
                return Err(e);
            }
            xlsm_sim::sleep_nanos(100_000);
        }
        Ok(())
    }

    /// Blocks until no compaction is warranted and none is running
    /// (test/diagnostic helper). Returns immediately once the database is
    /// read-only — no further compactions will run until [`Db::resume`].
    pub fn wait_for_compactions(&self) {
        loop {
            if self.inner.bg.is_read_only() {
                return;
            }
            // Score against the *effective* options: with a runtime L0
            // trigger override in place (deferred compactions), the
            // scheduler will not pick work the configured trigger would,
            // and waiting on the configured score would spin forever.
            let score = self
                .inner
                .versions
                .current()
                .compaction_score(&self.inner.effective_opts())
                .1;
            let busy = !self.inner.in_compaction.lock().is_empty()
                || self.inner.compact_queued.load(Ordering::Relaxed) > 0;
            if score < 1.0 && !busy {
                return;
            }
            self.inner.maybe_schedule_compaction();
            xlsm_sim::sleep_nanos(200_000);
        }
    }

    /// Clears the background-error state and re-runs the failed work — the
    /// RocksDB `DB::Resume()` analogue. Pending immutable memtables are
    /// flushed in the caller's thread; on success the read-only flag lifts,
    /// stalled writers are re-admitted, and compactions reschedule.
    ///
    /// # Errors
    ///
    /// The error hit while re-running the work; the database stays
    /// read-only in that case.
    pub fn resume(&self) -> DbResult<()> {
        if self.inner.bg.current().is_none() && !self.inner.bg.is_read_only() {
            return Ok(());
        }
        loop {
            match self.inner.flush_one() {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => return Err(e),
            }
        }
        self.inner.bg.clear();
        self.inner.controller.force_release(false);
        self.inner.stats.bump(Ticker::BackgroundAutoResumes);
        self.inner.update_stall_conditions();
        self.inner.maybe_schedule_compaction();
        Ok(())
    }

    /// Verifies every live file in the foreground — the
    /// `DB::VerifyChecksums()` analogue, and the exhaustive counterpart of
    /// the paced background scrubber.
    ///
    /// Checks, in order: every live SST (whole-file CRC against the
    /// manifest record when one exists, then every block's CRC), every
    /// sealed WAL with a recorded CRC that is still on disk, and the
    /// MANIFEST's own record framing.
    ///
    /// # Errors
    ///
    /// The first corruption or I/O failure found; the error names the file
    /// (and block offset where known). Unlike the background scrubber this
    /// does **not** transition the database to read-only — the caller
    /// decides what to do.
    pub fn verify_checksums(&self) -> DbResult<IntegrityReport> {
        let inner = &self.inner;
        let mut report = IntegrityReport::default();
        let mut no_pace = |_: u64| {};
        let version = inner.versions.current();
        let mut seen = std::collections::HashSet::new();
        for meta in version.levels.iter().flatten() {
            if !seen.insert(meta.number) {
                continue;
            }
            let path = sst_file_name(&inner.opts.db_path, meta.number);
            let file = inner.fs.open(&path)?;
            if let Some(expected) = meta.file_crc {
                let actual = integrity::file_crc32c(&file, &mut no_pace)?;
                if actual != expected {
                    // Pin the offset if a block-level walk can.
                    verify_table_file(&file, meta.number, &mut no_pace)?;
                    return Err(DbError::corruption_in(
                        path,
                        format!(
                            "whole-file checksum mismatch: \
                             manifest {expected:#010x}, disk {actual:#010x}"
                        ),
                    ));
                }
            }
            report.sst_bytes += verify_table_file(&file, meta.number, &mut no_pace)?;
            report.sst_files += 1;
        }
        for (number, expected) in inner.versions.recorded_wal_crcs() {
            let path = wal_file_name(&inner.opts.db_path, number);
            let file = match inner.wal_fs.open(&path) {
                Ok(f) => f,
                // Already reaped by the WAL purge; its data lives in L0.
                Err(FsError::NotFound(_)) => continue,
                Err(e) => return Err(e.into()),
            };
            let actual = integrity::file_crc32c(&file, &mut no_pace)?;
            if actual != expected {
                return Err(DbError::corruption_in(
                    path,
                    format!(
                        "whole-file checksum mismatch: \
                         manifest {expected:#010x}, disk {actual:#010x}"
                    ),
                ));
            }
            report.wal_bytes += file.len();
            report.wal_files += 1;
        }
        // The MANIFEST is itself a log; reading it verifies every record's
        // framing CRC.
        let manifest = crate::version::manifest_path(&inner.opts.db_path);
        report.manifest_records = read_wal(&inner.fs, &manifest)?.len() as u64;
        Ok(report)
    }

    /// Statistics sink.
    pub fn stats(&self) -> &Arc<DbStats> {
        &self.inner.stats
    }

    /// Write-controller state (stall level, current delayed write rate).
    pub fn controller_snapshot(&self) -> crate::controller::ControllerSnapshot {
        self.inner.controller.snapshot()
    }

    /// One cheap cross-layer snapshot: tickers, latency histograms, the
    /// write-stall breakdown totals, the controller-transition log since
    /// the previous call (draining), controller state, and device-side
    /// queue/GC accounting.
    pub fn metrics(&self) -> Metrics {
        let stats = &self.inner.stats;
        let data_dev = self.inner.fs.device();
        let wal_dev = self.inner.wal_fs.device();
        let wal_device = if Arc::ptr_eq(data_dev, wal_dev) {
            None
        } else {
            Some(xlsm_device::Device::stats(&**wal_dev))
        };
        Metrics {
            tickers: stats.ticker_snapshot(),
            get_latency: stats.get_latency.summary(),
            write_latency: stats.write_latency.summary(),
            write_queue_wait: stats.write_queue_wait.summary(),
            write_group_batches: stats.write_group_batches.summary(),
            write_group_bytes: stats.write_group_bytes.summary(),
            scrub_pass: stats.scrub_pass.summary(),
            bg_io_wait: stats.bg_io_wait.summary(),
            compaction_debt_bytes: self
                .inner
                .versions
                .current()
                .pending_compaction_bytes(&self.inner.effective_opts()),
            bg_io_budget_bytes_per_sec: self.inner.io_limiter.current_rate(),
            wal_append: stats.wal_append.summary(),
            flush_duration: stats.flush_duration.summary(),
            compaction_duration: stats.compaction_duration.summary(),
            subcompaction_duration: stats.subcompaction_duration.summary(),
            multi_get_latency: stats.multi_get_latency.summary(),
            avg_waiting_writers: stats.avg_waiting_writers(),
            stall: stats.stall.snapshot(),
            stall_events: stats.stall.drain_events(),
            controller: self.inner.controller.snapshot(),
            device: xlsm_device::Device::stats(&**data_dev),
            wal_device,
            background_error: self.inner.bg.current(),
            read_only: self.inner.bg.is_read_only(),
        }
    }

    /// Point-in-time LSM shape.
    pub fn shape(&self) -> LsmShape {
        let version = self.inner.versions.current();
        let mem = self.inner.mem.lock();
        LsmShape {
            files_per_level: version.levels.iter().map(Vec::len).collect(),
            bytes_per_level: (0..version.levels.len())
                .map(|l| version.level_bytes(l))
                .collect(),
            immutables: mem.immutables.len(),
            mutable_bytes: mem.mutable.approximate_bytes(),
        }
    }

    /// Current Level-0 file count.
    pub fn num_l0_files(&self) -> usize {
        self.inner.versions.current().num_l0_files()
    }

    /// Writers currently queued in the write thread queue.
    pub fn queued_writers(&self) -> usize {
        self.inner.queue.queued()
    }

    /// Adjusts the memtable size at runtime (the dynamic Level-0 case study
    /// V-B uses this to trade L0 file count against file size).
    pub fn set_write_buffer_size(&self, bytes: usize) {
        self.inner
            .write_buffer_size
            .store(bytes.max(64 << 10), Ordering::Relaxed);
    }

    /// Overrides the Level-0 compaction trigger at runtime (`0` restores
    /// the configured value). Together with
    /// [`Db::set_write_buffer_size`] this trades L0 file count against
    /// file size at constant aggregate volume — case study V-B.
    pub fn set_l0_compaction_trigger(&self, files: usize) {
        self.inner
            .l0_trigger_override
            .store(files, Ordering::Relaxed);
        self.inner.maybe_schedule_compaction();
    }

    /// The currently effective Level-0 compaction trigger.
    pub fn l0_compaction_trigger(&self) -> usize {
        self.inner
            .effective_opts()
            .level0_file_num_compaction_trigger
    }

    /// Currently configured memtable size.
    pub fn write_buffer_size(&self) -> usize {
        self.inner.current_write_buffer_size()
    }

    /// The options this database was opened with.
    pub fn options(&self) -> &DbOptions {
        &self.inner.opts
    }

    /// The filesystem hosting the SSTs.
    pub fn fs(&self) -> &Arc<SimFs> {
        &self.inner.fs
    }

    /// Block cache counters `(hits, misses)`.
    pub fn block_cache_counters(&self) -> (u64, u64) {
        self.inner.table_cache.block_cache().counters()
    }

    /// Table cache reader-lookup counters `(hits, misses)`.
    pub fn table_cache_counters(&self) -> (u64, u64) {
        self.inner.table_cache.counters()
    }

    /// Currently cached open table readers (bounded by
    /// `DbOptions::max_open_files`).
    pub fn open_table_readers(&self) -> usize {
        self.inner.table_cache.open_readers()
    }

    /// A multi-line human-readable statistics report (the
    /// `GetProperty("rocksdb.stats")` analogue).
    pub fn stats_report(&self) -> String {
        use std::fmt::Write as _;
        let stats = &self.inner.stats;
        let shape = self.shape();
        let ctl = self.controller_snapshot();
        let (cache_hits, cache_misses) = self.block_cache_counters();
        let mut out = String::new();
        let _ = writeln!(out, "== xlsm stats: {} ==", self.inner.opts.db_path);
        let _ = writeln!(
            out,
            "ops: puts={} deletes={} gets={} (mem {} / imm {} / L0 {} / Ln {} / miss {})",
            stats.ticker(Ticker::Puts),
            stats.ticker(Ticker::Deletes),
            stats.ticker(Ticker::Gets),
            stats.ticker(Ticker::GetHitMemtable),
            stats.ticker(Ticker::GetHitImmutable),
            stats.ticker(Ticker::GetHitL0),
            stats.ticker(Ticker::GetHitLn),
            stats.ticker(Ticker::GetMiss),
        );
        let _ = writeln!(
            out,
            "latency us: get p50/p90/p99 = {:.0}/{:.0}/{:.0}  write p50/p90/p99 = {:.0}/{:.0}/{:.0}",
            stats.get_latency.quantile(0.5) as f64 / 1e3,
            stats.get_latency.quantile(0.9) as f64 / 1e3,
            stats.get_latency.quantile(0.99) as f64 / 1e3,
            stats.write_latency.quantile(0.5) as f64 / 1e3,
            stats.write_latency.quantile(0.9) as f64 / 1e3,
            stats.write_latency.quantile(0.99) as f64 / 1e3,
        );
        let _ = writeln!(
            out,
            "shape: files/level={:?} bytes/level={:?} imm={} mutable={}KB",
            shape.files_per_level,
            shape.bytes_per_level,
            shape.immutables,
            shape.mutable_bytes / 1024,
        );
        let _ = writeln!(
            out,
            "flush: n={} bytes={}  compaction: n={} read={} written={} trivial={}",
            stats.ticker(Ticker::FlushCount),
            stats.ticker(Ticker::FlushBytes),
            stats.ticker(Ticker::CompactionCount),
            stats.ticker(Ticker::CompactReadBytes),
            stats.ticker(Ticker::CompactWriteBytes),
            stats.ticker(Ticker::TrivialMoves),
        );
        let _ = writeln!(
            out,
            "stalls: delayed={} stopped={} total={}ms  controller: {:?} rate={}MB/s",
            stats.ticker(Ticker::StallDelayedWrites),
            stats.ticker(Ticker::StallStoppedWrites),
            stats.ticker(Ticker::StallMicros) / 1_000,
            ctl.level,
            ctl.delayed_write_rate >> 20,
        );
        let _ = writeln!(
            out,
            "caches: block hit/miss = {cache_hits}/{cache_misses}  bloom useful={}  wal bytes={}",
            stats.ticker(Ticker::BloomUseful),
            stats.ticker(Ticker::WalBytes),
        );
        let _ = writeln!(
            out,
            "write groups: led={} joined={} avg waiting writers={:.2}",
            stats.ticker(Ticker::WriteGroupsLed),
            stats.ticker(Ticker::WritesJoinedGroup),
            stats.avg_waiting_writers(),
        );
        out
    }

    /// Shuts down: stops background workers and joins them. Unflushed
    /// memtables remain recoverable through the WAL.
    pub fn close(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.flush_tx.close();
        self.inner.compact_tx.close();
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            w.join();
        }
    }
}

/// Pinned scan cursor returned by [`Db::scan`]; holds the version alive so
/// compaction cannot delete the files underneath it.
pub struct DbScanner {
    iter: DbIterator,
    _version: Arc<Version>,
    /// Exclusive user-key upper bound (`None` = unbounded); set by
    /// [`Db::scan_prefix`] so the cursor ends exactly where the prefix does.
    upper_bound: Option<Vec<u8>>,
}

impl std::fmt::Debug for DbScanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.iter.fmt(f)
    }
}

impl DbScanner {
    /// Positions at the first visible entry.
    ///
    /// # Errors
    ///
    /// Read failures.
    pub fn seek_to_first(&mut self) -> DbResult<bool> {
        self.iter.seek_to_first()?;
        Ok(self.valid())
    }

    /// Positions at the first visible entry with user key ≥ `key`.
    ///
    /// # Errors
    ///
    /// Read failures.
    pub fn seek(&mut self, key: &[u8]) -> DbResult<bool> {
        self.iter.seek(key)?;
        Ok(self.valid())
    }

    /// Advances to the next visible user key.
    ///
    /// # Errors
    ///
    /// Read failures.
    #[allow(clippy::should_implement_trait)] // fallible cursor, not an Iterator
    pub fn next(&mut self) -> DbResult<bool> {
        self.iter.next()?;
        Ok(self.valid())
    }

    /// Whether positioned on an entry (inside the upper bound, if any).
    pub fn valid(&self) -> bool {
        self.iter.valid()
            && self
                .upper_bound
                .as_deref()
                .is_none_or(|u| self.iter.key() < u)
    }

    /// Current user key.
    pub fn key(&self) -> &[u8] {
        self.iter.key()
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        self.iter.value()
    }
}

/// An RAII snapshot handle; dropping it releases the pinned sequence.
pub struct Snapshot {
    inner: Arc<DbInner>,
    seq: SequenceNumber,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot").field("seq", &self.seq).finish()
    }
}

impl Snapshot {
    /// The pinned sequence number, for [`Db::get_at`].
    pub fn sequence(&self) -> SequenceNumber {
        self.seq
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut snaps = self.inner.snapshots.lock();
        if let Some(pos) = snaps.iter().position(|s| *s == self.seq) {
            snaps.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::StallLevel;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::FsOptions;

    fn small_opts() -> DbOptions {
        DbOptions {
            write_buffer_size: 64 << 10,
            target_file_size_base: 64 << 10,
            max_bytes_for_level_base: 256 << 10,
            block_cache_capacity: 256 << 10,
            ..DbOptions::default()
        }
    }

    fn open_db(opts: DbOptions) -> (Db, Arc<SimFs>) {
        let fs = SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        );
        let db = Db::open(Arc::clone(&fs), opts).unwrap();
        (db, fs)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            db.put(b"alpha", b"1").unwrap();
            db.put(b"beta", b"2").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()));
            db.put(b"alpha", b"1b").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), Some(b"1b".to_vec()));
            db.delete(b"alpha").unwrap();
            assert_eq!(db.get(b"alpha").unwrap(), None);
            assert_eq!(db.get(b"beta").unwrap(), Some(b"2".to_vec()));
            assert_eq!(db.get(b"gamma").unwrap(), None);
            db.close();
        });
    }

    #[test]
    fn values_survive_flush_to_l0() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            for i in 0..100u32 {
                db.put(format!("key{i:04}").as_bytes(), &[b'v'; 100])
                    .unwrap();
            }
            db.flush().unwrap();
            assert!(db.num_l0_files() >= 1);
            for i in 0..100u32 {
                assert_eq!(
                    db.get(format!("key{i:04}").as_bytes()).unwrap(),
                    Some(vec![b'v'; 100]),
                    "key{i:04} lost after flush"
                );
            }
            assert!(db.stats().ticker(Ticker::GetHitL0) > 0);
            db.close();
        });
    }

    #[test]
    fn heavy_writes_trigger_compaction_and_stay_readable() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            // ~4 MiB of data through a 64 KiB memtable => many flushes and
            // at least one compaction into L1.
            let value = vec![b'x'; 512];
            for i in 0..8000u32 {
                db.put(format!("key{:06}", i % 2000).as_bytes(), &value)
                    .unwrap();
            }
            db.flush().unwrap();
            db.wait_for_compactions();
            let shape = db.shape();
            assert!(
                shape.files_per_level[1..].iter().any(|&n| n > 0),
                "compaction should have populated deeper levels: {shape:?}"
            );
            assert!(db.stats().ticker(Ticker::CompactionCount) > 0);
            for i in 0..2000u32 {
                assert_eq!(
                    db.get(format!("key{i:06}").as_bytes()).unwrap(),
                    Some(value.clone()),
                    "key{i:06} lost after compaction"
                );
            }
            db.close();
        });
    }

    #[test]
    fn table_cache_bounded_by_max_open_files() {
        Runtime::new().run(|| {
            let opts = DbOptions {
                max_open_files: 16,
                ..small_opts()
            };
            let (db, _fs) = open_db(opts);
            let value = vec![b'v'; 512];
            for i in 0..4000u32 {
                db.put(format!("key{i:06}").as_bytes(), &value).unwrap();
            }
            db.flush().unwrap();
            db.wait_for_compactions();
            assert!(
                db.shape().files_per_level.iter().sum::<usize>() > 16,
                "need more live SSTs than the cap for the test to bite"
            );
            // Touch every file's key range; the cache must stay at the cap.
            for i in (0..4000u32).step_by(7) {
                assert_eq!(
                    db.get(format!("key{i:06}").as_bytes()).unwrap(),
                    Some(value.clone())
                );
            }
            assert!(
                db.open_table_readers() <= 16,
                "table cache holds {} readers, cap is 16",
                db.open_table_readers()
            );
            db.close();
        });
    }

    #[test]
    fn prefix_successor_brackets_starts_with_set() {
        assert_eq!(prefix_successor(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_successor(&[0x61, 0xff]), Some(vec![0x62]));
        assert_eq!(prefix_successor(&[0xff, 0xff]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn memtable_bloom_rejects_misses_without_skiplist_walks() {
        Runtime::new().run(|| {
            let opts = DbOptions {
                memtable_bloom_bits: 10,
                ..small_opts()
            };
            let (db, _fs) = open_db(opts);
            for i in 0..200u32 {
                db.put(format!("key{i:04}").as_bytes(), b"v").unwrap();
            }
            // Present keys must never be filtered.
            for i in 0..200u32 {
                assert_eq!(
                    db.get(format!("key{i:04}").as_bytes()).unwrap(),
                    Some(b"v".to_vec())
                );
            }
            assert_eq!(db.stats().ticker(Ticker::MemtableBloomUseful), 0);
            for i in 0..200u32 {
                assert_eq!(db.get(format!("abs{i:04}").as_bytes()).unwrap(), None);
            }
            let useful = db.stats().ticker(Ticker::MemtableBloomUseful);
            assert!(
                useful > 180,
                "memtable bloom should reject most absent keys, got {useful}"
            );
            db.close();
        });
    }

    #[test]
    fn scan_prefix_matches_filtered_full_scan_and_prunes_files() {
        Runtime::new().run(|| {
            let opts = DbOptions {
                bloom_bits_per_key: 10,
                prefix_extractor: Some(4),
                ..small_opts()
            };
            let (db, _fs) = open_db(opts);
            // Three prefix families spread over several SSTs plus the
            // memtable; one key later deleted.
            for round in 0..3u32 {
                for i in 0..120u32 {
                    let p = ["aaaa", "bbbb", "cccc"][(i % 3) as usize];
                    db.put(format!("{p}{:04}", i + round).as_bytes(), &[b'v'; 64])
                        .unwrap();
                }
                db.flush().unwrap();
            }
            db.delete(b"bbbb0004").unwrap();
            db.put(b"bbbb9999", b"mem-only").unwrap();

            let mut expect = Vec::new();
            let mut full = db.scan().unwrap();
            let mut ok = full.seek_to_first().unwrap();
            while ok {
                if full.key().starts_with(b"bbbb") {
                    expect.push((full.key().to_vec(), full.value().to_vec()));
                }
                ok = full.next().unwrap();
            }
            assert!(!expect.is_empty());

            let mut got = Vec::new();
            let mut scan = db.scan_prefix(b"bbbb").unwrap();
            let mut ok = scan.valid();
            while ok {
                got.push((scan.key().to_vec(), scan.value().to_vec()));
                ok = scan.next().unwrap();
            }
            assert_eq!(got, expect, "prefix scan diverged from filtered scan");
            assert!(got.iter().all(|(k, _)| !k.starts_with(b"bbbb0004")));
            db.close();
        });
    }

    #[test]
    fn sharded_table_cache_speeds_up_multi_get_fanout() {
        // Identical workloads, 1 shard vs 8: results must match and the
        // sharded run must spend less virtual time in the fan-out phase.
        let run = |shards: usize| {
            let mut elapsed = 0u64;
            let mut results = Vec::new();
            let mut counters = (0, 0);
            Runtime::new().run(|| {
                let opts = DbOptions {
                    table_cache_shards: shards,
                    multi_get_parallelism: 8,
                    ..small_opts()
                };
                let (db, _fs) = open_db(opts);
                let value = vec![b'v'; 256];
                for i in 0..3000u32 {
                    db.put(format!("key{i:06}").as_bytes(), &value).unwrap();
                }
                db.flush().unwrap();
                db.wait_for_compactions();
                let t0 = xlsm_sim::now_nanos();
                for batch in 0..20u32 {
                    let keys: Vec<String> = (0..32u32)
                        .map(|i| format!("key{:06}", (batch * 151 + i * 89) % 3000))
                        .collect();
                    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
                    results.push(db.multi_get(&refs).unwrap());
                }
                elapsed = xlsm_sim::now_nanos() - t0;
                counters = db.table_cache_counters();
                db.close();
            });
            (elapsed, results, counters)
        };
        let (t1, r1, _) = run(1);
        let (t8, r8, c8) = run(8);
        assert_eq!(r1, r8, "sharding must not change read results");
        assert!(c8.0 + c8.1 > 0, "table cache counters should move");
        assert!(
            t8 < t1,
            "8 shards ({t8} ns) should beat 1 shard ({t1} ns) at fan-out 8"
        );
    }

    #[test]
    fn multi_get_resolves_across_memtable_ssts_and_tombstones() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            for i in 0..400u32 {
                db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
            db.delete(b"key0003").unwrap(); // tombstone over an SST value
            db.put(b"key0001", b"fresh").unwrap(); // memtable shadows SST
            let keys: Vec<&[u8]> = vec![b"key0001", b"key0002", b"key0003", b"nope"];
            let got = db.multi_get(&keys).unwrap();
            assert_eq!(got[0], Some(b"fresh".to_vec()));
            assert_eq!(got[1], Some(b"v2".to_vec()));
            assert_eq!(got[2], None, "tombstone must win over older SST value");
            assert_eq!(got[3], None);
            assert_eq!(db.stats().ticker(Ticker::MultiGetBatches), 1);
            assert_eq!(db.stats().ticker(Ticker::MultiGetKeys), 4);
            db.close();
        });
    }

    #[test]
    fn reopen_recovers_from_wal() {
        Runtime::new().run(|| {
            let (db, fs) = open_db(small_opts());
            db.put(b"durable", b"yes").unwrap();
            db.put(b"another", b"val").unwrap();
            // No flush: data only in memtable + WAL.
            db.close();
            let db2 = Db::open(Arc::clone(&fs), small_opts()).unwrap();
            assert_eq!(db2.get(b"durable").unwrap(), Some(b"yes".to_vec()));
            assert_eq!(db2.get(b"another").unwrap(), Some(b"val".to_vec()));
            // New writes still work and sequences did not regress.
            db2.put(b"post", b"recovery").unwrap();
            assert_eq!(db2.get(b"post").unwrap(), Some(b"recovery".to_vec()));
            db2.close();
        });
    }

    #[test]
    fn reopen_recovers_ssts_and_wal_together() {
        Runtime::new().run(|| {
            let (db, fs) = open_db(small_opts());
            for i in 0..200u32 {
                db.put(format!("sst{i:04}").as_bytes(), b"on-disk").unwrap();
            }
            db.flush().unwrap();
            db.put(b"wal-only", b"in-log").unwrap();
            db.close();
            let db2 = Db::open(Arc::clone(&fs), small_opts()).unwrap();
            assert_eq!(db2.get(b"sst0100").unwrap(), Some(b"on-disk".to_vec()));
            assert_eq!(db2.get(b"wal-only").unwrap(), Some(b"in-log".to_vec()));
            db2.close();
        });
    }

    #[test]
    fn orphan_sst_is_swept_on_reopen() {
        Runtime::new().run(|| {
            let (db, fs) = open_db(small_opts());
            for i in 0..100u32 {
                db.put(format!("key{i:04}").as_bytes(), b"live").unwrap();
            }
            db.flush().unwrap();
            db.close();
            // Strand an SST the way a crash between table build and
            // MANIFEST install would: on disk, never referenced.
            let stray = sst_file_name("db", 900_000);
            let f = fs.create(&stray).unwrap();
            f.append(b"half-built table").unwrap();
            f.sync().unwrap();
            drop(f);
            let db2 = Db::open(Arc::clone(&fs), small_opts()).unwrap();
            assert!(!fs.exists(&stray), "orphan sst must be swept at open");
            assert!(db2.stats().ticker(Ticker::OrphanFilesDeleted) >= 1);
            // The sweep only reaps what the recovered version does not own.
            assert_eq!(db2.get(b"key0042").unwrap(), Some(b"live".to_vec()));
            db2.close();
        });
    }

    #[test]
    fn leftover_sst_numbers_are_reclaimed_before_recovery_allocates() {
        Runtime::new().run(|| {
            let (db, fs) = open_db(small_opts());
            for i in 0..10u32 {
                db.put(format!("key{i:02}").as_bytes(), b"walv").unwrap();
            }
            db.close(); // keys live only in the WAL: reopen must flush them
                        // Strand SSTs at the numbers recovery would allocate next, the
                        // way a power cut between a flush output's creation and its
                        // durable MANIFEST install leaves them.
            let max = fs
                .list("db/")
                .into_iter()
                .filter_map(|p| {
                    parse_file_number(&p, ".sst").or_else(|| parse_file_number(&p, ".log"))
                })
                .max()
                .unwrap();
            for n in max + 1..max + 12 {
                let f = fs.create(&sst_file_name("db", n)).unwrap();
                f.append(b"half-built flush output").unwrap();
                f.sync().unwrap();
            }
            let db2 = Db::open(Arc::clone(&fs), small_opts())
                .expect("reopen must not collide with leftover file numbers");
            for i in 0..10u32 {
                assert_eq!(
                    db2.get(format!("key{i:02}").as_bytes()).unwrap(),
                    Some(b"walv".to_vec())
                );
            }
            db2.close();
        });
    }

    #[test]
    fn torn_wal_tail_fails_absolute_but_not_point_in_time() {
        Runtime::new().run(|| {
            let (db, fs) = open_db(small_opts());
            db.put(b"k1", b"v1").unwrap();
            db.put(b"k2", b"v2").unwrap();
            db.close();
            // Append a torn frame to the live WAL: a header promising 255
            // payload bytes that never made it to disk.
            let log = fs
                .list("db/")
                .into_iter()
                .filter(|p| p.ends_with(".log"))
                .max()
                .unwrap();
            let f = fs.open(&log).unwrap();
            f.append(&[0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x00, 0x00])
                .unwrap();
            drop(f);
            let abs = DbOptions {
                wal_recovery_mode: WalRecoveryMode::AbsoluteConsistency,
                ..small_opts()
            };
            let err = Db::open(Arc::clone(&fs), abs).unwrap_err();
            assert!(err.is_corruption(), "got {err:?}");
            // Default point-in-time recovery drops the tail and keeps the
            // committed prefix.
            let db2 = Db::open(Arc::clone(&fs), small_opts()).unwrap();
            assert_eq!(db2.get(b"k1").unwrap(), Some(b"v1".to_vec()));
            assert_eq!(db2.get(b"k2").unwrap(), Some(b"v2".to_vec()));
            assert!(db2.stats().ticker(Ticker::WalDroppedTailBytes) >= 8);
            assert!(db2.stats().ticker(Ticker::WalRecoveredRecords) >= 2);
            db2.close();
        });
    }

    /// Builds a db whose only WAL holds puts `a`, `b`, `c` — then rewrites
    /// the log without the middle record, so every frame is CRC-valid but
    /// the sequence stream has an interior hole.
    fn fs_with_gapped_wal() -> Arc<SimFs> {
        let (db, fs) = open_db(small_opts());
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.put(b"c", b"3").unwrap();
        db.close();
        let log = fs
            .list("db/")
            .into_iter()
            .filter(|p| p.ends_with(".log"))
            .max()
            .unwrap();
        let records = scan_wal(&fs, &log, WalRecoveryMode::TolerateCorruptedTailRecords)
            .unwrap()
            .records;
        assert_eq!(records.len(), 3, "one record per serial put");
        let number = parse_file_number(&log, ".log").unwrap();
        fs.delete(&log).unwrap();
        let w = WalWriter::create(&fs, "db", number, 0).unwrap();
        for (i, rec) in records.iter().enumerate() {
            if i != 1 {
                w.append(rec, true).unwrap();
            }
        }
        fs
    }

    #[test]
    fn sequence_gap_fails_absolute_consistency_open() {
        Runtime::new().run(|| {
            let fs = fs_with_gapped_wal();
            let abs = DbOptions {
                wal_recovery_mode: WalRecoveryMode::AbsoluteConsistency,
                ..small_opts()
            };
            let err = Db::open(Arc::clone(&fs), abs).unwrap_err();
            assert!(err.is_corruption(), "got {err:?}");
            assert!(format!("{err}").contains("sequence gap"), "{err}");
        });
    }

    #[test]
    fn sequence_gap_stops_point_in_time_recovery() {
        Runtime::new().run(|| {
            let fs = fs_with_gapped_wal();
            let db = Db::open(Arc::clone(&fs), small_opts()).unwrap();
            // The consistent prefix ends before the hole: only `a` is
            // recovered; the record *after* the gap must not be replayed
            // even though its checksum is fine.
            assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
            assert_eq!(db.get(b"b").unwrap(), None);
            assert_eq!(db.get(b"c").unwrap(), None);
            assert_eq!(db.stats().ticker(Ticker::WalRecoveredRecords), 1);
            assert!(db.stats().ticker(Ticker::WalDroppedTailBytes) > 0);
            db.close();
        });
    }

    #[test]
    fn sequence_gap_is_counted_but_replayed_under_skip_any() {
        Runtime::new().run(|| {
            let fs = fs_with_gapped_wal();
            let opts = DbOptions {
                wal_recovery_mode: WalRecoveryMode::SkipAnyCorruptedRecords,
                ..small_opts()
            };
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            // Salvage-everything mode: both surviving records apply, and
            // the hole is surfaced through the skip ticker.
            assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
            assert_eq!(db.get(b"b").unwrap(), None);
            assert_eq!(db.get(b"c").unwrap(), Some(b"3".to_vec()));
            assert!(db.stats().ticker(Ticker::WalSkippedCorruptRecords) >= 1);
            db.close();
        });
    }

    #[test]
    fn sequence_gap_is_invisible_to_tolerate_mode() {
        Runtime::new().run(|| {
            let fs = fs_with_gapped_wal();
            let opts = DbOptions {
                wal_recovery_mode: WalRecoveryMode::TolerateCorruptedTailRecords,
                ..small_opts()
            };
            // The legacy mode has no sequence checks at all: both records
            // replay and nothing is reported.
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
            assert_eq!(db.get(b"c").unwrap(), Some(b"3".to_vec()));
            assert_eq!(db.stats().ticker(Ticker::WalSkippedCorruptRecords), 0);
            db.close();
        });
    }

    #[test]
    fn wal_disabled_loses_unflushed_data_on_reopen() {
        Runtime::new().run(|| {
            let opts = DbOptions {
                enable_wal: false,
                ..small_opts()
            };
            let (db, fs) = open_db(opts.clone());
            db.put(b"volatile", b"gone").unwrap();
            db.close();
            let db2 = Db::open(Arc::clone(&fs), opts).unwrap();
            assert_eq!(db2.get(b"volatile").unwrap(), None);
            db2.close();
        });
    }

    #[test]
    fn scan_sees_merged_view() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            for i in 0..300u32 {
                db.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.flush().unwrap();
            // Overwrite some in the new memtable, delete others.
            db.put(b"k0000", b"fresh").unwrap();
            db.delete(b"k0001").unwrap();
            let mut scan = db.scan().unwrap();
            assert!(scan.seek_to_first().unwrap());
            assert_eq!(scan.key(), b"k0000");
            assert_eq!(scan.value(), b"fresh");
            assert!(scan.next().unwrap());
            assert_eq!(scan.key(), b"k0002", "deleted key skipped");
            let mut count = 2;
            while scan.next().unwrap() {
                count += 1;
            }
            assert_eq!(count, 299, "300 keys minus 1 deletion");
            // Seek.
            assert!(scan.seek(b"k0150").unwrap());
            assert_eq!(scan.key(), b"k0150");
            drop(scan);
            db.close();
        });
    }

    #[test]
    fn snapshot_isolation() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            db.put(b"k", b"v1").unwrap();
            let snap = db.snapshot();
            db.put(b"k", b"v2").unwrap();
            assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
            assert_eq!(
                db.get_at(b"k", snap.sequence()).unwrap(),
                Some(b"v1".to_vec())
            );
            drop(snap);
            db.close();
        });
    }

    #[test]
    fn concurrent_clients() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            let db = Arc::new(db);
            let mut handles = Vec::new();
            for t in 0..8u32 {
                let db = Arc::clone(&db);
                handles.push(xlsm_sim::spawn(&format!("client{t}"), move || {
                    for i in 0..200u32 {
                        let key = format!("t{t}-k{i:04}");
                        db.put(key.as_bytes(), key.as_bytes()).unwrap();
                        if i % 3 == 0 {
                            let read_key = format!("t{t}-k{:04}", i / 2);
                            let v = db.get(read_key.as_bytes()).unwrap();
                            assert_eq!(v, Some(read_key.into_bytes()));
                        }
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(db.stats().ticker(Ticker::Puts), 8 * 200);
            db.close();
        });
    }

    #[test]
    fn write_stalls_under_memtable_pressure() {
        Runtime::new().run(|| {
            // Tiny memtables, very slow device for flushing: writes must
            // stall on the memtable budget but still complete correctly.
            let fs = SimFs::new(
                SimDevice::shared(profiles::intel_530_sata()),
                FsOptions::default(),
            );
            let opts = DbOptions {
                write_buffer_size: 64 << 10,
                target_file_size_base: 64 << 10,
                max_bytes_for_level_base: 256 << 10,
                ..DbOptions::default()
            };
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            let value = vec![b'x'; 1024];
            for i in 0..512u32 {
                db.put(format!("k{i:05}").as_bytes(), &value).unwrap();
            }
            assert!(
                db.stats().ticker(Ticker::StallMicros) > 0
                    || db.stats().ticker(Ticker::FlushCount) > 0,
                "expected stall or flush activity"
            );
            db.flush().unwrap();
            db.wait_for_compactions();
            assert_eq!(db.get(b"k00000").unwrap(), Some(value.clone()));
            db.close();
        });
    }

    #[test]
    fn l0_slowdown_throttles_writes() {
        Runtime::new().run(|| {
            // Very low slowdown trigger and no compaction workers able to
            // keep up (0 is invalid; use 1 worker + huge compaction debt).
            let opts = DbOptions {
                write_buffer_size: 64 << 10,
                target_file_size_base: 64 << 10,
                level0_file_num_compaction_trigger: 2,
                level0_slowdown_writes_trigger: 3,
                level0_stop_writes_trigger: 8,
                max_background_compactions: 1,
                ..DbOptions::default()
            };
            let fs = SimFs::new(
                SimDevice::shared(profiles::intel_530_sata()),
                FsOptions::default(),
            );
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            let value = vec![b'z'; 1024];
            for i in 0..1500u32 {
                db.put(format!("k{i:06}").as_bytes(), &value).unwrap();
            }
            assert!(
                db.stats().ticker(Ticker::StallDelayedWrites) > 0,
                "L0 slowdown should have delayed some writes"
            );
            db.flush().unwrap();
            db.wait_for_compactions();
            db.close();
        });
    }

    #[test]
    fn stall_breakdown_reconciles_with_write_latency() {
        // The tentpole's self-check: under a throttle-prone workload, the
        // summed per-op components (queue wait + WAL + memtable + delay +
        // stop) must explain the observed end-to-end write latency to
        // within 10%. The unattributed remainder is the fixed per-write
        // setup cost plus memtable-switch bookkeeping.
        Runtime::new().run(|| {
            let opts = DbOptions {
                write_buffer_size: 64 << 10,
                target_file_size_base: 64 << 10,
                level0_file_num_compaction_trigger: 2,
                level0_slowdown_writes_trigger: 3,
                level0_stop_writes_trigger: 8,
                max_background_compactions: 1,
                ..DbOptions::default()
            };
            let fs = SimFs::new(
                SimDevice::shared(profiles::intel_530_sata()),
                FsOptions::default(),
            );
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            let value = vec![b'z'; 1024];
            for i in 0..1500u32 {
                db.put(format!("k{i:06}").as_bytes(), &value).unwrap();
            }
            let m = db.metrics();
            assert_eq!(m.stall.ops, 1500);
            assert!(
                m.stall.delay_sleep_ns > 0,
                "workload must actually throttle: {:?}",
                m.stall
            );
            let coverage = m.stall_coverage();
            assert!(
                (coverage - 1.0).abs() <= 0.10,
                "breakdown must reconcile with observed latency within 10%: \
                 coverage={coverage:.4} totals={:?}",
                m.stall
            );
            // The event log saw the controller move.
            assert!(
                m.stall_events.iter().any(|e| e.level != StallLevel::Clear),
                "expected throttling transitions in the event log"
            );
            // Device-side time is threaded into the same snapshot.
            assert!(m.device.writes > 0);
            db.flush().unwrap();
            db.wait_for_compactions();
            db.close();
        });
    }

    #[test]
    fn metrics_drain_stall_events_once() {
        Runtime::new().run(|| {
            let fs = SimFs::new(
                SimDevice::shared(profiles::intel_530_sata()),
                FsOptions::default(),
            );
            let opts = DbOptions {
                write_buffer_size: 64 << 10,
                target_file_size_base: 64 << 10,
                level0_file_num_compaction_trigger: 2,
                level0_slowdown_writes_trigger: 3,
                level0_stop_writes_trigger: 8,
                ..DbOptions::default()
            };
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            let value = vec![b'q'; 1024];
            for i in 0..600u32 {
                db.put(format!("k{i:06}").as_bytes(), &value).unwrap();
            }
            let first = db.metrics();
            assert!(
                !first.stall_events.is_empty(),
                "throttled run must log events"
            );
            let second = db.metrics();
            assert!(
                second.stall_events.is_empty(),
                "drained events must not repeat"
            );
            assert_eq!(second.stall.events_pushed, first.stall.events_pushed);
            assert_eq!(second.tickers.get(Ticker::Puts), 600);
            assert!(second.wal_device.is_none(), "shared device: no WAL split");
            db.flush().unwrap();
            db.wait_for_compactions();
            db.close();
        });
    }

    #[test]
    fn batched_writes_are_atomic() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            let mut batch = WriteBatch::new();
            batch.put(b"a", b"1");
            batch.put(b"b", b"2");
            batch.delete(b"a");
            db.write(batch).unwrap();
            assert_eq!(db.get(b"a").unwrap(), None);
            assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
            db.close();
        });
    }

    #[test]
    fn stats_report_mentions_key_sections() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            for i in 0..200u32 {
                db.put(format!("k{i:04}").as_bytes(), &[b'v'; 200]).unwrap();
            }
            db.flush().unwrap();
            let _ = db.get(b"k0001").unwrap();
            let report = db.stats_report();
            for needle in [
                "ops:",
                "latency us:",
                "shape:",
                "flush:",
                "stalls:",
                "caches:",
                "write groups:",
            ] {
                assert!(report.contains(needle), "missing {needle} in:\n{report}");
            }
            db.close();
        });
    }

    #[test]
    fn shutdown_rejects_new_writes() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            db.put(b"k", b"v").unwrap();
            db.close();
            assert!(matches!(db.put(b"k2", b"v"), Err(DbError::ShuttingDown)));
        });
    }

    #[test]
    fn set_write_buffer_size_changes_l0_geometry() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            assert_eq!(db.write_buffer_size(), 64 << 10);
            db.set_write_buffer_size(256 << 10);
            assert_eq!(db.write_buffer_size(), 256 << 10);
            // Below the floor clamps.
            db.set_write_buffer_size(1);
            assert_eq!(db.write_buffer_size(), 64 << 10);
            db.close();
        });
    }

    #[test]
    fn dropped_tombstone_must_not_resurrect_older_value() {
        // Regression: when a droppable tombstone is the FIRST version of a
        // key seen by a compaction, the older value beneath it must still
        // be shadowed (the per-key state reset must precede the drop
        // decision).
        Runtime::new().run(|| {
            let (db, _fs) = open_db(DbOptions {
                // Trigger compaction with few files so the tombstone file
                // and the value file merge.
                level0_file_num_compaction_trigger: 2,
                ..small_opts()
            });
            for i in 0..300u32 {
                db.put(format!("k{i:05}").as_bytes(), &[b'v'; 128]).unwrap();
            }
            db.flush().unwrap();
            for i in 0..300u32 {
                db.delete(format!("k{i:05}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
            db.wait_for_compactions();
            assert!(
                db.stats().ticker(Ticker::CompactionCount) > 0,
                "test requires a real compaction"
            );
            for i in 0..300u32 {
                assert_eq!(
                    db.get(format!("k{i:05}").as_bytes()).unwrap(),
                    None,
                    "key k{i:05} resurrected after compaction"
                );
            }
            let mut scan = db.scan().unwrap();
            assert!(!scan.seek_to_first().unwrap(), "scan must be empty");
            drop(scan);
            db.close();
        });
    }

    #[test]
    fn tombstones_collapse_at_bottom_level() {
        Runtime::new().run(|| {
            let (db, _fs) = open_db(small_opts());
            for i in 0..400u32 {
                db.put(format!("k{i:05}").as_bytes(), &vec![b'v'; 256])
                    .unwrap();
            }
            db.flush().unwrap();
            for i in 0..400u32 {
                db.delete(format!("k{i:05}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
            db.wait_for_compactions();
            for i in (0..400u32).step_by(37) {
                assert_eq!(db.get(format!("k{i:05}").as_bytes()).unwrap(), None);
            }
            let mut scan = db.scan().unwrap();
            assert!(!scan.seek_to_first().unwrap(), "everything was deleted");
            drop(scan);
            db.close();
        });
    }
}
