//! Bloom filters (LevelDB-compatible double hashing).
//!
//! Note: per `db_bench` defaults (`--bloom_bits=-1`), the paper's experiments
//! run **without** bloom filters — which is precisely why the Level-0 file
//! count hurts read latency so much (Finding #2). The filters here exist for
//! the ablation benches (`readpath`) and downstream users:
//!
//! - [`BloomFilter`] / [`BloomBuilder`]: the serialized SST filter-block
//!   format. The builder is incremental — it retains one 32-bit hash per
//!   key instead of the key bytes, so a flush or compaction no longer holds
//!   every user key in memory until `finish()`.
//! - [`ConcurrentBloom`]: an atomic-bit-array whole-key filter for the
//!   memtable, safe to populate from the concurrent insert path.
//!
//! Sizing always counts **distinct** hashes: the same user key re-added
//! across blocks or overwrites must not inflate the bit array (it would
//! skew the false-positive-rate math that picks `k`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Builds and queries a bloom filter over a set of keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits_per_key: usize,
    k: usize,
}

fn bloom_hash(key: &[u8]) -> u32 {
    // LevelDB's Hash() with fixed seed.
    const SEED: u32 = 0xbc9f_1d34;
    const M: u32 = 0xc6a4_a793;
    let mut h = SEED ^ (key.len() as u32).wrapping_mul(M);
    let mut chunks = key.chunks_exact(4);
    for c in &mut chunks {
        let w = u32::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut w = 0u32;
        for (i, &b) in rest.iter().enumerate() {
            w |= (b as u32) << (8 * i);
        }
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 24;
    }
    h
}

fn probes_for(bits_per_key: usize) -> usize {
    // k = bits_per_key * ln2, clamped like LevelDB.
    (((bits_per_key as f64) * 0.69) as usize).clamp(1, 30)
}

/// Serializes a filter sized by the number of **distinct** hashes.
/// `hashes` is deduplicated in place; bit-setting is order-independent, so
/// one-shot and incremental construction produce identical bytes.
fn build_from_hashes(bits_per_key: usize, k: usize, hashes: &mut Vec<u32>) -> Vec<u8> {
    hashes.sort_unstable();
    hashes.dedup();
    let bits = (hashes.len() * bits_per_key).max(64);
    let bytes = bits.div_ceil(8);
    let bits = bytes * 8;
    let mut array = vec![0u8; bytes + 1];
    array[bytes] = k as u8;
    for &hash in hashes.iter() {
        let mut h = hash;
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bitpos = (h as usize) % bits;
            array[bitpos / 8] |= 1 << (bitpos % 8);
            h = h.wrapping_add(delta);
        }
    }
    array
}

impl BloomFilter {
    /// Creates a builder with `bits_per_key` (10 is the common choice,
    /// ~1 % false positives).
    pub fn new(bits_per_key: usize) -> BloomFilter {
        BloomFilter {
            bits_per_key,
            k: probes_for(bits_per_key),
        }
    }

    /// Serializes a filter block for `keys` (duplicates are collapsed
    /// before sizing the bit array).
    pub fn build(&self, keys: &[&[u8]]) -> Vec<u8> {
        let mut hashes: Vec<u32> = keys.iter().map(|k| bloom_hash(k)).collect();
        build_from_hashes(self.bits_per_key, self.k, &mut hashes)
    }

    /// Tests membership against a serialized filter block.
    pub fn may_contain(filter: &[u8], key: &[u8]) -> bool {
        if filter.len() < 2 {
            return true; // degenerate filter matches everything
        }
        let bytes = filter.len() - 1;
        let bits = bytes * 8;
        let k = filter[bytes] as usize;
        if k > 30 {
            return true; // reserved for future encodings
        }
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bitpos = (h as usize) % bits;
            if filter[bitpos / 8] & (1 << (bitpos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

/// Incremental filter construction: feed keys as they stream past (SST
/// builds see them in sorted order) and serialize at the end. Holds a
/// 4-byte hash per key — not the key bytes — so builder memory is O(keys)
/// small constants rather than a second copy of the input.
#[derive(Debug, Default)]
pub struct BloomBuilder {
    bits_per_key: usize,
    k: usize,
    hashes: Vec<u32>,
    last: Option<Vec<u8>>,
}

impl BloomBuilder {
    /// Creates an incremental builder with `bits_per_key`.
    pub fn new(bits_per_key: usize) -> BloomBuilder {
        BloomBuilder {
            bits_per_key,
            k: probes_for(bits_per_key),
            hashes: Vec::new(),
            last: None,
        }
    }

    /// Adds one key. Consecutive duplicates are skipped eagerly (sorted
    /// input makes duplicates adjacent); any stragglers are collapsed at
    /// [`BloomBuilder::finish`].
    pub fn add_key(&mut self, key: &[u8]) {
        if self.last.as_deref() == Some(key) {
            return;
        }
        self.hashes.push(bloom_hash(key));
        match &mut self.last {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(key);
            }
            None => self.last = Some(key.to_vec()),
        }
    }

    /// Number of keys retained (post adjacent-duplicate skip).
    pub fn num_hashes(&self) -> usize {
        self.hashes.len()
    }

    /// Bytes of heap the builder currently retains for filter state.
    pub fn memory_bytes(&self) -> usize {
        self.hashes.capacity() * std::mem::size_of::<u32>()
            + self.last.as_ref().map_or(0, |k| k.capacity())
    }

    /// Serializes the filter block; byte-identical to
    /// [`BloomFilter::build`] over the same key set.
    pub fn finish(mut self) -> Vec<u8> {
        build_from_hashes(self.bits_per_key, self.k, &mut self.hashes)
    }
}

/// A fixed-size whole-key bloom over an atomic bit array, for the memtable.
///
/// Bits are ORed in with `fetch_or`, so concurrent inserters never lose a
/// bit: once [`ConcurrentBloom::insert`] returns, every probe of that key
/// observes all `k` bits set (no false negatives). The array is sized once
/// at construction from the expected entry count — memtables have a byte
/// budget, so the bound is known up front; overshooting the estimate only
/// raises the false-positive rate, never correctness.
#[derive(Debug)]
pub struct ConcurrentBloom {
    words: Box<[AtomicU64]>,
    nbits: usize,
    k: usize,
}

impl ConcurrentBloom {
    /// A filter sized for `expected_keys` at `bits_per_key`.
    pub fn new(bits_per_key: usize, expected_keys: usize) -> ConcurrentBloom {
        let nbits = (expected_keys * bits_per_key).max(64).next_multiple_of(64);
        let words = (0..nbits / 64).map(|_| AtomicU64::new(0)).collect();
        ConcurrentBloom {
            words,
            nbits,
            k: probes_for(bits_per_key),
        }
    }

    /// Marks `key` present. Safe to call from concurrent inserters.
    pub fn insert(&self, key: &[u8]) {
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..self.k {
            let bitpos = (h as usize) % self.nbits;
            self.words[bitpos / 64].fetch_or(1 << (bitpos % 64), Ordering::Relaxed);
            h = h.wrapping_add(delta);
        }
    }

    /// Tests membership (no false negatives for inserted keys).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..self.k {
            let bitpos = (h as usize) % self.nbits;
            if self.words[bitpos / 64].load(Ordering::Relaxed) & (1 << (bitpos % 64)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }

    /// Bytes of the bit array (for memtable memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.nbits / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_filter_rejects_everything() {
        // A filter over zero keys correctly reports nothing as present.
        let f = BloomFilter::new(10).build(&[]);
        assert!(!BloomFilter::may_contain(&f, b"anything"));
        // But a degenerate (too-short) filter blob is permissive.
        assert!(BloomFilter::may_contain(&[], b"anything"));
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("key{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = BloomFilter::new(10).build(&refs);
        for k in &keys {
            assert!(BloomFilter::may_contain(&f, k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let keys: Vec<Vec<u8>> = (0..2000u32)
            .map(|i| format!("in{i:06}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = BloomFilter::new(10).build(&refs);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if BloomFilter::may_contain(&f, format!("out{i:06}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn duplicate_keys_do_not_inflate_filter() {
        // Regression: sizing by raw key count let duplicates balloon the
        // bit array. 200 distinct keys, each added 20 times, must produce
        // exactly the filter of the 200 distinct keys.
        let distinct: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("k{i:04}").into_bytes())
            .collect();
        let mut dup_refs: Vec<&[u8]> = Vec::new();
        for k in &distinct {
            for _ in 0..20 {
                dup_refs.push(k.as_slice());
            }
        }
        let refs: Vec<&[u8]> = distinct.iter().map(|k| k.as_slice()).collect();
        let bloom = BloomFilter::new(10);
        let from_dups = bloom.build(&dup_refs);
        let from_distinct = bloom.build(&refs);
        assert_eq!(
            from_dups, from_distinct,
            "duplicate-heavy input must size and fill like the distinct set"
        );
        // Sanity: sized by ~200 keys (251 bytes incl. k byte), not ~4000.
        assert!(
            from_dups.len() < 400,
            "filter inflated: {}",
            from_dups.len()
        );
    }

    #[test]
    fn incremental_builder_matches_one_shot() {
        let keys: Vec<Vec<u8>> = (0..300u32)
            .map(|i| format!("key{:04}", i / 3).into_bytes()) // heavy adjacent dups
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let one_shot = BloomFilter::new(10).build(&refs);
        let mut b = BloomBuilder::new(10);
        for k in &keys {
            b.add_key(k);
        }
        assert_eq!(b.num_hashes(), 100, "adjacent duplicates skipped");
        assert_eq!(b.finish(), one_shot);
    }

    #[test]
    fn builder_memory_is_hash_sized() {
        let mut b = BloomBuilder::new(10);
        let mut total_key_bytes = 0usize;
        for i in 0..10_000u32 {
            let k = format!("user-key-with-some-length-{i:08}").into_bytes();
            total_key_bytes += k.len();
            b.add_key(&k);
        }
        // 4 bytes per key (plus the single last-key scratch buffer), far
        // below retaining the keys themselves.
        assert!(
            b.memory_bytes() < total_key_bytes / 4,
            "builder retains too much: {} vs {} key bytes",
            b.memory_bytes(),
            total_key_bytes
        );
    }

    #[test]
    fn concurrent_bloom_no_false_negatives_and_filters_misses() {
        let f = ConcurrentBloom::new(10, 2000);
        for i in 0..2000u32 {
            f.insert(format!("in{i:06}").as_bytes());
        }
        for i in 0..2000u32 {
            assert!(f.may_contain(format!("in{i:06}").as_bytes()));
        }
        let mut fp = 0;
        for i in 0..10_000u32 {
            if f.may_contain(format!("out{i:06}").as_bytes()) {
                fp += 1;
            }
        }
        assert!(fp < 300, "false positive rate too high: {fp}/10000");
    }

    proptest! {
        #[test]
        fn membership_holds_for_arbitrary_keys(
            keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 0..40), 1..200)
        ) {
            let keys: Vec<Vec<u8>> = keys.into_iter().collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let f = BloomFilter::new(10).build(&refs);
            for k in &keys {
                prop_assert!(BloomFilter::may_contain(&f, k));
            }
        }

        #[test]
        fn builder_equals_one_shot_for_arbitrary_sorted_keys(
            keys in prop::collection::btree_set(prop::collection::vec(any::<u8>(), 0..24), 0..120),
            repeat in 1usize..4,
        ) {
            // Feed each key `repeat` times in sorted order (as SST builds do).
            let keys: Vec<Vec<u8>> = keys.into_iter().collect();
            let mut b = BloomBuilder::new(10);
            let mut refs: Vec<&[u8]> = Vec::new();
            for k in &keys {
                for _ in 0..repeat {
                    b.add_key(k);
                    refs.push(k.as_slice());
                }
            }
            prop_assert_eq!(b.finish(), BloomFilter::new(10).build(&refs));
        }
    }
}
