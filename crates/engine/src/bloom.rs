//! Bloom filter (LevelDB-compatible double hashing).
//!
//! Note: per `db_bench` defaults (`--bloom_bits=-1`), the paper's experiments
//! run **without** bloom filters — which is precisely why the Level-0 file
//! count hurts read latency so much (Finding #2). The filter is implemented
//! for the ablation benches and for downstream users.

/// Builds and queries a bloom filter over a set of keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits_per_key: usize,
    k: usize,
}

fn bloom_hash(key: &[u8]) -> u32 {
    // LevelDB's Hash() with fixed seed.
    const SEED: u32 = 0xbc9f_1d34;
    const M: u32 = 0xc6a4_a793;
    let mut h = SEED ^ (key.len() as u32).wrapping_mul(M);
    let mut chunks = key.chunks_exact(4);
    for c in &mut chunks {
        let w = u32::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut w = 0u32;
        for (i, &b) in rest.iter().enumerate() {
            w |= (b as u32) << (8 * i);
        }
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 24;
    }
    h
}

impl BloomFilter {
    /// Creates a builder with `bits_per_key` (10 is the common choice,
    /// ~1 % false positives).
    pub fn new(bits_per_key: usize) -> BloomFilter {
        // k = bits_per_key * ln2, clamped like LevelDB.
        let k = ((bits_per_key as f64) * 0.69) as usize;
        BloomFilter {
            bits_per_key,
            k: k.clamp(1, 30),
        }
    }

    /// Serializes a filter block for `keys`.
    pub fn build(&self, keys: &[&[u8]]) -> Vec<u8> {
        let bits = (keys.len() * self.bits_per_key).max(64);
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;
        let mut array = vec![0u8; bytes + 1];
        array[bytes] = self.k as u8;
        for key in keys {
            let mut h = bloom_hash(key);
            let delta = h.rotate_right(17);
            for _ in 0..self.k {
                let bitpos = (h as usize) % bits;
                array[bitpos / 8] |= 1 << (bitpos % 8);
                h = h.wrapping_add(delta);
            }
        }
        array
    }

    /// Tests membership against a serialized filter block.
    pub fn may_contain(filter: &[u8], key: &[u8]) -> bool {
        if filter.len() < 2 {
            return true; // degenerate filter matches everything
        }
        let bytes = filter.len() - 1;
        let bits = bytes * 8;
        let k = filter[bytes] as usize;
        if k > 30 {
            return true; // reserved for future encodings
        }
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bitpos = (h as usize) % bits;
            if filter[bitpos / 8] & (1 << (bitpos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_filter_rejects_everything() {
        // A filter over zero keys correctly reports nothing as present.
        let f = BloomFilter::new(10).build(&[]);
        assert!(!BloomFilter::may_contain(&f, b"anything"));
        // But a degenerate (too-short) filter blob is permissive.
        assert!(BloomFilter::may_contain(&[], b"anything"));
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("key{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = BloomFilter::new(10).build(&refs);
        for k in &keys {
            assert!(BloomFilter::may_contain(&f, k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let keys: Vec<Vec<u8>> = (0..2000u32)
            .map(|i| format!("in{i:06}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = BloomFilter::new(10).build(&refs);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if BloomFilter::may_contain(&f, format!("out{i:06}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    proptest! {
        #[test]
        fn membership_holds_for_arbitrary_keys(
            keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 0..40), 1..200)
        ) {
            let keys: Vec<Vec<u8>> = keys.into_iter().collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let f = BloomFilter::new(10).build(&refs);
            for k in &keys {
                prop_assert!(BloomFilter::may_contain(&f, k));
            }
        }
    }
}
