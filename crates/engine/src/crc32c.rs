//! CRC32-C (Castagnoli) — software table implementation, used by WAL records
//! and SST blocks exactly as in LevelDB/RocksDB.

const POLY: u32 = 0x82F6_3B78; // reversed Castagnoli polynomial

fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();

/// CRC32-C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC32-C over a stream of chunks — used for whole-file
/// checksums (SSTs, WAL segments) where buffering the entire file just to
/// hash it would be wasteful. `Hasher::new().update(a).update(b).finish()`
/// equals `crc32c(a ++ b)`.
#[derive(Clone, Copy, Debug)]
pub struct Hasher {
    /// Internal (pre-inversion) CRC state.
    state: u32,
}

impl Default for Hasher {
    fn default() -> Hasher {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher (equivalent to having hashed zero bytes).
    pub fn new() -> Hasher {
        Hasher { state: !0u32 }
    }

    /// Feeds `data` into the running CRC.
    pub fn update(&mut self, data: &[u8]) -> &mut Hasher {
        let table = TABLE.get_or_init(make_table);
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xff) as usize];
        }
        self.state = crc;
        self
    }

    /// The CRC32-C of everything fed so far (does not consume the hasher;
    /// more `update` calls may follow).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// LevelDB-style masked CRC (so that CRCs stored alongside data do not
/// accidentally validate as CRCs of themselves).
pub fn masked(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(0xa282_ead8)
}

/// Inverse of [`masked`].
pub fn unmask(masked_crc: u32) -> u32 {
    let rot = masked_crc.wrapping_sub(0xa282_ead8);
    rot.rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn incremental_hasher_matches_one_shot() {
        let data: Vec<u8> = (0..255u8).cycle().take(4096).collect();
        for split in [0usize, 1, 7, 255, 2048, 4095, 4096] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32c(&data), "split at {split}");
        }
        // finish() is non-destructive.
        let mut h = Hasher::new();
        h.update(b"abc");
        let first = h.finish();
        assert_eq!(h.finish(), first);
        h.update(b"def");
        assert_eq!(h.finish(), crc32c(b"abcdef"));
    }

    #[test]
    fn mask_roundtrip_known() {
        let c = crc32c(b"foo");
        assert_ne!(masked(c), c);
        assert_eq!(unmask(masked(c)), c);
    }

    proptest! {
        #[test]
        fn mask_roundtrip(v in any::<u32>()) {
            prop_assert_eq!(unmask(masked(v)), v);
        }

        #[test]
        fn different_data_different_crc(a in prop::collection::vec(any::<u8>(), 1..64),
                                        b in prop::collection::vec(any::<u8>(), 1..64)) {
            prop_assume!(a != b);
            // Not a guarantee, but with proptest's case counts a collision
            // would indicate a broken implementation.
            prop_assert_ne!(crc32c(&a), crc32c(&b));
        }
    }
}
