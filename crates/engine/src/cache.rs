//! Sharded LRU block cache (decoded data blocks).
//!
//! Keyed by `(file number, block offset)`. Capacity is charged by the
//! on-disk block size. Deterministic: recency is a logical tick counter and
//! eviction scans a queue with lazy invalidation.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: `(file number, block offset within file)`.
pub type BlockKey = (u64, u64);

/// A decoded data block: sorted `(internal key, value)` pairs.
#[derive(Debug, Default)]
pub struct Block {
    /// Entries in internal-key order.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Serialized size (cache charge).
    pub raw_size: usize,
}

struct Shard {
    map: HashMap<BlockKey, (Arc<Block>, u64)>, // value, last tick
    queue: VecDeque<(BlockKey, u64)>,
    used: usize,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn get(&mut self, key: &BlockKey) -> Option<Arc<Block>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((block, last)) = self.map.get_mut(key) {
            *last = tick;
            let b = Arc::clone(block);
            self.queue.push_back((*key, tick));
            self.drain_stale();
            Some(b)
        } else {
            None
        }
    }

    /// Compacts the recency queue once stale entries dominate. Every touch
    /// pushes a `(key, tick)` entry but only the newest tick per key is
    /// live, so a read-heavy cache-hit workload would otherwise grow the
    /// queue without bound. Rebuilding keeps exactly one entry per cached
    /// block and at least halves the queue, so the cost is amortized O(1)
    /// per touch.
    fn drain_stale(&mut self) {
        if self.queue.len() > 2 * self.map.len() {
            self.queue
                .retain(|(k, t)| matches!(self.map.get(k), Some((_, last)) if last == t));
        }
    }

    fn insert(&mut self, key: BlockKey, block: Arc<Block>) {
        self.tick += 1;
        let tick = self.tick;
        let charge = block.raw_size;
        self.used += charge;
        if let Some((old, _)) = self.map.insert(key, (block, tick)) {
            // Replacement: release the displaced entry's charge. The new
            // block may be a different size (e.g. the file was rewritten
            // under the same number by repair), so the charges are not
            // interchangeable.
            self.used -= old.raw_size;
        }
        self.queue.push_back((key, tick));
        while self.used > self.capacity {
            match self.queue.pop_front() {
                Some((k, t)) => {
                    let evict = matches!(self.map.get(&k), Some((_, last)) if *last == t);
                    if evict {
                        if let Some((b, _)) = self.map.remove(&k) {
                            self.used -= b.raw_size;
                        }
                    }
                }
                None => break,
            }
        }
        self.drain_stale();
    }

    fn remove_file(&mut self, file: u64) {
        let keys: Vec<BlockKey> = self.map.keys().filter(|k| k.0 == file).copied().collect();
        for k in keys {
            if let Some((b, _)) = self.map.remove(&k) {
                self.used -= b.raw_size;
            }
        }
    }
}

/// The sharded LRU cache.
pub struct BlockCache {
    shards: Vec<parking_lot::Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockCache")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

const SHARDS: usize = 16;

impl BlockCache {
    /// Creates a cache with a total byte capacity.
    pub fn new(capacity_bytes: usize) -> Arc<BlockCache> {
        let per_shard = (capacity_bytes / SHARDS).max(4096);
        Arc::new(BlockCache {
            shards: (0..SHARDS)
                .map(|_| {
                    parking_lot::Mutex::new(Shard {
                        map: HashMap::new(),
                        queue: VecDeque::new(),
                        used: 0,
                        capacity: per_shard,
                        tick: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn shard_of(key: &BlockKey) -> usize {
        // Cheap deterministic mix of file number and offset.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        (h >> 58) as usize % SHARDS
    }

    /// Looks up a block.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<Block>> {
        let r = self.shards[Self::shard_of(key)].lock().get(key);
        if r.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Inserts a block (evicting LRU entries to fit).
    pub fn insert(&self, key: BlockKey, block: Arc<Block>) {
        self.shards[Self::shard_of(&key)].lock().insert(key, block);
    }

    /// Drops all blocks of a deleted file.
    pub fn remove_file(&self, file: u64) {
        for s in &self.shards {
            s.lock().remove_file(file);
        }
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Arc<Block> {
        Arc::new(Block {
            entries: vec![],
            raw_size: n,
        })
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = BlockCache::new(1 << 20);
        c.insert((1, 0), block(100));
        assert!(c.get(&(1, 0)).is_some());
        assert!(c.get(&(1, 4096)).is_none());
        let (h, m) = c.counters();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity() {
        let c = BlockCache::new(SHARDS * 4096); // 4096 per shard
                                                // Insert many blocks mapping to assorted shards.
        for i in 0..512u64 {
            c.insert((i, i * 4096), block(1024));
        }
        assert!(
            c.used_bytes() <= SHARDS * 4096 + 1024,
            "used {} exceeds capacity",
            c.used_bytes()
        );
    }

    #[test]
    fn lru_keeps_recent() {
        let c = BlockCache::new(SHARDS * 4096);
        // Work within a single shard by reusing one key pattern: find two
        // keys in the same shard.
        let mut same_shard = Vec::new();
        let target = BlockCache::shard_of(&(0, 0));
        for i in 0..10_000u64 {
            if BlockCache::shard_of(&(i, 0)) == target {
                same_shard.push((i, 0));
                if same_shard.len() == 5 {
                    break;
                }
            }
        }
        assert!(same_shard.len() >= 4);
        c.insert(same_shard[0], block(2000));
        c.insert(same_shard[1], block(2000));
        // Touch [0] so [1] is LRU.
        assert!(c.get(&same_shard[0]).is_some());
        c.insert(same_shard[2], block(2000)); // must evict [1]
        assert!(c.get(&same_shard[0]).is_some(), "recently used survived");
        assert!(c.get(&same_shard[1]).is_none(), "LRU entry evicted");
    }

    #[test]
    fn hit_heavy_workload_keeps_recency_queue_bounded() {
        let c = BlockCache::new(1 << 20);
        c.insert((1, 0), block(100));
        c.insert((1, 4096), block(100));
        for _ in 0..10_000 {
            assert!(c.get(&(1, 0)).is_some());
            assert!(c.get(&(1, 4096)).is_some());
        }
        let queued: usize = c.shards.iter().map(|s| s.lock().queue.len()).sum();
        let live: usize = c.shards.iter().map(|s| s.lock().map.len()).sum();
        assert!(
            queued <= 2 * live + 2,
            "recency queue grew unbounded: {queued} entries for {live} blocks"
        );
    }

    #[test]
    fn overwrite_accounting_matches_live_charges() {
        // Regression: re-inserting an existing key at a different size must
        // keep `used` equal to the sum of live entry charges. The old code
        // kept the original charge forever, so shrinking re-inserts pinned
        // phantom bytes (forcing spurious evictions) and growing re-inserts
        // under-counted until the shard overflowed its capacity.
        let c = BlockCache::new(1 << 20);
        for round in 0..8usize {
            for i in 0..32u64 {
                // Sizes vary per round: 100, 3100, 600, ...
                let size = 100 + (round * 3000) % 7000 + i as usize;
                c.insert((i, i * 4096), block(size));
            }
        }
        let live: usize = c
            .shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.map.values().map(|(b, _)| b.raw_size).sum::<usize>()
            })
            .sum();
        assert_eq!(
            c.used_bytes(),
            live,
            "used bytes diverged from live charges after re-inserts"
        );
    }

    #[test]
    fn shrinking_reinserts_do_not_pin_phantom_bytes() {
        let c = BlockCache::new(1 << 20);
        c.insert((1, 0), block(10_000));
        c.insert((1, 0), block(10));
        assert_eq!(c.used_bytes(), 10, "old charge must be released");
    }

    #[test]
    fn remove_file_drops_blocks() {
        let c = BlockCache::new(1 << 20);
        c.insert((7, 0), block(100));
        c.insert((7, 4096), block(100));
        c.insert((8, 0), block(100));
        c.remove_file(7);
        assert!(c.get(&(7, 0)).is_none());
        assert!(c.get(&(8, 0)).is_some());
    }
}
