//! Pluggable compaction scheduling and the shared background-I/O budget.
//!
//! The paper's Finding #1 blames write throttling — not the device — for the
//! throughput collapse on fast storage, and its case studies only tune the
//! *reaction* to compaction debt. Luo & Carey ("On Performance Stability in
//! LSM-based Storage Systems") show the other lever: *which* compaction runs
//! next, and how much device bandwidth background work may consume. This
//! module provides both halves:
//!
//! * [`CompactionScheduler`] — a strategy trait deciding which level the next
//!   compaction should service, given the per-level scores from
//!   [`Version::level_scores`](crate::version::Version::level_scores).
//!   Three built-in policies: [`GreedyScheduler`] (the classic max-score
//!   picker, RocksDB's default `kByCompensatedSize` spirit),
//!   [`RoundRobinScheduler`] (RocksDB's `kRoundRobin` `CompactionPri`), and
//!   [`FairScheduler`] (a deficit-based picker that banks unserved score so
//!   low-pressure levels cannot starve behind a perpetually hot one).
//! * [`BgIoLimiter`] — a token bucket in **virtual time** shared by flushes
//!   and compactions (RocksDB's `rate_limiter`), with flush priority and an
//!   optional auto-tuned mode that scales the budget with measured
//!   compaction debt.
//!
//! Schedulers are stateful (cursor-like rotation, deficit credits) and are
//! shared across [`DbOptions`](crate::options::DbOptions) clones via `Arc`,
//! so a fresh instance should be constructed per database.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Picks which level the next compaction should service.
///
/// `scores` holds one entry per LSM level (index = level), computed by
/// [`Version::level_scores`](crate::version::Version::level_scores): L0 is
/// `files / level0_file_num_compaction_trigger`, deeper levels are
/// `bytes / target_bytes`, and the last level is always `0.0` (it only
/// receives). A level is *eligible* iff its score is ≥ 1.0; implementations
/// must only return eligible levels, and `None` when none is eligible.
///
/// When the chosen level cannot actually form a compaction right now (all
/// candidate files busy), the caller zeroes that level's score and asks
/// again, so a policy is re-consulted at most once per level per pick.
pub trait CompactionScheduler: Send + Sync {
    /// Returns the level to compact next, or `None` if no level is eligible.
    fn pick_level(&self, scores: &[f64]) -> Option<usize>;
    /// Short policy name for stats attribution and reports.
    fn name(&self) -> &'static str;
}

impl fmt::Debug for dyn CompactionScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompactionScheduler({})", self.name())
    }
}

/// The classic picker: always service the level with the highest score.
///
/// Ties break toward the shallower level, matching the pre-trait behaviour
/// of `Version::compaction_score`.
#[derive(Debug, Default)]
pub struct GreedyScheduler;

impl CompactionScheduler for GreedyScheduler {
    fn pick_level(&self, scores: &[f64]) -> Option<usize> {
        let mut best = None;
        let mut best_score = 0.0f64;
        for (level, &score) in scores.iter().enumerate() {
            if score >= 1.0 && score > best_score {
                best = Some(level);
                best_score = score;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Rotates through eligible levels in level order, one pick per lap.
///
/// The analogue of RocksDB's `CompactionPri::kRoundRobin`, lifted from
/// within-level file choice to across-level choice: every level with debt
/// gets serviced in turn regardless of how its score compares to the
/// hottest level's.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    /// Level picked last; the scan for the next pick starts just after it.
    last: AtomicUsize,
}

impl CompactionScheduler for RoundRobinScheduler {
    fn pick_level(&self, scores: &[f64]) -> Option<usize> {
        let n = scores.len();
        if n == 0 {
            return None;
        }
        let last = self.last.load(Ordering::Relaxed) % n;
        for offset in 1..=n {
            let level = (last + offset) % n;
            if scores[level] >= 1.0 {
                self.last.store(level, Ordering::Relaxed);
                return Some(level);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Deficit-based picker: banks unserved score so no eligible level starves.
///
/// Each consultation adds every eligible level's current score to its credit
/// balance, zeroes the balance of levels that dropped below 1.0 (their debt
/// is gone), then services the eligible level with the largest balance and
/// resets it. A level whose score stays pinned at `s ≥ 1.0` is therefore
/// picked at least once every `⌈s_max / s⌉ + 1` consultations no matter how
/// hot another level runs — the starvation bound `tests/scheduling.rs`
/// asserts.
#[derive(Debug, Default)]
pub struct FairScheduler {
    /// Accumulated unserved score per level.
    credits: Mutex<Vec<f64>>,
}

impl CompactionScheduler for FairScheduler {
    fn pick_level(&self, scores: &[f64]) -> Option<usize> {
        let mut credits = self.credits.lock();
        credits.resize(scores.len(), 0.0);
        let mut best = None;
        let mut best_banked = 0.0f64;
        for (level, &score) in scores.iter().enumerate() {
            if score >= 1.0 {
                credits[level] += score;
                if credits[level] > best_banked {
                    best = Some(level);
                    best_banked = credits[level];
                }
            } else {
                credits[level] = 0.0;
            }
        }
        let level = best?;
        credits[level] = 0.0;
        Some(level)
    }

    fn name(&self) -> &'static str {
        "fair"
    }
}

/// Which background stream is asking the limiter for bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BgIoPriority {
    /// Flushes unblock the write path; they are served first.
    Flush,
    /// Compactions yield to any flush waiting on the bucket.
    Compaction,
}

/// Token bucket state under the lock.
#[derive(Debug)]
struct BucketState {
    /// Bytes currently available.
    tokens: u64,
    /// Current refill rate, bytes per (virtual) second.
    rate: u64,
    /// Virtual timestamp of the last refill.
    last_refill_ns: u64,
    /// Bytes flushes have registered but not yet drawn; compactions must
    /// leave this many tokens untouched so a flush never queues behind them.
    flush_pending: u64,
}

/// A shared background-I/O budget: token bucket in virtual time.
///
/// Flushes and compactions draw bytes from one bucket before touching the
/// device, so their combined bandwidth never exceeds the configured budget —
/// the RocksDB `rate_limiter` idea. Flush priority is implemented by
/// *reservation*: a flush registers its bytes up front and compactions must
/// leave that many tokens in the bucket, so the flush overtakes any queued
/// compaction without ever borrowing tokens (the admission bound
/// `admitted ≤ rate × elapsed` holds for the two streams combined).
///
/// With auto-tune enabled, [`retune`](Self::retune) scales the rate with the
/// measured compaction debt: `rate = base × (1 + min(debt / reference, 3))`,
/// i.e. an idle tree gets the base budget and a deeply indebted tree up to
/// 4× — spend bandwidth when debt is building, hoard it when the tree is
/// healthy so foreground reads/writes see steady device latency.
#[derive(Debug)]
pub struct BgIoLimiter {
    /// Base budget in bytes per virtual second; 0 disables the limiter.
    base_rate: u64,
    /// Debt level at which the budget reaches 2× base (cap at 4×).
    auto_tune_reference: Option<u64>,
    /// Rate currently in effect, mirrored for lock-free observability.
    current_rate: AtomicU64,
    state: Mutex<BucketState>,
}

impl BgIoLimiter {
    /// Creates a limiter with the given base budget. `base_rate == 0`
    /// disables throttling entirely; `auto_tune_reference = Some(ref)`
    /// enables debt-scaled budgets via [`retune`](Self::retune).
    pub fn new(base_rate: u64, auto_tune_reference: Option<u64>) -> Self {
        Self {
            base_rate,
            auto_tune_reference: auto_tune_reference.filter(|&r| r > 0 && base_rate > 0),
            current_rate: AtomicU64::new(base_rate),
            state: Mutex::new(BucketState {
                tokens: 0,
                rate: base_rate,
                last_refill_ns: xlsm_sim::now_nanos(),
                flush_pending: 0,
            }),
        }
    }

    /// Whether the limiter throttles at all.
    pub fn enabled(&self) -> bool {
        self.base_rate > 0
    }

    /// The budget currently in effect, bytes per virtual second
    /// (0 = unthrottled).
    pub fn current_rate(&self) -> u64 {
        if self.enabled() {
            self.current_rate.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// Largest single draw; bigger requests are split so one stream cannot
    /// monopolize the bucket for a long burst.
    fn burst(rate: u64) -> u64 {
        (rate / 4).max(256 << 10)
    }

    /// Re-scales the budget from the measured compaction debt (no-op unless
    /// auto-tune is enabled). Deterministic: driven only by virtual-time
    /// call sites, never the wall clock.
    pub fn retune(&self, debt_bytes: u64) {
        let Some(reference) = self.auto_tune_reference else {
            return;
        };
        let bonus = ((self.base_rate as u128 * debt_bytes.min(3 * reference) as u128)
            / reference as u128) as u64;
        let new_rate = self.base_rate + bonus;
        let mut st = self.state.lock();
        if st.rate != new_rate {
            // Settle the bucket at the old rate before switching.
            Self::refill(&mut st);
            st.rate = new_rate;
            self.current_rate.store(new_rate, Ordering::Relaxed);
        }
    }

    /// Accrue tokens for the virtual time elapsed since the last refill.
    fn refill(st: &mut BucketState) {
        let now = xlsm_sim::now_nanos();
        let elapsed = now.saturating_sub(st.last_refill_ns);
        if elapsed == 0 {
            return;
        }
        let earned = (st.rate as u128 * elapsed as u128 / 1_000_000_000) as u64;
        if earned == 0 {
            // Don't advance the clock for a sub-token interval, or short
            // sleeps would round the accrual down to zero forever.
            return;
        }
        st.tokens = (st.tokens + earned).min(Self::burst(st.rate).max(st.tokens));
        st.last_refill_ns = now;
    }

    /// Draws `bytes` from the shared budget, sleeping in virtual time until
    /// the bucket can cover them. Returns the nanoseconds spent waiting.
    /// A disabled limiter admits immediately.
    pub fn acquire(&self, bytes: u64, pri: BgIoPriority) -> u64 {
        if !self.enabled() || bytes == 0 {
            return 0;
        }
        if pri == BgIoPriority::Flush {
            self.state.lock().flush_pending += bytes;
        }
        let started = xlsm_sim::now_nanos();
        let mut remaining = bytes;
        while remaining > 0 {
            let wait_ns = {
                let mut st = self.state.lock();
                Self::refill(&mut st);
                let chunk = remaining.min(Self::burst(st.rate));
                // Compactions must leave the flush reservation untouched.
                let reserved = if pri == BgIoPriority::Compaction {
                    st.flush_pending
                } else {
                    0
                };
                let need = chunk + reserved;
                if st.tokens >= need {
                    st.tokens -= chunk;
                    if pri == BgIoPriority::Flush {
                        st.flush_pending = st.flush_pending.saturating_sub(chunk);
                    }
                    remaining -= chunk;
                    0
                } else {
                    // Sleep long enough to cover the deficit, but no longer
                    // than one burst of accrual: a compaction queued behind a
                    // big flush reservation re-checks once the reservation
                    // has had time to drain instead of oversleeping it.
                    let deficit = (need - st.tokens).min(Self::burst(st.rate));
                    ((deficit as u128 * 1_000_000_000).div_ceil(st.rate as u128) as u64).max(1)
                }
            };
            if wait_ns > 0 {
                xlsm_sim::sleep_nanos(wait_ns);
            }
        }
        xlsm_sim::now_nanos() - started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn greedy_picks_max_score_ties_to_shallow() {
        let s = GreedyScheduler;
        assert_eq!(s.pick_level(&[0.5, 0.9, 0.0]), None);
        assert_eq!(s.pick_level(&[1.2, 3.0, 0.0]), Some(1));
        assert_eq!(s.pick_level(&[2.0, 2.0, 0.0]), Some(0));
    }

    #[test]
    fn round_robin_rotates_across_eligible_levels() {
        let s = RoundRobinScheduler::default();
        let scores = [1.5, 2.0, 1.1, 0.0];
        let picks: Vec<_> = (0..6).map(|_| s.pick_level(&scores).unwrap()).collect();
        assert_eq!(picks, vec![1, 2, 0, 1, 2, 0]);
        assert_eq!(s.pick_level(&[0.0, 0.0]), None);
    }

    #[test]
    fn fair_services_low_score_level_within_bound() {
        let s = FairScheduler::default();
        // L0 pinned at 5.0, L2 pinned at 1.2: L2 must still be picked
        // roughly every ⌈5/1.2⌉ + 1 = 6 consultations.
        let scores = [5.0, 0.0, 1.2, 0.0];
        let mut since_l2 = 0usize;
        let mut saw_l2 = false;
        for _ in 0..100 {
            let level = s.pick_level(&scores).unwrap();
            if level == 2 {
                since_l2 = 0;
                saw_l2 = true;
            } else {
                since_l2 += 1;
                assert!(since_l2 <= 6, "L2 starved for {since_l2} rounds");
            }
        }
        assert!(saw_l2);
    }

    #[test]
    fn fair_resets_credit_when_level_becomes_ineligible() {
        let s = FairScheduler::default();
        // Bank credit for level 1, then drop it below 1.0: the stale credit
        // must not buy a pick once the level recovers.
        assert_eq!(s.pick_level(&[9.0, 1.5]), Some(0));
        assert_eq!(s.pick_level(&[9.0, 1.5]), Some(0));
        assert_eq!(s.pick_level(&[0.0, 0.9]), None);
        assert_eq!(s.pick_level(&[1.0, 1.0]), Some(0));
    }

    #[test]
    fn limiter_never_admits_more_than_rate_times_elapsed() {
        xlsm_sim::Runtime::new().run(|| {
            let rate = 1 << 20; // 1 MiB/s
            let limiter = BgIoLimiter::new(rate, None);
            let t0 = xlsm_sim::now_nanos();
            let mut admitted = 0u64;
            for i in 0..32u64 {
                let req = 17 << 10 << (i % 3);
                limiter.acquire(req, BgIoPriority::Compaction);
                admitted += req;
                let elapsed = xlsm_sim::now_nanos() - t0;
                let earned = (rate as u128 * elapsed as u128 / 1_000_000_000) as u64;
                assert!(
                    admitted <= earned,
                    "admitted {admitted} > earned {earned} after {elapsed} ns"
                );
            }
        });
    }

    #[test]
    fn limiter_flush_overtakes_queued_compaction() {
        xlsm_sim::Runtime::new().run(|| {
            let limiter = Arc::new(BgIoLimiter::new(1 << 20, None));
            let done: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
            let (l1, d1) = (Arc::clone(&limiter), Arc::clone(&done));
            xlsm_sim::spawn("compaction", move || {
                l1.acquire(1 << 20, BgIoPriority::Compaction);
                d1.lock().push("compaction");
            });
            let (l2, d2) = (Arc::clone(&limiter), Arc::clone(&done));
            xlsm_sim::spawn("flush", move || {
                // Arrive after the compaction is already queued.
                xlsm_sim::sleep_nanos(10_000);
                l2.acquire(256 << 10, BgIoPriority::Flush);
                d2.lock().push("flush");
            });
            xlsm_sim::sleep_nanos(5_000_000_000);
            assert_eq!(*done.lock(), vec!["flush", "compaction"]);
        });
    }

    #[test]
    fn retune_scales_budget_with_debt_and_caps_at_4x() {
        xlsm_sim::Runtime::new().run(|| {
            let base = 8 << 20;
            let reference = 64 << 20;
            let limiter = BgIoLimiter::new(base, Some(reference));
            assert_eq!(limiter.current_rate(), base);
            limiter.retune(reference);
            assert_eq!(limiter.current_rate(), 2 * base);
            limiter.retune(10 * reference);
            assert_eq!(limiter.current_rate(), 4 * base);
            limiter.retune(0);
            assert_eq!(limiter.current_rate(), base);
        });
    }

    #[test]
    fn disabled_limiter_is_free() {
        xlsm_sim::Runtime::new().run(|| {
            let limiter = BgIoLimiter::new(0, Some(1 << 20));
            assert!(!limiter.enabled());
            assert_eq!(limiter.current_rate(), 0);
            assert_eq!(limiter.acquire(u64::MAX, BgIoPriority::Flush), 0);
        });
    }
}
