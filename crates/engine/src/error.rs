//! Engine error type.

use std::error::Error;
use std::fmt;
use xlsm_simfs::FsError;

/// Result alias for engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// Structured payload of a [`DbError::Corruption`]: what failed validation,
/// and — when known — in which file and at which byte offset, so scrub and
/// verify reports are actionable instead of a bare message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptionDetail {
    /// What failed (checksum mismatch, bad magic, undecodable record, ...).
    pub message: String,
    /// File the corruption was detected in, when known.
    pub file: Option<String>,
    /// Byte offset of the damaged region within `file`, when known.
    pub offset: Option<u64>,
}

impl CorruptionDetail {
    /// Detail with only a message (no file/offset attribution).
    pub fn new(message: impl Into<String>) -> CorruptionDetail {
        CorruptionDetail {
            message: message.into(),
            file: None,
            offset: None,
        }
    }
}

impl From<String> for CorruptionDetail {
    fn from(message: String) -> CorruptionDetail {
        CorruptionDetail::new(message)
    }
}

impl From<&str> for CorruptionDetail {
    fn from(message: &str) -> CorruptionDetail {
        CorruptionDetail::new(message)
    }
}

impl fmt::Display for CorruptionDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(file) = &self.file {
            write!(f, " (file {file}")?;
            if let Some(off) = self.offset {
                write!(f, ", offset {off}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl Error for CorruptionDetail {}

/// Errors surfaced by the key-value store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Filesystem-level failure.
    Fs(FsError),
    /// An I/O failure carrying its fault context. Injected faults
    /// ([`FsError::Io`]) convert into this variant so the background-error
    /// machinery can classify them as retryable (transient) or hard.
    Io {
        /// Whether a retry may succeed.
        retryable: bool,
        /// The underlying filesystem fault (available via
        /// [`Error::source`]).
        source: FsError,
    },
    /// On-disk data failed checksum or structural validation. The payload
    /// carries the file path and byte offset when known (also chained via
    /// [`Error::source`]).
    Corruption(CorruptionDetail),
    /// The database is in read-only mode after a hard background error:
    /// writes fail fast, reads keep serving. The payload describes the
    /// error that caused the transition.
    ReadOnly(String),
    /// The database is shutting down; the operation was not performed.
    ShuttingDown,
    /// Invalid argument or configuration.
    InvalidArgument(String),
}

impl DbError {
    /// A corruption error with only a message.
    pub fn corruption(message: impl Into<String>) -> DbError {
        DbError::Corruption(CorruptionDetail::new(message))
    }

    /// A corruption error attributed to `file`.
    pub fn corruption_in(file: impl Into<String>, message: impl Into<String>) -> DbError {
        DbError::Corruption(CorruptionDetail {
            message: message.into(),
            file: Some(file.into()),
            offset: None,
        })
    }

    /// A corruption error attributed to `file` at byte `offset`.
    pub fn corruption_at(
        file: impl Into<String>,
        offset: u64,
        message: impl Into<String>,
    ) -> DbError {
        DbError::Corruption(CorruptionDetail {
            message: message.into(),
            file: Some(file.into()),
            offset: Some(offset),
        })
    }

    /// Whether a retry of the failed operation may succeed — true only for
    /// transient I/O faults.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::Io {
                retryable: true,
                ..
            }
        )
    }

    /// Whether this error reports on-disk data damage — the class
    /// [`crate::options::WalRecoveryMode::AbsoluteConsistency`] surfaces at
    /// open instead of silently dropping data. Recovery harnesses branch on
    /// this to distinguish "refused to open" from "broken".
    pub fn is_corruption(&self) -> bool {
        matches!(self, DbError::Corruption(_))
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Fs(e) => write!(f, "filesystem error: {e}"),
            DbError::Io { retryable, source } => {
                let kind = if *retryable { "retryable" } else { "hard" };
                write!(f, "{kind} i/o error: {source}")
            }
            DbError::Corruption(detail) => write!(f, "corruption: {detail}"),
            DbError::ReadOnly(msg) => write!(f, "database is read-only: {msg}"),
            DbError::ShuttingDown => write!(f, "database is shutting down"),
            DbError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Fs(e) => Some(e),
            DbError::Io { source, .. } => Some(source),
            DbError::Corruption(detail) => Some(detail),
            _ => None,
        }
    }
}

impl From<FsError> for DbError {
    fn from(e: FsError) -> DbError {
        // Injected faults keep their context (op, path, retryability); the
        // structural errors stay as plain filesystem errors.
        match e {
            FsError::Io { retryable, .. } => DbError::Io {
                retryable,
                source: e,
            },
            other => DbError::Fs(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_fault_keeps_context_through_from() {
        let fault = FsError::Io {
            op: "append",
            path: "db/000001.sst".into(),
            retryable: true,
        };
        let e = DbError::from(fault.clone());
        assert!(e.is_retryable());
        match &e {
            DbError::Io { source, .. } => assert_eq!(*source, fault),
            other => panic!("expected Io, got {other:?}"),
        }
        let chained = e.source().expect("source must chain");
        assert!(chained.to_string().contains("db/000001.sst"));
    }

    #[test]
    fn hard_fault_not_retryable() {
        let e = DbError::from(FsError::Io {
            op: "sync",
            path: "x".into(),
            retryable: false,
        });
        assert!(!e.is_retryable());
        assert!(!DbError::Corruption("bad".into()).is_retryable());
        assert!(!DbError::from(FsError::DeviceFull).is_retryable());
    }

    #[test]
    fn corruption_detail_carries_file_and_offset() {
        let e = DbError::corruption_at("db/000007.sst", 4096, "block checksum mismatch");
        assert!(e.is_corruption());
        let msg = e.to_string();
        assert!(msg.contains("db/000007.sst"), "missing file: {msg}");
        assert!(msg.contains("4096"), "missing offset: {msg}");
        // source() chains to the structured detail.
        let src = e.source().expect("corruption must chain its detail");
        let detail = src
            .downcast_ref::<CorruptionDetail>()
            .expect("source is CorruptionDetail");
        assert_eq!(detail.file.as_deref(), Some("db/000007.sst"));
        assert_eq!(detail.offset, Some(4096));
    }

    #[test]
    fn plain_string_corruption_still_constructs() {
        // Legacy construction sites use `Corruption("msg".into())`.
        let e = DbError::Corruption("bad magic".into());
        assert_eq!(e.to_string(), "corruption: bad magic");
        match e {
            DbError::Corruption(d) => {
                assert_eq!(d.file, None);
                assert_eq!(d.offset, None);
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
    }
}
