//! Engine error type.

use std::error::Error;
use std::fmt;
use xlsm_simfs::FsError;

/// Result alias for engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by the key-value store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Filesystem-level failure.
    Fs(FsError),
    /// An I/O failure carrying its fault context. Injected faults
    /// ([`FsError::Io`]) convert into this variant so the background-error
    /// machinery can classify them as retryable (transient) or hard.
    Io {
        /// Whether a retry may succeed.
        retryable: bool,
        /// The underlying filesystem fault (available via
        /// [`Error::source`]).
        source: FsError,
    },
    /// On-disk data failed checksum or structural validation.
    Corruption(String),
    /// The database is in read-only mode after a hard background error:
    /// writes fail fast, reads keep serving. The payload describes the
    /// error that caused the transition.
    ReadOnly(String),
    /// The database is shutting down; the operation was not performed.
    ShuttingDown,
    /// Invalid argument or configuration.
    InvalidArgument(String),
}

impl DbError {
    /// Whether a retry of the failed operation may succeed — true only for
    /// transient I/O faults.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::Io {
                retryable: true,
                ..
            }
        )
    }

    /// Whether this error reports on-disk data damage — the class
    /// [`crate::options::WalRecoveryMode::AbsoluteConsistency`] surfaces at
    /// open instead of silently dropping data. Recovery harnesses branch on
    /// this to distinguish "refused to open" from "broken".
    pub fn is_corruption(&self) -> bool {
        matches!(self, DbError::Corruption(_))
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Fs(e) => write!(f, "filesystem error: {e}"),
            DbError::Io { retryable, source } => {
                let kind = if *retryable { "retryable" } else { "hard" };
                write!(f, "{kind} i/o error: {source}")
            }
            DbError::Corruption(msg) => write!(f, "corruption: {msg}"),
            DbError::ReadOnly(msg) => write!(f, "database is read-only: {msg}"),
            DbError::ShuttingDown => write!(f, "database is shutting down"),
            DbError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Fs(e) => Some(e),
            DbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<FsError> for DbError {
    fn from(e: FsError) -> DbError {
        // Injected faults keep their context (op, path, retryability); the
        // structural errors stay as plain filesystem errors.
        match e {
            FsError::Io { retryable, .. } => DbError::Io {
                retryable,
                source: e,
            },
            other => DbError::Fs(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_fault_keeps_context_through_from() {
        let fault = FsError::Io {
            op: "append",
            path: "db/000001.sst".into(),
            retryable: true,
        };
        let e = DbError::from(fault.clone());
        assert!(e.is_retryable());
        match &e {
            DbError::Io { source, .. } => assert_eq!(*source, fault),
            other => panic!("expected Io, got {other:?}"),
        }
        let chained = e.source().expect("source must chain");
        assert!(chained.to_string().contains("db/000001.sst"));
    }

    #[test]
    fn hard_fault_not_retryable() {
        let e = DbError::from(FsError::Io {
            op: "sync",
            path: "x".into(),
            retryable: false,
        });
        assert!(!e.is_retryable());
        assert!(!DbError::Corruption("bad".into()).is_retryable());
        assert!(!DbError::from(FsError::DeviceFull).is_retryable());
    }
}
