//! Engine error type.

use std::error::Error;
use std::fmt;
use xlsm_simfs::FsError;

/// Result alias for engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by the key-value store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Filesystem-level failure.
    Fs(FsError),
    /// On-disk data failed checksum or structural validation.
    Corruption(String),
    /// The database is shutting down; the operation was not performed.
    ShuttingDown,
    /// Invalid argument or configuration.
    InvalidArgument(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Fs(e) => write!(f, "filesystem error: {e}"),
            DbError::Corruption(msg) => write!(f, "corruption: {msg}"),
            DbError::ShuttingDown => write!(f, "database is shutting down"),
            DbError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for DbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbError::Fs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for DbError {
    fn from(e: FsError) -> DbError {
        DbError::Fs(e)
    }
}
