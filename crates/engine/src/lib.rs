//! # xlsm-engine — an LSM-tree key-value store (RocksDB 5.17 equivalent)
//!
//! The system under test for the ISPASS'20 storage-evolution study. It
//! implements the mechanisms whose interaction with fast storage the paper
//! analyzes:
//!
//! * a skiplist [`MemTable`] with mutable → immutable switching;
//! * a write-ahead log ([`wal`]) with buffered appends and group commit;
//! * SSTables ([`sst`]) with prefix-compressed blocks, optional per-block
//!   compression ([`compress`]), whole-key + prefix bloom filters
//!   ([`bloom`]), and a sharded decoded-block [`cache`];
//! * leveled compaction with overlapping Level-0 semantics ([`version`],
//!   [`compaction`]);
//! * the **write controller of Algorithm 1** ([`controller`]) with a
//!   pluggable [`controller::ThrottlePolicy`];
//! * **pluggable compaction scheduling** ([`scheduler`]): greedy /
//!   round-robin / fair (deficit-based) level pickers behind
//!   [`scheduler::CompactionScheduler`], plus a shared background-I/O
//!   token bucket ([`scheduler::BgIoLimiter`]) with flush priority and
//!   debt-scaled auto-tuning;
//! * the **pipelined write path of Algorithm 2** ([`mod@write`]): one writer
//!   queue, leader-selected batch groups, optional WAL/memtable pipelining;
//! * **cross-layer stall accounting** ([`stall`]): per-op write-latency
//!   breakdowns and a controller-transition event log, snapshotted through
//!   [`Db::metrics`](db::Db::metrics);
//! * **background-error handling** ([`bgerror`]): flush/compaction failures
//!   are classified instead of panicking — transient faults retry with
//!   bounded backoff, hard faults flip the database to read-only until
//!   [`Db::resume`](db::Db::resume).
//!
//! Everything runs on the [`xlsm_sim`] virtual clock against an
//! [`xlsm_simfs`] filesystem; CPU work is charged from the calibrated
//! [`costs`] model.
//!
//! ```
//! use xlsm_device::{profiles, SimDevice};
//! use xlsm_engine::{Db, DbOptions};
//! use xlsm_simfs::{FsOptions, SimFs};
//!
//! xlsm_sim::Runtime::new().run(|| {
//!     let fs = SimFs::new(SimDevice::shared(profiles::optane_900p()), FsOptions::default());
//!     let db = Db::open(fs, DbOptions::default()).unwrap();
//!     db.put(b"hello", b"world").unwrap();
//!     assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
//!     db.close();
//! });
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod bgerror;
pub mod bloom;
pub mod cache;
pub mod coding;
pub mod compaction;
pub mod compress;
pub mod controller;
pub mod costs;
pub mod crc32c;
pub mod db;
pub mod error;
pub mod histogram;
pub mod integrity;
pub mod iterator;
pub mod memtable;
pub mod options;
pub mod repair;
pub mod scheduler;
pub mod sst;
pub mod stall;
pub mod stats;
pub mod types;
pub mod version;
pub mod wal;
pub mod write;

pub use batch::WriteBatch;
pub use bgerror::{BackgroundError, BackgroundOp, ErrorSeverity};
pub use compress::CompressionType;
pub use db::Db;
pub use error::{CorruptionDetail, DbError, DbResult};
pub use histogram::{Histogram, HistogramSummary};
pub use memtable::MemTable;
pub use options::{DbOptions, WalRecoveryMode};
pub use repair::{repair_db, RepairReport};
pub use scheduler::{
    BgIoLimiter, BgIoPriority, CompactionScheduler, FairScheduler, GreedyScheduler,
    RoundRobinScheduler,
};
pub use stall::{
    episode_durations, PreprocessStalls, StallAccounting, StallCause, StallEvent, StallTotals,
    WriteBreakdown,
};
pub use stats::{DbStats, Metrics, Ticker, TickerSnapshot};
pub use types::SequenceNumber;
