//! The writer queue: group commit and the paper's **Algorithm 2**
//! (pipelined write process), plus RocksDB's answer to Finding #3:
//! concurrent memtable writes.
//!
//! RocksDB keeps *one* write-thread queue. The writer at the head becomes
//! the **leader** of a batch group: it merges the queued batches (up to
//! `max_write_batch_group_size`), runs the stall/delay preprocessing, writes
//! one WAL record for the whole group and applies it to the memtable. In
//! **pipelined** mode the leader hands queue leadership to the next writer
//! right after the WAL write, so group *N+1*'s WAL overlaps group *N*'s
//! memtable insertion; memtable insertions themselves stay serialized in
//! group order (a FIFO semaphore).
//!
//! This queue is where the paper's Finding #3 lives: on 3D XPoint, reads
//! complete quickly, client threads come back to write sooner, the queue
//! grows, and write tail latency *exceeds* the SATA flash SSD despite the
//! faster device (Figs. 15–16) — because one leader thread serially inserts
//! the whole merged group. With **concurrent memtable writes** enabled
//! (`allow_concurrent_memtable_write`), the leader still writes one WAL
//! record for the group but does *not* merge follower batches into the
//! memtable stage: each member applies its own sub-batch — with its own
//! pre-allocated sequence range — on its own sim thread, and a
//! `write_done_count` barrier holds the group's sequence publication until
//! every member finished, so readers never observe a half-applied group.

use crate::batch::WriteBatch;
use crate::costs;
use crate::error::{DbError, DbResult};
use crate::stall::{PreprocessStalls, WriteBreakdown};
use crate::stats::{DbStats, Ticker};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
use std::sync::Arc;
use xlsm_sim::sync::{Semaphore, WaitSet};
use xlsm_sim::Nanos;

/// Stage callbacks supplied by the database.
pub trait WriteBackend: Send + Sync {
    /// Stall handling (Algorithm 1) and memtable room-making. Runs once per
    /// group, before sequence allocation. Returns the controller-induced
    /// waiting it performed, for the group's stall accounting.
    ///
    /// # Errors
    ///
    /// Shutdown or filesystem failures abort the group.
    fn preprocess(&self, group_bytes: u64) -> DbResult<PreprocessStalls>;
    /// Reserves `count` consecutive sequence numbers and makes them visible
    /// to readers immediately (the serial path, where the group is fully
    /// applied before anyone learns its sequences); returns the first.
    fn allocate_seq(&self, count: u64) -> u64;
    /// Reserves `count` consecutive sequence numbers *without* publishing
    /// them; the queue calls [`WriteBackend::publish_seq`] after the
    /// group's `write_done_count` barrier. Backends that don't distinguish
    /// reservation from publication fall back to [`WriteBackend::allocate_seq`].
    fn reserve_seq(&self, count: u64) -> u64 {
        self.allocate_seq(count)
    }
    /// Publishes every sequence up to `last` to readers (no-op by default).
    fn publish_seq(&self, _last: u64) {}
    /// Appends the group's WAL record.
    ///
    /// # Errors
    ///
    /// Filesystem failures abort the group.
    fn write_wal(&self, group: &WriteBatch) -> DbResult<()>;
    /// Applies the merged group to the memtable (charging CPU costs) — the
    /// serial memtable stage.
    ///
    /// # Errors
    ///
    /// Corruption in the encoded batch.
    fn write_memtable(&self, group: &WriteBatch) -> DbResult<()>;
    /// Applies *one member's* sub-batch, called on the member's own sim
    /// thread inside the concurrent memtable stage. Defaults to the serial
    /// apply, which is correct (just not overlapped) for simple backends.
    ///
    /// # Errors
    ///
    /// Corruption in the encoded batch.
    fn write_memtable_member(&self, batch: &WriteBatch) -> DbResult<()> {
        self.write_memtable(batch)
    }
}

/// Coordination for one concurrently-applied write group: RocksDB's
/// `write_done_count` barrier. Every member (leader included) decrements
/// once its sub-batch is in the memtable; the leader waits for zero before
/// publishing the group's last sequence and completing the group.
struct GroupSync {
    write_done: AtomicUsize,
    done: WaitSet,
    error: parking_lot::Mutex<Option<DbError>>,
}

impl GroupSync {
    fn new(members: usize) -> Arc<GroupSync> {
        Arc::new(GroupSync {
            write_done: AtomicUsize::new(members),
            done: WaitSet::new("group-apply-barrier"),
            error: parking_lot::Mutex::new(None),
        })
    }

    /// Records one member's apply result and trips the barrier when last.
    fn finish(&self, r: DbResult<()>) {
        if let Err(e) = r {
            self.error.lock().get_or_insert(e);
        }
        if self.write_done.fetch_sub(1, AtOrd::AcqRel) == 1 {
            self.done.notify_all();
        }
    }
}

/// A follower's concurrent-apply assignment: its own sequence-stamped
/// sub-batch plus the group barrier to report into.
struct ApplyJob {
    batch: WriteBatch,
    sync: Arc<GroupSync>,
}

struct Writer {
    batch: parking_lot::Mutex<Option<WriteBatch>>,
    /// Set by the leader in concurrent-memtable mode; the follower applies
    /// the job on its own thread instead of idling out the memtable stage.
    apply: parking_lot::Mutex<Option<ApplyJob>>,
    result: parking_lot::Mutex<Option<DbResult<()>>>,
    wake: WaitSet,
    /// When this writer joined the queue (for queue-wait attribution).
    enqueued_at: Nanos,
}

impl Writer {
    fn new(batch: WriteBatch) -> Arc<Writer> {
        Arc::new(Writer {
            batch: parking_lot::Mutex::new(Some(batch)),
            apply: parking_lot::Mutex::new(None),
            result: parking_lot::Mutex::new(None),
            wake: WaitSet::new("writer"),
            enqueued_at: xlsm_sim::now_nanos(),
        })
    }
}

/// The single write-thread queue of a database.
pub struct WriteQueue {
    queue: parking_lot::Mutex<VecDeque<Arc<Writer>>>,
    mem_stage: Semaphore,
    pipelined: bool,
    /// Concurrent memtable writes (`allow_concurrent_memtable_write`).
    concurrent: bool,
    /// Minimum member batches before a group takes the concurrent path.
    concurrent_min_batches: usize,
    max_group_bytes: usize,
}

impl std::fmt::Debug for WriteQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteQueue")
            .field("queued", &self.queue.lock().len())
            .field("pipelined", &self.pipelined)
            .field("concurrent", &self.concurrent)
            .finish()
    }
}

impl WriteQueue {
    /// Creates the queue (serial memtable stage).
    pub fn new(pipelined: bool, max_group_bytes: usize) -> WriteQueue {
        WriteQueue {
            queue: parking_lot::Mutex::new(VecDeque::new()),
            mem_stage: Semaphore::new("memtable-stage", 1),
            pipelined,
            concurrent: false,
            concurrent_min_batches: 2,
            max_group_bytes,
        }
    }

    /// Enables concurrent memtable writes: groups of at least
    /// `min_batches` members apply per-member on their own threads.
    #[must_use]
    pub fn with_concurrent_apply(mut self, enabled: bool, min_batches: usize) -> WriteQueue {
        self.concurrent = enabled;
        self.concurrent_min_batches = min_batches.max(1);
        self
    }

    /// Writers currently queued (Fig. 16's instantaneous value).
    pub fn queued(&self) -> usize {
        self.queue.lock().len()
    }

    /// Acquires the memtable-stage permit, excluding every in-flight
    /// group apply (serial or concurrent). `switch_memtable` holds this
    /// while rotating the mutable memtable so a switch can never strand
    /// half of a write group in a memtable that flush already iterates.
    pub(crate) fn lock_mem_stage(&self) {
        self.mem_stage.acquire(1);
    }

    /// Releases the permit taken by [`WriteQueue::lock_mem_stage`].
    pub(crate) fn unlock_mem_stage(&self) {
        self.mem_stage.release(1);
    }

    fn is_front(&self, w: &Arc<Writer>) -> bool {
        self.queue.lock().front().is_some_and(|f| Arc::ptr_eq(f, w))
    }

    /// Submits `batch` and blocks until it commits (possibly as part of a
    /// group led by another writer).
    ///
    /// # Errors
    ///
    /// Whatever the group leader's commit produced.
    pub fn submit(
        &self,
        batch: WriteBatch,
        backend: &dyn WriteBackend,
        stats: &DbStats,
    ) -> DbResult<()> {
        let me = Writer::new(batch);
        {
            self.queue.lock().push_back(Arc::clone(&me));
        }
        stats.writer_waiting_inc();

        // Wait until we are committed by a leader, become leader, or get
        // handed our own sub-batch to apply (concurrent memtable mode).
        loop {
            if let Some(result) = me.result.lock().clone() {
                stats.bump(Ticker::WritesJoinedGroup);
                return result;
            }
            let job = me.apply.lock().take();
            if let Some(job) = job {
                job.sync.finish(backend.write_memtable_member(&job.batch));
                continue; // the leader completes us after the barrier
            }
            if self.is_front(&me) {
                break;
            }
            me.wake.wait();
        }

        // --- We are the leader. ---
        stats.bump(Ticker::WriteGroupsLed);
        let (batches, members) = self.build_group(&me);
        let result = self.commit_group(batches, &members, backend, stats);
        for m in &members {
            if !Arc::ptr_eq(m, &me) {
                *m.result.lock() = Some(result.clone());
                m.wake.notify_all();
            }
        }
        stats.sample_waiting_writers();
        result
    }

    /// Collects the batch group starting at the queue head (which must be
    /// `leader`). Batches are *moved out* of the member writers — cheap
    /// pointer moves only — while holding the queue mutex; the
    /// O(group-bytes) merge happens in `commit_group` after the lock is
    /// dropped, so enqueuing writers never serialize behind the leader's
    /// memcpy.
    fn build_group(&self, leader: &Arc<Writer>) -> (Vec<WriteBatch>, Vec<Arc<Writer>>) {
        let queue = self.queue.lock();
        debug_assert!(Arc::ptr_eq(queue.front().unwrap(), leader));
        let lead = leader.batch.lock().take().expect("leader batch taken");
        let mut bytes = lead.byte_size();
        let mut batches = vec![lead];
        let mut members = vec![Arc::clone(leader)];
        for w in queue.iter().skip(1) {
            let mut slot = w.batch.lock();
            let size = slot.as_ref().map_or(0, WriteBatch::byte_size);
            if bytes + size > self.max_group_bytes {
                break;
            }
            if let Some(b) = slot.take() {
                batches.push(b);
                bytes += size;
                members.push(Arc::clone(w));
            }
        }
        (batches, members)
    }

    /// Pops `members` off the queue head and wakes the next leader.
    fn pop_group(&self, members: &[Arc<Writer>], stats: &DbStats) {
        let next = {
            let mut queue = self.queue.lock();
            for m in members {
                debug_assert!(Arc::ptr_eq(queue.front().unwrap(), m));
                queue.pop_front();
                stats.writer_waiting_dec();
            }
            queue.front().cloned()
        };
        if let Some(n) = next {
            n.wake.notify_all();
        }
    }

    fn commit_group(
        &self,
        batches: Vec<WriteBatch>,
        members: &[Arc<Writer>],
        backend: &dyn WriteBackend,
        stats: &DbStats,
    ) -> DbResult<()> {
        let t_start = xlsm_sim::now_nanos();
        let concurrent = self.concurrent && batches.len() >= self.concurrent_min_batches;
        // Merge the group's WAL record outside the queue lock. The serial
        // path consumes the member batches; the concurrent path keeps them,
        // since each member will apply its own.
        let (mut group, mut member_batches) = if concurrent {
            let mut group = batches[0].clone();
            for b in &batches[1..] {
                group.append_batch(b);
            }
            (group, batches)
        } else {
            let mut it = batches.into_iter();
            let mut group = it.next().expect("group has a leader batch");
            for b in it {
                group.append_batch(&b);
            }
            (group, Vec::new())
        };
        let group_bytes = group.byte_size();
        let pre = match backend.preprocess(group_bytes as u64) {
            Ok(pre) => pre,
            Err(e) => {
                self.pop_group(members, stats);
                return Err(e);
            }
        };
        let total = u64::from(group.count());
        // Concurrent groups only *reserve* their range here; it becomes
        // visible after the barrier, so a reader snapshotting mid-apply
        // cannot observe part of the group.
        let first = if concurrent {
            backend.reserve_seq(total)
        } else {
            backend.allocate_seq(total)
        };
        let last = first + total - 1;
        group.set_sequence(first);
        if concurrent {
            let mut next = first;
            for b in &mut member_batches {
                b.set_sequence(next);
                next += u64::from(b.count());
            }
        }
        // Per-KV protection: the leader re-verifies the merged group before
        // its bytes reach the WAL, so corruption introduced in the merge
        // window is caught here instead of persisted under a fresh record
        // CRC. The sidecar was carried (not recomputed) through the merge.
        if group.protection_width() > 0 {
            xlsm_sim::sleep_nanos(costs::KV_PROTECTION_NS * u64::from(group.count()));
            if let Err(e) = group.verify_protection("wal encode") {
                self.pop_group(members, stats);
                return Err(e);
            }
        }
        let t_wal = xlsm_sim::now_nanos();
        if let Err(e) = backend.write_wal(&group) {
            self.pop_group(members, stats);
            return Err(e);
        }
        let t_stage = xlsm_sim::now_nanos();
        let wal_ns = t_stage - t_wal;
        // Algorithm 2: acquire the memtable stage while still at the queue
        // head (guarantees group-ordered memtable writes). In pipelined
        // mode, hand queue leadership over right away so the next group's
        // WAL overlaps our memtable insertion.
        self.mem_stage.acquire(1);
        let t_apply = xlsm_sim::now_nanos();
        let pipeline_wait_ns = t_apply - t_stage;
        if self.pipelined {
            self.pop_group(members, stats);
        }
        let r = if concurrent {
            let r = self.apply_concurrent(member_batches, members, backend, stats);
            if r.is_ok() {
                backend.publish_seq(last);
            }
            r
        } else {
            backend.write_memtable(&group)
        };
        self.mem_stage.release(1);
        if !self.pipelined {
            self.pop_group(members, stats);
        }
        if r.is_ok() {
            let t_done = xlsm_sim::now_nanos();
            let mem_ns = t_done - t_apply;
            stats.write_group_batches.record(members.len() as u64);
            stats.write_group_bytes.record(group_bytes as u64);
            for m in members {
                let queue_wait = t_start.saturating_sub(m.enqueued_at);
                stats.write_queue_wait.record(queue_wait);
                stats.stall.record_op(
                    t_done.saturating_sub(m.enqueued_at),
                    &WriteBreakdown {
                        queue_wait_ns: queue_wait,
                        wal_append_ns: wal_ns,
                        pipeline_wait_ns,
                        memtable_insert_ns: mem_ns,
                        delay_sleep_ns: pre.delay_sleep_ns,
                        stop_wait_ns: pre.stop_wait_ns,
                    },
                );
            }
        }
        r
    }

    /// The concurrent memtable stage: hands every follower its own
    /// sequence-stamped sub-batch, applies the leader's on this thread, and
    /// waits on the `write_done_count` barrier. Member insert costs overlap
    /// in virtual time, which is exactly the serialization Finding #3
    /// blames for the XPoint tail-latency inversion.
    fn apply_concurrent(
        &self,
        mut batches: Vec<WriteBatch>,
        members: &[Arc<Writer>],
        backend: &dyn WriteBackend,
        stats: &DbStats,
    ) -> DbResult<()> {
        debug_assert_eq!(batches.len(), members.len());
        let sync = GroupSync::new(members.len());
        stats.add(Ticker::ConcurrentMemtableApplies, members.len() as u64);
        let leader_batch = batches.remove(0);
        for (m, b) in members[1..].iter().zip(batches) {
            *m.apply.lock() = Some(ApplyJob {
                batch: b,
                sync: Arc::clone(&sync),
            });
            m.wake.notify_all();
        }
        sync.finish(backend.write_memtable_member(&leader_batch));
        while sync.write_done.load(AtOrd::Acquire) > 0 {
            sync.done.wait();
        }
        let first_error = sync.error.lock().take();
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// A backend that fails every operation — used to propagate shutdown.
#[derive(Debug)]
pub struct ClosedBackend;

impl WriteBackend for ClosedBackend {
    fn preprocess(&self, _group_bytes: u64) -> DbResult<PreprocessStalls> {
        Err(DbError::ShuttingDown)
    }
    fn allocate_seq(&self, _count: u64) -> u64 {
        0
    }
    fn write_wal(&self, _group: &WriteBatch) -> DbResult<()> {
        Err(DbError::ShuttingDown)
    }
    fn write_memtable(&self, _group: &WriteBatch) -> DbResult<()> {
        Err(DbError::ShuttingDown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::MemTable;
    use std::sync::atomic::{AtomicU64, Ordering};
    use xlsm_sim::Runtime;

    /// Test backend: applies to a memtable, counts WAL writes, optionally
    /// sleeps in the WAL stage to create grouping/overlap windows. The
    /// sequence counter distinguishes reservation from publication so the
    /// barrier tests can observe the reader-visible watermark.
    struct TestBackend {
        mem: Arc<MemTable>,
        seq: AtomicU64,
        published: AtomicU64,
        wal_records: AtomicU64,
        wal_delay_ns: u64,
        mem_delay_ns: u64,
        wal_bytes: AtomicU64,
        member_applies: AtomicU64,
    }

    impl TestBackend {
        fn new(wal_delay_ns: u64, mem_delay_ns: u64) -> Arc<TestBackend> {
            Arc::new(TestBackend {
                mem: MemTable::new(0),
                seq: AtomicU64::new(0),
                published: AtomicU64::new(0),
                wal_records: AtomicU64::new(0),
                wal_delay_ns,
                mem_delay_ns,
                wal_bytes: AtomicU64::new(0),
                member_applies: AtomicU64::new(0),
            })
        }
    }

    impl WriteBackend for TestBackend {
        fn preprocess(&self, _b: u64) -> DbResult<PreprocessStalls> {
            Ok(PreprocessStalls::default())
        }
        fn allocate_seq(&self, count: u64) -> u64 {
            let first = self.reserve_seq(count);
            self.publish_seq(first + count - 1);
            first
        }
        fn reserve_seq(&self, count: u64) -> u64 {
            self.seq.fetch_add(count, Ordering::Relaxed) + 1
        }
        fn publish_seq(&self, last: u64) {
            self.published.fetch_max(last, Ordering::Relaxed);
        }
        fn write_wal(&self, group: &WriteBatch) -> DbResult<()> {
            self.wal_records.fetch_add(1, Ordering::Relaxed);
            self.wal_bytes
                .fetch_add(group.byte_size() as u64, Ordering::Relaxed);
            if self.wal_delay_ns > 0 {
                xlsm_sim::sleep_nanos(self.wal_delay_ns);
            }
            Ok(())
        }
        fn write_memtable(&self, group: &WriteBatch) -> DbResult<()> {
            // Per-entry cost: the serial leader pays for the whole group.
            if self.mem_delay_ns > 0 {
                xlsm_sim::sleep_nanos(self.mem_delay_ns * u64::from(group.count()));
            }
            group.apply_to(&self.mem)
        }
        fn write_memtable_member(&self, batch: &WriteBatch) -> DbResult<()> {
            self.member_applies.fetch_add(1, Ordering::Relaxed);
            if self.mem_delay_ns > 0 {
                xlsm_sim::sleep_nanos(self.mem_delay_ns * u64::from(batch.count()));
            }
            for (seq, op) in (batch.sequence()..).zip(batch.iter()) {
                let (t, key, value) = op?;
                self.mem.add_concurrent(seq, t, key, value, 0);
            }
            Ok(())
        }
    }

    fn batch_with(key: &[u8], value: &[u8]) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(key, value);
        b
    }

    #[test]
    fn single_writer_commits() {
        Runtime::new().run(|| {
            let q = WriteQueue::new(false, 1 << 20);
            let be = TestBackend::new(0, 0);
            let stats = DbStats::new();
            q.submit(batch_with(b"k", b"v"), be.as_ref(), &stats)
                .unwrap();
            assert_eq!(be.mem.get(b"k", 100).unwrap(), Some(Some(b"v".to_vec())));
            assert_eq!(stats.ticker(Ticker::WriteGroupsLed), 1);
        });
    }

    #[test]
    fn concurrent_writers_group_under_slow_wal() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(false, 1 << 20));
            // 50 µs WAL: while the first leader is inside, the rest pile up
            // and the second group should absorb them all.
            let be = TestBackend::new(50_000, 0);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..10u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    let key = format!("key{i}");
                    q.submit(batch_with(key.as_bytes(), b"v"), be.as_ref(), &stats)
                        .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            for i in 0..10u32 {
                let key = format!("key{i}");
                assert_eq!(
                    be.mem.get(key.as_bytes(), 1000).unwrap(),
                    Some(Some(b"v".to_vec())),
                    "missing {key}"
                );
            }
            let groups = be.wal_records.load(Ordering::Relaxed);
            assert!(
                groups < 10,
                "grouping should merge batches: {groups} WAL records for 10 writes"
            );
            assert_eq!(
                stats.ticker(Ticker::WriteGroupsLed) + stats.ticker(Ticker::WritesJoinedGroup),
                10
            );
        });
    }

    #[test]
    fn sequences_are_unique_and_ordered() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(true, 1 << 20));
            let be = TestBackend::new(10_000, 5_000);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..20u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    // Every writer writes the same key; final value must be
                    // the one with the highest sequence.
                    q.submit(
                        batch_with(b"shared", format!("{i}").as_bytes()),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            // 20 committed ops => last_sequence 20 and a well-defined winner.
            assert_eq!(be.seq.load(Ordering::Relaxed), 20);
            assert!(be.mem.get(b"shared", 1000).unwrap().unwrap().is_some());
            assert_eq!(be.mem.num_entries(), 20);
        });
    }

    #[test]
    fn pipelined_overlaps_wal_and_memtable() {
        // With WAL = 40 µs and memtable = 40 µs per group and grouping
        // disabled (max group = 1 batch), 4 sequential groups take:
        //   non-pipelined: 4 × 80 µs = 320 µs
        //   pipelined:     WAL chain 4 × 40 + final memtable 40 = 200 µs
        fn run(pipelined: bool) -> u64 {
            Runtime::new().run(move || {
                let q = Arc::new(WriteQueue::new(pipelined, 1)); // no grouping
                let be = TestBackend::new(40_000, 40_000);
                let stats = Arc::new(DbStats::new());
                let mut handles = Vec::new();
                for i in 0..4u32 {
                    let q = Arc::clone(&q);
                    let be = Arc::clone(&be);
                    let stats = Arc::clone(&stats);
                    handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                        q.submit(
                            batch_with(format!("k{i}").as_bytes(), b"v"),
                            be.as_ref(),
                            &stats,
                        )
                        .unwrap();
                    }));
                }
                for h in handles {
                    h.join();
                }
                xlsm_sim::now_nanos()
            })
        }
        let t_plain = run(false);
        let t_pipe = run(true);
        assert_eq!(t_plain, 320_000);
        assert_eq!(t_pipe, 200_000);
    }

    /// Concurrent memtable mode: a group of members each pays its own
    /// memtable delay *in parallel* (overlapping virtual-time sleeps), so
    /// the group's memtable stage costs ~one member delay instead of the
    /// serial sum.
    #[test]
    fn concurrent_members_overlap_memtable_inserts() {
        fn run(concurrent: bool) -> (u64, u64) {
            Runtime::new().run(move || {
                let q =
                    Arc::new(WriteQueue::new(true, 1 << 20).with_concurrent_apply(concurrent, 2));
                // Slow first WAL (one batch alone), then everyone else piles
                // into one group behind it.
                let be = TestBackend::new(50_000, 30_000);
                let stats = Arc::new(DbStats::new());
                let mut handles = Vec::new();
                for i in 0..9u32 {
                    let q = Arc::clone(&q);
                    let be = Arc::clone(&be);
                    let stats = Arc::clone(&stats);
                    handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                        q.submit(
                            batch_with(format!("k{i}").as_bytes(), b"v"),
                            be.as_ref(),
                            &stats,
                        )
                        .unwrap();
                    }));
                }
                for h in handles {
                    h.join();
                }
                for i in 0..9u32 {
                    assert_eq!(
                        be.mem.get(format!("k{i}").as_bytes(), 1000).unwrap(),
                        Some(Some(b"v".to_vec())),
                        "missing k{i}"
                    );
                }
                (
                    xlsm_sim::now_nanos(),
                    stats.ticker(Ticker::ConcurrentMemtableApplies),
                )
            })
        }
        let (t_serial, applies_serial) = run(false);
        let (t_conc, applies_conc) = run(true);
        assert_eq!(applies_serial, 0);
        assert!(
            applies_conc >= 8,
            "the 8-member group should apply concurrently: {applies_conc}"
        );
        assert!(
            t_conc < t_serial,
            "concurrent memtable stage must beat serial: {t_conc} vs {t_serial}"
        );
    }

    /// The `write_done_count` barrier: the group's last sequence is only
    /// published once every member's sub-batch is applied — never while a
    /// member is still mid-insert.
    #[test]
    fn barrier_publishes_after_every_member_applied() {
        Runtime::new().run(|| {
            // min_batches = 1 so even the first writer's solo group defers
            // publication to the barrier; otherwise the serial fallback
            // publishes at allocation time and the invariant below only
            // holds per-group, not globally.
            let q = Arc::new(WriteQueue::new(true, 1 << 20).with_concurrent_apply(true, 1));
            let be = TestBackend::new(50_000, 20_000);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..6u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(
                        batch_with(format!("k{i}").as_bytes(), b"v"),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            // Observer: whenever sequences are published, every entry at or
            // below the watermark must already be readable in the memtable.
            let be2 = Arc::clone(&be);
            let obs = xlsm_sim::spawn("observer", move || {
                for _ in 0..60 {
                    xlsm_sim::sleep_nanos(5_000);
                    let published = be2.published.load(Ordering::Relaxed);
                    let visible = be2.mem.num_entries();
                    assert!(
                        visible >= published,
                        "published watermark {published} ahead of applied entries {visible}: \
                         a reader could observe a half-applied group"
                    );
                }
            });
            for h in handles {
                h.join();
            }
            obs.join();
            assert_eq!(be.published.load(Ordering::Relaxed), 6);
            assert_eq!(be.mem.num_entries(), 6);
        });
    }

    /// Groups smaller than `concurrent_apply_min_batches` stay on the
    /// serial path even with concurrent mode enabled.
    #[test]
    fn small_groups_fall_back_to_serial_apply() {
        Runtime::new().run(|| {
            let q = WriteQueue::new(true, 1 << 20).with_concurrent_apply(true, 2);
            let be = TestBackend::new(0, 0);
            let stats = DbStats::new();
            q.submit(batch_with(b"k", b"v"), be.as_ref(), &stats)
                .unwrap();
            assert_eq!(stats.ticker(Ticker::ConcurrentMemtableApplies), 0);
            assert_eq!(be.member_applies.load(Ordering::Relaxed), 0);
            assert_eq!(be.mem.get(b"k", 100).unwrap(), Some(Some(b"v".to_vec())));
            // Serial fallback still publishes through allocate_seq.
            assert_eq!(be.published.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn leader_error_propagates_to_followers() {
        Runtime::new().run(|| {
            struct FailingBackend;
            impl WriteBackend for FailingBackend {
                fn preprocess(&self, _b: u64) -> DbResult<PreprocessStalls> {
                    xlsm_sim::sleep_nanos(20_000); // let followers enqueue
                    Err(DbError::ShuttingDown)
                }
                fn allocate_seq(&self, _c: u64) -> u64 {
                    0
                }
                fn write_wal(&self, _g: &WriteBatch) -> DbResult<()> {
                    unreachable!()
                }
                fn write_memtable(&self, _g: &WriteBatch) -> DbResult<()> {
                    unreachable!()
                }
            }
            let q = Arc::new(WriteQueue::new(false, 1 << 20));
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..3u32 {
                let q = Arc::clone(&q);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(batch_with(b"k", b"v"), &FailingBackend, &stats)
                }));
            }
            let mut errors = 0;
            for h in handles {
                if h.join().is_err() {
                    errors += 1;
                }
            }
            assert_eq!(errors, 3, "all writers in the failed group see the error");
            assert_eq!(q.queued(), 0);
        });
    }

    /// A member apply failure in the concurrent stage fails the whole
    /// group, and the sequence range is never published.
    #[test]
    fn member_error_fails_group_without_publishing() {
        Runtime::new().run(|| {
            struct MemberFail {
                seq: AtomicU64,
                published: AtomicU64,
            }
            impl WriteBackend for MemberFail {
                fn preprocess(&self, _b: u64) -> DbResult<PreprocessStalls> {
                    xlsm_sim::sleep_nanos(20_000); // let followers enqueue
                    Ok(PreprocessStalls::default())
                }
                fn allocate_seq(&self, c: u64) -> u64 {
                    let first = self.reserve_seq(c);
                    self.publish_seq(first + c - 1);
                    first
                }
                fn reserve_seq(&self, c: u64) -> u64 {
                    self.seq.fetch_add(c, Ordering::Relaxed) + 1
                }
                fn publish_seq(&self, last: u64) {
                    self.published.fetch_max(last, Ordering::Relaxed);
                }
                fn write_wal(&self, _g: &WriteBatch) -> DbResult<()> {
                    Ok(())
                }
                fn write_memtable(&self, _g: &WriteBatch) -> DbResult<()> {
                    Ok(())
                }
                fn write_memtable_member(&self, batch: &WriteBatch) -> DbResult<()> {
                    if batch.sequence() > 1 {
                        Err(DbError::Corruption("member apply failed".into()))
                    } else {
                        Ok(())
                    }
                }
            }
            let q = Arc::new(WriteQueue::new(true, 1 << 20).with_concurrent_apply(true, 2));
            let be = Arc::new(MemberFail {
                seq: AtomicU64::new(0),
                published: AtomicU64::new(0),
            });
            let stats = Arc::new(DbStats::new());
            // The first writer always leads a solo group (serial fallback,
            // seq 1, succeeds); the next three pile up during its 20 µs
            // preprocess and form one concurrent group whose members all
            // fail (their sequences are > 1).
            let mut handles = Vec::new();
            for i in 0..4u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(
                        batch_with(format!("k{i}").as_bytes(), b"v"),
                        be.as_ref(),
                        &stats,
                    )
                }));
            }
            let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            assert!(results[0].is_ok(), "solo first group succeeds: {results:?}");
            assert!(
                results[1..].iter().all(Result::is_err),
                "every member of the failed group errors: {results:?}"
            );
            assert_eq!(
                be.published.load(Ordering::Relaxed),
                1,
                "the failed group must not publish its reserved sequences"
            );
            assert_eq!(q.queued(), 0);
        });
    }

    /// Protected batches survive grouping: the merged group carries every
    /// member's protection sidecar and the leader's pre-WAL verify passes.
    #[test]
    fn protected_batches_group_and_commit() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(false, 1 << 20));
            let be = TestBackend::new(50_000, 0);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..6u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    let mut b = WriteBatch::with_protection(8);
                    b.put(format!("k{i}").as_bytes(), b"v");
                    q.submit(b, be.as_ref(), &stats).unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            for i in 0..6u32 {
                assert_eq!(
                    be.mem.get(format!("k{i}").as_bytes(), 1000).unwrap(),
                    Some(Some(b"v".to_vec())),
                    "missing k{i}"
                );
            }
            let groups = be.wal_records.load(Ordering::Relaxed);
            assert!(groups < 6, "protected batches must still group: {groups}");
        });
    }

    #[test]
    fn breakdowns_reconcile_with_observed_latency() {
        // With no controller stalls, queue-wait + WAL + pipeline-wait +
        // memtable must explain a writer's end-to-end latency exactly.
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(false, 1)); // no grouping
            let be = TestBackend::new(30_000, 20_000);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..6u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(
                        batch_with(format!("k{i}").as_bytes(), b"v"),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            let t = stats.stall.snapshot();
            assert_eq!(t.ops, 6);
            assert_eq!(
                t.accounted_ns(),
                t.total_write_ns,
                "breakdown must fully explain observed latency: {t:?}"
            );
            assert_eq!(stats.write_queue_wait.count(), 6);
            assert!(t.queue_wait_ns > 0, "later groups waited in the queue");
        });
    }

    /// Pipelined mode with the memtable stage slower than the WAL: the
    /// handoff wait lands in `pipeline_wait_ns`, not in
    /// `memtable_insert_ns`, and the totals still reconcile exactly.
    #[test]
    fn pipeline_wait_is_split_from_memtable_insert() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(true, 1)); // no grouping
            let be = TestBackend::new(20_000, 50_000); // memtable-bound
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..4u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(
                        batch_with(format!("k{i}").as_bytes(), b"v"),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            let t = stats.stall.snapshot();
            assert_eq!(t.ops, 4);
            assert!(
                t.pipeline_wait_ns > 0,
                "memtable-bound pipeline must report handoff wait: {t:?}"
            );
            // Each group's memtable stage proper is exactly 50 µs.
            assert_eq!(t.memtable_insert_ns, 4 * 50_000);
            assert_eq!(
                t.accounted_ns(),
                t.total_write_ns,
                "split components must still reconcile: {t:?}"
            );
        });
    }

    #[test]
    fn waiting_writers_gauge_reflects_queue() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(false, 1)); // no grouping
            let be = TestBackend::new(100_000, 0); // slow WAL builds a queue
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..8u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(
                        batch_with(format!("k{i}").as_bytes(), b"v"),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            assert!(
                stats.avg_waiting_writers() > 1.0,
                "queue should have been observed non-trivial: {}",
                stats.avg_waiting_writers()
            );
        });
    }
}
