//! The writer queue: group commit and the paper's **Algorithm 2**
//! (pipelined write process).
//!
//! RocksDB keeps *one* write-thread queue. The writer at the head becomes
//! the **leader** of a batch group: it merges the queued batches (up to
//! `max_write_batch_group_size`), runs the stall/delay preprocessing, writes
//! one WAL record for the whole group and applies it to the memtable. In
//! **pipelined** mode the leader hands queue leadership to the next writer
//! right after the WAL write, so group *N+1*'s WAL overlaps group *N*'s
//! memtable insertion; memtable insertions themselves stay serialized in
//! group order (a FIFO semaphore).
//!
//! This queue is where the paper's Finding #3 lives: on 3D XPoint, reads
//! complete quickly, client threads come back to write sooner, the queue
//! grows, and write tail latency *exceeds* the SATA flash SSD despite the
//! faster device (Figs. 15–16).

use crate::batch::WriteBatch;
use crate::error::{DbError, DbResult};
use crate::stall::{PreprocessStalls, WriteBreakdown};
use crate::stats::{DbStats, Ticker};
use std::collections::VecDeque;
use std::sync::Arc;
use xlsm_sim::sync::{Semaphore, WaitSet};
use xlsm_sim::Nanos;

/// Stage callbacks supplied by the database.
pub trait WriteBackend: Send + Sync {
    /// Stall handling (Algorithm 1) and memtable room-making. Runs once per
    /// group, before sequence allocation. Returns the controller-induced
    /// waiting it performed, for the group's stall accounting.
    ///
    /// # Errors
    ///
    /// Shutdown or filesystem failures abort the group.
    fn preprocess(&self, group_bytes: u64) -> DbResult<PreprocessStalls>;
    /// Reserves `count` consecutive sequence numbers; returns the first.
    fn allocate_seq(&self, count: u64) -> u64;
    /// Appends the group's WAL record.
    ///
    /// # Errors
    ///
    /// Filesystem failures abort the group.
    fn write_wal(&self, group: &WriteBatch) -> DbResult<()>;
    /// Applies the group to the memtable (charging CPU costs).
    ///
    /// # Errors
    ///
    /// Corruption in the encoded batch.
    fn write_memtable(&self, group: &WriteBatch) -> DbResult<()>;
}

struct Writer {
    batch: parking_lot::Mutex<Option<WriteBatch>>,
    result: parking_lot::Mutex<Option<DbResult<()>>>,
    wake: WaitSet,
    /// When this writer joined the queue (for queue-wait attribution).
    enqueued_at: Nanos,
}

impl Writer {
    fn new(batch: WriteBatch) -> Arc<Writer> {
        Arc::new(Writer {
            batch: parking_lot::Mutex::new(Some(batch)),
            result: parking_lot::Mutex::new(None),
            wake: WaitSet::new("writer"),
            enqueued_at: xlsm_sim::now_nanos(),
        })
    }
}

/// The single write-thread queue of a database.
pub struct WriteQueue {
    queue: parking_lot::Mutex<VecDeque<Arc<Writer>>>,
    mem_stage: Semaphore,
    pipelined: bool,
    max_group_bytes: usize,
}

impl std::fmt::Debug for WriteQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteQueue")
            .field("queued", &self.queue.lock().len())
            .field("pipelined", &self.pipelined)
            .finish()
    }
}

impl WriteQueue {
    /// Creates the queue.
    pub fn new(pipelined: bool, max_group_bytes: usize) -> WriteQueue {
        WriteQueue {
            queue: parking_lot::Mutex::new(VecDeque::new()),
            mem_stage: Semaphore::new("memtable-stage", 1),
            pipelined,
            max_group_bytes,
        }
    }

    /// Writers currently queued (Fig. 16's instantaneous value).
    pub fn queued(&self) -> usize {
        self.queue.lock().len()
    }

    fn is_front(&self, w: &Arc<Writer>) -> bool {
        self.queue.lock().front().is_some_and(|f| Arc::ptr_eq(f, w))
    }

    /// Submits `batch` and blocks until it commits (possibly as part of a
    /// group led by another writer).
    ///
    /// # Errors
    ///
    /// Whatever the group leader's commit produced.
    pub fn submit(
        &self,
        batch: WriteBatch,
        backend: &dyn WriteBackend,
        stats: &DbStats,
    ) -> DbResult<()> {
        let me = Writer::new(batch);
        {
            self.queue.lock().push_back(Arc::clone(&me));
        }
        stats.writer_waiting_inc();

        // Wait until we are either committed by a leader or become leader.
        loop {
            if let Some(result) = me.result.lock().clone() {
                stats.bump(Ticker::WritesJoinedGroup);
                return result;
            }
            if self.is_front(&me) {
                break;
            }
            me.wake.wait();
        }

        // --- We are the leader. ---
        stats.bump(Ticker::WriteGroupsLed);
        let (group, members) = self.build_group(&me);
        let result = self.commit_group(group, &members, backend, stats);
        for m in &members {
            if !Arc::ptr_eq(m, &me) {
                *m.result.lock() = Some(result.clone());
                m.wake.notify_all();
            }
        }
        stats.sample_waiting_writers();
        result
    }

    /// Collects the batch group starting at the queue head (which must be
    /// `leader`). Batches are *moved out* of the member writers.
    fn build_group(&self, leader: &Arc<Writer>) -> (WriteBatch, Vec<Arc<Writer>>) {
        let queue = self.queue.lock();
        debug_assert!(Arc::ptr_eq(queue.front().unwrap(), leader));
        let mut group = leader.batch.lock().take().expect("leader batch taken");
        let mut members = vec![Arc::clone(leader)];
        let mut bytes = group.byte_size();
        for w in queue.iter().skip(1) {
            let mut slot = w.batch.lock();
            let size = slot.as_ref().map_or(0, WriteBatch::byte_size);
            if bytes + size > self.max_group_bytes {
                break;
            }
            if let Some(b) = slot.take() {
                group.append_batch(&b);
                bytes += size;
                members.push(Arc::clone(w));
            }
        }
        (group, members)
    }

    /// Pops `members` off the queue head and wakes the next leader.
    fn pop_group(&self, members: &[Arc<Writer>], stats: &DbStats) {
        let next = {
            let mut queue = self.queue.lock();
            for m in members {
                debug_assert!(Arc::ptr_eq(queue.front().unwrap(), m));
                queue.pop_front();
                stats.writer_waiting_dec();
            }
            queue.front().cloned()
        };
        if let Some(n) = next {
            n.wake.notify_all();
        }
    }

    fn commit_group(
        &self,
        mut group: WriteBatch,
        members: &[Arc<Writer>],
        backend: &dyn WriteBackend,
        stats: &DbStats,
    ) -> DbResult<()> {
        let t_start = xlsm_sim::now_nanos();
        let pre = match backend.preprocess(group.byte_size() as u64) {
            Ok(pre) => pre,
            Err(e) => {
                self.pop_group(members, stats);
                return Err(e);
            }
        };
        let seq = backend.allocate_seq(group.count() as u64);
        group.set_sequence(seq);
        let t_wal = xlsm_sim::now_nanos();
        if let Err(e) = backend.write_wal(&group) {
            self.pop_group(members, stats);
            return Err(e);
        }
        let t_mem = xlsm_sim::now_nanos();
        let wal_ns = t_mem - t_wal;
        let r = if self.pipelined {
            // Algorithm 2: acquire the memtable stage while still at the
            // queue head (guarantees group-ordered memtable writes), then
            // hand queue leadership over so the next group's WAL overlaps
            // our memtable insertion.
            self.mem_stage.acquire(1);
            self.pop_group(members, stats);
            let r = backend.write_memtable(&group);
            self.mem_stage.release(1);
            r
        } else {
            let r = backend.write_memtable(&group);
            self.pop_group(members, stats);
            r
        };
        if r.is_ok() {
            let t_done = xlsm_sim::now_nanos();
            // `memtable_insert_ns` includes the pipeline-stage wait: both
            // are time the group spent in the memtable stage.
            let mem_ns = t_done - t_mem;
            for m in members {
                let queue_wait = t_start.saturating_sub(m.enqueued_at);
                stats.write_queue_wait.record(queue_wait);
                stats.stall.record_op(
                    t_done.saturating_sub(m.enqueued_at),
                    &WriteBreakdown {
                        queue_wait_ns: queue_wait,
                        wal_append_ns: wal_ns,
                        memtable_insert_ns: mem_ns,
                        delay_sleep_ns: pre.delay_sleep_ns,
                        stop_wait_ns: pre.stop_wait_ns,
                    },
                );
            }
        }
        r
    }
}

/// A backend that fails every operation — used to propagate shutdown.
#[derive(Debug)]
pub struct ClosedBackend;

impl WriteBackend for ClosedBackend {
    fn preprocess(&self, _group_bytes: u64) -> DbResult<PreprocessStalls> {
        Err(DbError::ShuttingDown)
    }
    fn allocate_seq(&self, _count: u64) -> u64 {
        0
    }
    fn write_wal(&self, _group: &WriteBatch) -> DbResult<()> {
        Err(DbError::ShuttingDown)
    }
    fn write_memtable(&self, _group: &WriteBatch) -> DbResult<()> {
        Err(DbError::ShuttingDown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::MemTable;
    use std::sync::atomic::{AtomicU64, Ordering};
    use xlsm_sim::Runtime;

    /// Test backend: applies to a memtable, counts WAL writes, optionally
    /// sleeps in the WAL stage to create grouping/overlap windows.
    struct TestBackend {
        mem: Arc<MemTable>,
        seq: AtomicU64,
        wal_records: AtomicU64,
        wal_delay_ns: u64,
        mem_delay_ns: u64,
        wal_bytes: AtomicU64,
    }

    impl TestBackend {
        fn new(wal_delay_ns: u64, mem_delay_ns: u64) -> Arc<TestBackend> {
            Arc::new(TestBackend {
                mem: MemTable::new(0),
                seq: AtomicU64::new(0),
                wal_records: AtomicU64::new(0),
                wal_delay_ns,
                mem_delay_ns,
                wal_bytes: AtomicU64::new(0),
            })
        }
    }

    impl WriteBackend for TestBackend {
        fn preprocess(&self, _b: u64) -> DbResult<PreprocessStalls> {
            Ok(PreprocessStalls::default())
        }
        fn allocate_seq(&self, count: u64) -> u64 {
            self.seq.fetch_add(count, Ordering::Relaxed) + 1
        }
        fn write_wal(&self, group: &WriteBatch) -> DbResult<()> {
            self.wal_records.fetch_add(1, Ordering::Relaxed);
            self.wal_bytes
                .fetch_add(group.byte_size() as u64, Ordering::Relaxed);
            if self.wal_delay_ns > 0 {
                xlsm_sim::sleep_nanos(self.wal_delay_ns);
            }
            Ok(())
        }
        fn write_memtable(&self, group: &WriteBatch) -> DbResult<()> {
            if self.mem_delay_ns > 0 {
                xlsm_sim::sleep_nanos(self.mem_delay_ns);
            }
            group.apply_to(&self.mem)
        }
    }

    fn batch_with(key: &[u8], value: &[u8]) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(key, value);
        b
    }

    #[test]
    fn single_writer_commits() {
        Runtime::new().run(|| {
            let q = WriteQueue::new(false, 1 << 20);
            let be = TestBackend::new(0, 0);
            let stats = DbStats::new();
            q.submit(batch_with(b"k", b"v"), be.as_ref(), &stats)
                .unwrap();
            assert_eq!(be.mem.get(b"k", 100), Some(Some(b"v".to_vec())));
            assert_eq!(stats.ticker(Ticker::WriteGroupsLed), 1);
        });
    }

    #[test]
    fn concurrent_writers_group_under_slow_wal() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(false, 1 << 20));
            // 50 µs WAL: while the first leader is inside, the rest pile up
            // and the second group should absorb them all.
            let be = TestBackend::new(50_000, 0);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..10u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    let key = format!("key{i}");
                    q.submit(batch_with(key.as_bytes(), b"v"), be.as_ref(), &stats)
                        .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            for i in 0..10u32 {
                let key = format!("key{i}");
                assert_eq!(
                    be.mem.get(key.as_bytes(), 1000),
                    Some(Some(b"v".to_vec())),
                    "missing {key}"
                );
            }
            let groups = be.wal_records.load(Ordering::Relaxed);
            assert!(
                groups < 10,
                "grouping should merge batches: {groups} WAL records for 10 writes"
            );
            assert_eq!(
                stats.ticker(Ticker::WriteGroupsLed) + stats.ticker(Ticker::WritesJoinedGroup),
                10
            );
        });
    }

    #[test]
    fn sequences_are_unique_and_ordered() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(true, 1 << 20));
            let be = TestBackend::new(10_000, 5_000);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..20u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    // Every writer writes the same key; final value must be
                    // the one with the highest sequence.
                    q.submit(
                        batch_with(b"shared", format!("{i}").as_bytes()),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            // 20 committed ops => last_sequence 20 and a well-defined winner.
            assert_eq!(be.seq.load(Ordering::Relaxed), 20);
            assert!(be.mem.get(b"shared", 1000).unwrap().is_some());
            assert_eq!(be.mem.num_entries(), 20);
        });
    }

    #[test]
    fn pipelined_overlaps_wal_and_memtable() {
        // With WAL = 40 µs and memtable = 40 µs per group and grouping
        // disabled (max group = 1 batch), 4 sequential groups take:
        //   non-pipelined: 4 × 80 µs = 320 µs
        //   pipelined:     WAL chain 4 × 40 + final memtable 40 = 200 µs
        fn run(pipelined: bool) -> u64 {
            Runtime::new().run(move || {
                let q = Arc::new(WriteQueue::new(pipelined, 1)); // no grouping
                let be = TestBackend::new(40_000, 40_000);
                let stats = Arc::new(DbStats::new());
                let mut handles = Vec::new();
                for i in 0..4u32 {
                    let q = Arc::clone(&q);
                    let be = Arc::clone(&be);
                    let stats = Arc::clone(&stats);
                    handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                        q.submit(
                            batch_with(format!("k{i}").as_bytes(), b"v"),
                            be.as_ref(),
                            &stats,
                        )
                        .unwrap();
                    }));
                }
                for h in handles {
                    h.join();
                }
                xlsm_sim::now_nanos()
            })
        }
        let t_plain = run(false);
        let t_pipe = run(true);
        assert_eq!(t_plain, 320_000);
        assert_eq!(t_pipe, 200_000);
    }

    #[test]
    fn leader_error_propagates_to_followers() {
        Runtime::new().run(|| {
            struct FailingBackend;
            impl WriteBackend for FailingBackend {
                fn preprocess(&self, _b: u64) -> DbResult<PreprocessStalls> {
                    xlsm_sim::sleep_nanos(20_000); // let followers enqueue
                    Err(DbError::ShuttingDown)
                }
                fn allocate_seq(&self, _c: u64) -> u64 {
                    0
                }
                fn write_wal(&self, _g: &WriteBatch) -> DbResult<()> {
                    unreachable!()
                }
                fn write_memtable(&self, _g: &WriteBatch) -> DbResult<()> {
                    unreachable!()
                }
            }
            let q = Arc::new(WriteQueue::new(false, 1 << 20));
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..3u32 {
                let q = Arc::clone(&q);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(batch_with(b"k", b"v"), &FailingBackend, &stats)
                }));
            }
            let mut errors = 0;
            for h in handles {
                if h.join().is_err() {
                    errors += 1;
                }
            }
            assert_eq!(errors, 3, "all writers in the failed group see the error");
            assert_eq!(q.queued(), 0);
        });
    }

    #[test]
    fn breakdowns_reconcile_with_observed_latency() {
        // With no controller stalls, queue-wait + WAL + memtable must
        // explain a writer's end-to-end latency exactly.
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(false, 1)); // no grouping
            let be = TestBackend::new(30_000, 20_000);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..6u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(
                        batch_with(format!("k{i}").as_bytes(), b"v"),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            let t = stats.stall.snapshot();
            assert_eq!(t.ops, 6);
            assert_eq!(
                t.accounted_ns(),
                t.total_write_ns,
                "breakdown must fully explain observed latency: {t:?}"
            );
            assert_eq!(stats.write_queue_wait.count(), 6);
            assert!(t.queue_wait_ns > 0, "later groups waited in the queue");
        });
    }

    #[test]
    fn waiting_writers_gauge_reflects_queue() {
        Runtime::new().run(|| {
            let q = Arc::new(WriteQueue::new(false, 1)); // no grouping
            let be = TestBackend::new(100_000, 0); // slow WAL builds a queue
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for i in 0..8u32 {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    q.submit(
                        batch_with(format!("k{i}").as_bytes(), b"v"),
                        be.as_ref(),
                        &stats,
                    )
                    .unwrap();
                }));
            }
            for h in handles {
                h.join();
            }
            assert!(
                stats.avg_waiting_writers() > 1.0,
                "queue should have been observed non-trivial: {}",
                stats.avg_waiting_writers()
            );
        });
    }
}
