//! RocksDB-style background-error handling.
//!
//! Flush and compaction workers never panic on I/O failure. Instead each
//! error is classified ([`ErrorSeverity`]): **retryable** faults (transient
//! injected I/O errors) are retried with bounded exponential backoff and
//! auto-resume on success; **hard** faults (corruption, power loss,
//! exhausted retries) transition the database to read-only mode, where
//! writes fail fast with [`DbError::ReadOnly`] while reads keep serving.
//! [`crate::Db::resume`] re-runs the failed work and clears the state —
//! the `DB::Resume()` analogue.

use crate::error::DbError;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Which background job produced an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackgroundOp {
    /// Memtable flush to an L0 SST.
    Flush,
    /// Level compaction.
    Compaction,
    /// Obsolete-file deletion after a compaction.
    ObsoletePurge,
    /// Background scrub: paced re-read and checksum verification of live
    /// SSTs. A scrub-detected corruption is a hard error like any other.
    Scrub,
}

/// How bad a background error is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorSeverity {
    /// A retry may succeed; the worker backs off and re-runs the job.
    Retryable,
    /// Permanent for this incarnation: the database goes read-only.
    Hard,
}

/// Classifies an error: transient I/O faults are retryable, everything
/// else (corruption, structural filesystem errors, power loss) is hard.
pub fn classify(e: &DbError) -> ErrorSeverity {
    if e.is_retryable() {
        ErrorSeverity::Retryable
    } else {
        ErrorSeverity::Hard
    }
}

/// A recorded background error, surfaced via `Db::metrics()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackgroundError {
    /// The job that failed.
    pub op: BackgroundOp,
    /// The error itself.
    pub error: DbError,
    /// Its classification.
    pub severity: ErrorSeverity,
    /// Retries already attempted when this was recorded.
    pub retries: u32,
    /// Virtual time of the failure.
    pub at_nanos: u64,
}

/// Holds the engine's background-error state: the most relevant recorded
/// error plus the read-only flag.
pub struct ErrorHandler {
    state: parking_lot::Mutex<Option<BackgroundError>>,
    read_only: AtomicBool,
}

impl fmt::Debug for ErrorHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ErrorHandler")
            .field("state", &*self.state.lock())
            .field("read_only", &self.is_read_only())
            .finish()
    }
}

impl Default for ErrorHandler {
    fn default() -> ErrorHandler {
        ErrorHandler::new()
    }
}

impl ErrorHandler {
    /// A clean handler: no error, writable.
    pub fn new() -> ErrorHandler {
        ErrorHandler {
            state: parking_lot::Mutex::new(None),
            read_only: AtomicBool::new(false),
        }
    }

    /// Records `error` from `op`, returning its severity. A recorded hard
    /// error is never overwritten by a retryable one (severity only
    /// escalates).
    pub fn record(&self, op: BackgroundOp, error: DbError, retries: u32) -> ErrorSeverity {
        let severity = classify(&error);
        let mut state = self.state.lock();
        let keep_existing = matches!(
            &*state,
            Some(b) if b.severity == ErrorSeverity::Hard && severity == ErrorSeverity::Retryable
        );
        if !keep_existing {
            *state = Some(BackgroundError {
                op,
                error,
                severity,
                retries,
                at_nanos: xlsm_sim::now_nanos(),
            });
        }
        severity
    }

    /// Escalates the recorded error to hard (retry budget exhausted).
    pub fn escalate(&self) {
        if let Some(b) = self.state.lock().as_mut() {
            b.severity = ErrorSeverity::Hard;
        }
    }

    /// Flips the database to read-only mode.
    pub fn enter_read_only(&self) {
        self.read_only.store(true, Ordering::Relaxed);
    }

    /// Whether writes are currently rejected.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }

    /// Clears the error state and re-enables writes (auto-resume or
    /// explicit [`crate::Db::resume`]).
    pub fn clear(&self) {
        *self.state.lock() = None;
        self.read_only.store(false, Ordering::Relaxed);
    }

    /// The currently recorded error, if any.
    pub fn current(&self) -> Option<BackgroundError> {
        self.state.lock().clone()
    }

    /// The fail-fast error writers receive while read-only, or `None` if
    /// the database is writable.
    pub fn read_only_error(&self) -> Option<DbError> {
        if !self.is_read_only() {
            return None;
        }
        let reason = self
            .state
            .lock()
            .as_ref()
            .map(|b| format!("{:?} failed: {}", b.op, b.error))
            .unwrap_or_else(|| "background error".to_owned());
        Some(DbError::ReadOnly(reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_simfs::FsError;

    fn retryable_err() -> DbError {
        DbError::from(FsError::Io {
            op: "append",
            path: "f.sst".into(),
            retryable: true,
        })
    }

    #[test]
    fn hard_error_not_clobbered_by_retryable() {
        xlsm_sim::Runtime::new().run(|| {
            let h = ErrorHandler::new();
            assert_eq!(
                h.record(BackgroundOp::Flush, DbError::Corruption("x".into()), 0),
                ErrorSeverity::Hard
            );
            assert_eq!(
                h.record(BackgroundOp::ObsoletePurge, retryable_err(), 0),
                ErrorSeverity::Retryable
            );
            let cur = h.current().unwrap();
            assert_eq!(cur.severity, ErrorSeverity::Hard);
            assert_eq!(cur.op, BackgroundOp::Flush);
        });
    }

    #[test]
    fn read_only_cycle() {
        xlsm_sim::Runtime::new().run(|| {
            let h = ErrorHandler::new();
            assert!(h.read_only_error().is_none());
            h.record(BackgroundOp::Flush, retryable_err(), 3);
            h.escalate();
            h.enter_read_only();
            match h.read_only_error() {
                Some(DbError::ReadOnly(msg)) => assert!(msg.contains("Flush")),
                other => panic!("expected ReadOnly, got {other:?}"),
            }
            assert_eq!(h.current().unwrap().severity, ErrorSeverity::Hard);
            h.clear();
            assert!(!h.is_read_only());
            assert!(h.current().is_none());
        });
    }
}
