//! Internal key encoding and sequence numbers (LevelDB/RocksDB layout).
//!
//! An *internal key* is `user_key ++ fixed64(seq << 8 | type)`. Internal keys
//! sort by user key ascending, then by sequence number **descending** (newer
//! first), then by type descending — achieved by comparing the packed
//! trailer in reverse.

use std::cmp::Ordering;

/// Monotonic operation sequence number (56 bits usable).
pub type SequenceNumber = u64;

/// Largest representable sequence number.
pub const MAX_SEQUENCE: SequenceNumber = (1 << 56) - 1;

/// Kind of an entry in the LSM structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ValueType {
    /// A deletion tombstone.
    Deletion = 0,
    /// A put of a value.
    Value = 1,
}

impl ValueType {
    /// Decodes from the trailer byte.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tag (corruption should be caught earlier).
    pub fn from_u8(v: u8) -> ValueType {
        match v {
            0 => ValueType::Deletion,
            1 => ValueType::Value,
            _ => panic!("unknown value type tag {v}"),
        }
    }
}

/// Packs `(seq, type)` into the 8-byte internal-key trailer.
pub fn pack_seq_type(seq: SequenceNumber, t: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE);
    (seq << 8) | t as u64
}

/// Builds an internal key from parts.
pub fn make_internal_key(user_key: &[u8], seq: SequenceNumber, t: ValueType) -> Vec<u8> {
    let mut out = Vec::with_capacity(user_key.len() + 8);
    out.extend_from_slice(user_key);
    out.extend_from_slice(&pack_seq_type(seq, t).to_le_bytes());
    out
}

/// Splits an internal key into `(user_key, seq, type)`.
///
/// # Panics
///
/// Panics if `ikey` is shorter than the 8-byte trailer.
pub fn parse_internal_key(ikey: &[u8]) -> (&[u8], SequenceNumber, ValueType) {
    assert!(
        ikey.len() >= 8,
        "internal key too short: {} bytes",
        ikey.len()
    );
    let split = ikey.len() - 8;
    let tag = u64::from_le_bytes(ikey[split..].try_into().unwrap());
    (
        &ikey[..split],
        tag >> 8,
        ValueType::from_u8((tag & 0xff) as u8),
    )
}

/// The user-key prefix of an internal key.
pub fn user_key(ikey: &[u8]) -> &[u8] {
    &ikey[..ikey.len() - 8]
}

/// Total order over internal keys: user key ascending, then sequence
/// descending (so the freshest version of a key sorts first).
pub fn compare_internal(a: &[u8], b: &[u8]) -> Ordering {
    let (ua, sa, ta) = parse_internal_key(a);
    let (ub, sb, tb) = parse_internal_key(b);
    ua.cmp(ub)
        .then(sb.cmp(&sa))
        .then((tb as u8).cmp(&(ta as u8)))
}

/// A lookup key: the internal key that sorts *before* every entry for
/// `user_key` with sequence ≤ `snapshot` would... precisely, seeking to this
/// key in a structure ordered by [`compare_internal`] lands on the newest
/// visible version.
pub fn make_lookup_key(user_key: &[u8], snapshot: SequenceNumber) -> Vec<u8> {
    make_internal_key(user_key, snapshot, ValueType::Value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let ik = make_internal_key(b"apple", 42, ValueType::Value);
        let (uk, seq, t) = parse_internal_key(&ik);
        assert_eq!(uk, b"apple");
        assert_eq!(seq, 42);
        assert_eq!(t, ValueType::Value);
    }

    #[test]
    fn ordering_user_key_dominates() {
        let a = make_internal_key(b"a", 100, ValueType::Value);
        let b = make_internal_key(b"b", 1, ValueType::Value);
        assert_eq!(compare_internal(&a, &b), Ordering::Less);
    }

    #[test]
    fn ordering_newer_seq_first() {
        let new = make_internal_key(b"k", 10, ValueType::Value);
        let old = make_internal_key(b"k", 5, ValueType::Value);
        assert_eq!(compare_internal(&new, &old), Ordering::Less);
    }

    #[test]
    fn lookup_key_sees_visible_versions() {
        // Seeking lookup(k, snapshot=7) must land at seq 7, skipping seq 9.
        let lookup = make_lookup_key(b"k", 7);
        let v9 = make_internal_key(b"k", 9, ValueType::Value);
        let v7 = make_internal_key(b"k", 7, ValueType::Deletion);
        let v3 = make_internal_key(b"k", 3, ValueType::Value);
        assert_eq!(compare_internal(&v9, &lookup), Ordering::Less);
        // lookup(7, Value=1) vs v7(7, Deletion=0): same seq, type desc ⇒
        // Value sorts before Deletion; lookup ≤ both visible entries.
        assert_eq!(compare_internal(&lookup, &v7), Ordering::Less);
        assert_eq!(compare_internal(&lookup, &v3), Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn parse_short_key_panics() {
        parse_internal_key(b"ab");
    }

    #[test]
    fn value_type_tags() {
        assert_eq!(ValueType::from_u8(0), ValueType::Deletion);
        assert_eq!(ValueType::from_u8(1), ValueType::Value);
    }
}
