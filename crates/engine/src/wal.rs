//! Write-ahead log.
//!
//! Record framing: `[masked crc32c u32][len u32][payload]`. Appends are
//! buffered in the filesystem's page cache (the cheap path the paper
//! describes); durability comes from either per-commit `sync` (off by
//! default, as in `db_bench`) or periodic `wal_bytes_per_sync`-style
//! background pushes.

use crate::coding::get_fixed32;
use crate::costs;
use crate::crc32c;
use crate::error::{DbError, DbResult};
use crate::options::WalRecoveryMode;
use std::sync::atomic::{AtomicU64, Ordering};
use xlsm_simfs::{FileHandle, FsError, SimFs};

/// WAL file names: `<db>/<number>.log`.
pub fn wal_file_name(db_path: &str, number: u64) -> String {
    format!("{db_path}/{number:06}.log")
}

/// Appends records to one WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: FileHandle,
    number: u64,
    bytes_since_flush: AtomicU64,
    bytes_per_sync: u64,
    /// Running CRC over every byte appended (headers included) — the
    /// whole-file checksum recorded in the MANIFEST when this log is
    /// rotated out, so recovery can tell a clean closed log from one
    /// damaged at rest.
    file_crc: parking_lot::Mutex<crc32c::Hasher>,
}

impl WalWriter {
    /// Creates a new WAL file in `fs`.
    ///
    /// # Errors
    ///
    /// Filesystem errors (e.g. the file already exists).
    pub fn create(
        fs: &std::sync::Arc<SimFs>,
        db_path: &str,
        number: u64,
        bytes_per_sync: usize,
    ) -> DbResult<WalWriter> {
        let file = fs.create(&wal_file_name(db_path, number))?;
        Ok(WalWriter {
            file,
            number,
            bytes_since_flush: AtomicU64::new(0),
            bytes_per_sync: bytes_per_sync as u64,
            file_crc: parking_lot::Mutex::new(crc32c::Hasher::new()),
        })
    }

    /// This WAL's file number.
    pub fn number(&self) -> u64 {
        self.number
    }

    /// Appends one record (a serialized write batch).
    ///
    /// If `sync` is true the record is forced through to the device
    /// (fsync); otherwise it stays in the page cache, with a background
    /// `sync_file_range`-style push every `bytes_per_sync` bytes.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn append(&self, payload: &[u8], sync: bool) -> DbResult<u64> {
        xlsm_sim::sleep_nanos(costs::wal_encode_ns(payload.len()));
        let crc = crc32c::masked(crc32c::crc32c(payload));
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&crc.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        let written = rec.len() as u64;
        self.file_crc.lock().update(&rec);
        self.file.append(&rec)?;
        if sync {
            self.file.sync()?;
        } else if self.bytes_per_sync > 0 {
            let acc = self.bytes_since_flush.fetch_add(written, Ordering::Relaxed) + written;
            if acc >= self.bytes_per_sync {
                self.bytes_since_flush.store(0, Ordering::Relaxed);
                self.file.flush_data()?;
            }
        }
        Ok(written)
    }

    /// Bytes in the log so far.
    pub fn size(&self) -> u64 {
        self.file.len()
    }

    /// CRC32-C over every byte appended so far. Captured at rotation time
    /// (no appends can race it: the write queue's memtable stage excludes
    /// in-flight groups while the memtable — and its WAL — switch).
    pub fn file_crc(&self) -> u32 {
        self.file_crc.lock().finish()
    }
}

/// Outcome of scanning one WAL (or manifest) file under a
/// [`WalRecoveryMode`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalScan {
    /// Payloads of the records the mode accepted, in file order.
    pub records: Vec<Vec<u8>>,
    /// Bytes from the first unreadable point to end-of-file that the scan
    /// abandoned (torn tail, or unresyncable framing damage).
    pub dropped_tail_bytes: u64,
    /// Interior records skipped over because their checksum failed while
    /// the length framing stayed intact
    /// ([`WalRecoveryMode::SkipAnyCorruptedRecords`] only).
    pub skipped_corrupt_records: u64,
}

impl WalScan {
    /// Whether the scan consumed the file cleanly (no drops, no skips).
    pub fn is_clean(&self) -> bool {
        self.dropped_tail_bytes == 0 && self.skipped_corrupt_records == 0
    }
}

/// Scans the records of one WAL file under `mode`.
///
/// A missing file scans as empty (recovery lists may race deletion). The
/// scan walks `[masked crc32c][len][payload]` frames; what happens at the
/// first damaged frame depends on the mode:
///
/// * [`WalRecoveryMode::AbsoluteConsistency`] — any torn or corrupt record
///   is a [`DbError::Corruption`].
/// * [`WalRecoveryMode::PointInTimeRecovery`] /
///   [`WalRecoveryMode::TolerateCorruptedTailRecords`] — stop, reporting
///   the remainder as [`WalScan::dropped_tail_bytes`] (how the caller
///   treats *later* log files differs between the two; see `Db::open`).
/// * [`WalRecoveryMode::SkipAnyCorruptedRecords`] — a checksum-corrupt
///   record whose length framing still lands on a valid next frame is
///   skipped and counted; framing damage (length running past EOF) cannot
///   be resynced and drops the tail.
///
/// # Errors
///
/// Filesystem errors always propagate; corruption errors only under
/// [`WalRecoveryMode::AbsoluteConsistency`].
pub fn scan_wal(
    fs: &std::sync::Arc<SimFs>,
    path: &str,
    mode: WalRecoveryMode,
) -> DbResult<WalScan> {
    let file = match fs.open(path) {
        Ok(f) => f,
        Err(FsError::NotFound(_)) => return Ok(WalScan::default()),
        Err(e) => return Err(DbError::from(e)),
    };
    let size = file.len();
    let mut scan = WalScan::default();
    let mut off = 0u64;
    while off < size {
        if off + 8 > size {
            // Torn mid-header: nothing left to frame.
            return finish_tail(mode, path, scan, size - off);
        }
        let header = file.read_at(off, 8)?;
        let stored_crc = crc32c::unmask(get_fixed32(&header, 0));
        let len = get_fixed32(&header, 4) as u64;
        if off + 8 + len > size {
            // Torn mid-payload (or garbage length): unresyncable.
            return finish_tail(mode, path, scan, size - off);
        }
        let payload = file.read_at(off + 8, len as usize)?;
        if crc32c::crc32c(&payload) != stored_crc {
            match mode {
                WalRecoveryMode::AbsoluteConsistency => {
                    return Err(DbError::corruption_at(
                        path,
                        off,
                        "record checksum mismatch",
                    ));
                }
                WalRecoveryMode::PointInTimeRecovery
                | WalRecoveryMode::TolerateCorruptedTailRecords => {
                    scan.dropped_tail_bytes = size - off;
                    return Ok(scan);
                }
                WalRecoveryMode::SkipAnyCorruptedRecords => {
                    // The frame is self-consistent (length fits), so the
                    // next frame boundary is trustworthy: skip and resync.
                    scan.skipped_corrupt_records += 1;
                    off += 8 + len;
                    continue;
                }
            }
        }
        scan.records.push(payload);
        off += 8 + len;
    }
    Ok(scan)
}

fn finish_tail(
    mode: WalRecoveryMode,
    path: &str,
    mut scan: WalScan,
    torn_bytes: u64,
) -> DbResult<WalScan> {
    if mode == WalRecoveryMode::AbsoluteConsistency {
        return Err(DbError::corruption_in(
            path,
            format!("torn record at tail ({torn_bytes} trailing bytes)"),
        ));
    }
    scan.dropped_tail_bytes = torn_bytes;
    Ok(scan)
}

/// Replays the records of a WAL file.
///
/// Returns the payloads of all intact records, stopping silently at the
/// first truncated or corrupt record — the tolerant legacy contract, kept
/// for manifest recovery and callers that do their own accounting. New code
/// on the WAL-replay path should prefer [`scan_wal`].
///
/// # Errors
///
/// Only filesystem-level errors; corruption terminates the scan instead.
pub fn read_wal(fs: &std::sync::Arc<SimFs>, path: &str) -> DbResult<Vec<Vec<u8>>> {
    Ok(scan_wal(fs, path, WalRecoveryMode::TolerateCorruptedTailRecords)?.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;
    use xlsm_simfs::FsOptions;

    fn fs() -> Arc<SimFs> {
        SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        )
    }

    #[test]
    fn append_and_replay() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 3, 0).unwrap();
            w.append(b"first", false).unwrap();
            w.append(b"second", false).unwrap();
            w.append(b"third", true).unwrap();
            let recs = read_wal(&fs, &wal_file_name("db", 3)).unwrap();
            assert_eq!(
                recs,
                vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]
            );
        });
    }

    #[test]
    fn missing_wal_is_empty() {
        Runtime::new().run(|| {
            let fs = fs();
            assert!(read_wal(&fs, "db/000001.log").unwrap().is_empty());
        });
    }

    #[test]
    fn truncated_tail_is_dropped() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
            w.append(b"keep-me", false).unwrap();
            // Manually append a half-record.
            let f = fs.open(&wal_file_name("db", 1)).unwrap();
            f.append(&[0x12, 0x34, 0x56, 0x78, 200, 0, 0, 0, b'x'])
                .unwrap();
            let recs = read_wal(&fs, &wal_file_name("db", 1)).unwrap();
            assert_eq!(recs, vec![b"keep-me".to_vec()]);
        });
    }

    #[test]
    fn corrupt_crc_stops_scan() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
            w.append(b"good", false).unwrap();
            // A record with valid length but wrong CRC.
            let f = fs.open(&wal_file_name("db", 1)).unwrap();
            let mut bad = Vec::new();
            bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
            bad.extend_from_slice(&4u32.to_le_bytes());
            bad.extend_from_slice(b"evil");
            f.append(&bad).unwrap();
            let w2 = WalWriter::create(&fs, "db", 2, 0).unwrap();
            let _ = w2;
            let recs = read_wal(&fs, &wal_file_name("db", 1)).unwrap();
            assert_eq!(recs, vec![b"good".to_vec()]);
        });
    }

    /// Writes a WAL with records `good`, then a CRC-corrupt record with
    /// intact framing, then `after`, returning its path.
    fn wal_with_interior_corruption(fs: &Arc<SimFs>) -> String {
        let w = WalWriter::create(fs, "db", 9, 0).unwrap();
        w.append(b"good", false).unwrap();
        let f = fs.open(&wal_file_name("db", 9)).unwrap();
        let mut bad = Vec::new();
        bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bad.extend_from_slice(&4u32.to_le_bytes());
        bad.extend_from_slice(b"evil");
        f.append(&bad).unwrap();
        w.append(b"after", false).unwrap();
        wal_file_name("db", 9)
    }

    #[test]
    fn absolute_consistency_fails_on_torn_tail() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
            w.append(b"whole", false).unwrap();
            let f = fs.open(&wal_file_name("db", 1)).unwrap();
            f.append(&[0xAA, 0xBB, 0xCC]).unwrap();
            let err = scan_wal(
                &fs,
                &wal_file_name("db", 1),
                WalRecoveryMode::AbsoluteConsistency,
            )
            .unwrap_err();
            assert!(matches!(err, DbError::Corruption(_)), "got {err:?}");
            // A clean log passes.
            let w2 = WalWriter::create(&fs, "db", 2, 0).unwrap();
            w2.append(b"fine", false).unwrap();
            let scan = scan_wal(
                &fs,
                &wal_file_name("db", 2),
                WalRecoveryMode::AbsoluteConsistency,
            )
            .unwrap();
            assert_eq!(scan.records, vec![b"fine".to_vec()]);
            assert!(scan.is_clean());
        });
    }

    #[test]
    fn point_in_time_stops_at_interior_corruption() {
        Runtime::new().run(|| {
            let fs = fs();
            let path = wal_with_interior_corruption(&fs);
            let scan = scan_wal(&fs, &path, WalRecoveryMode::PointInTimeRecovery).unwrap();
            assert_eq!(scan.records, vec![b"good".to_vec()]);
            assert_eq!(scan.skipped_corrupt_records, 0);
            // Dropped: the corrupt record and the intact one behind it.
            assert_eq!(scan.dropped_tail_bytes, (8 + 4) + (8 + 5));
        });
    }

    #[test]
    fn skip_any_resyncs_past_interior_corruption() {
        Runtime::new().run(|| {
            let fs = fs();
            let path = wal_with_interior_corruption(&fs);
            let scan = scan_wal(&fs, &path, WalRecoveryMode::SkipAnyCorruptedRecords).unwrap();
            assert_eq!(scan.records, vec![b"good".to_vec(), b"after".to_vec()]);
            assert_eq!(scan.skipped_corrupt_records, 1);
            assert_eq!(scan.dropped_tail_bytes, 0);
        });
    }

    #[test]
    fn skip_any_cannot_resync_framing_damage() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
            w.append(b"keep", false).unwrap();
            // Length field claims more bytes than the file holds: the
            // frame boundary is untrustworthy, so the tail is dropped even
            // under the most tolerant mode.
            let f = fs.open(&wal_file_name("db", 1)).unwrap();
            let mut bad = Vec::new();
            bad.extend_from_slice(&0u32.to_le_bytes());
            bad.extend_from_slice(&10_000u32.to_le_bytes());
            bad.extend_from_slice(b"short");
            f.append(&bad).unwrap();
            let scan = scan_wal(
                &fs,
                &wal_file_name("db", 1),
                WalRecoveryMode::SkipAnyCorruptedRecords,
            )
            .unwrap();
            assert_eq!(scan.records, vec![b"keep".to_vec()]);
            assert_eq!(scan.dropped_tail_bytes, 13);
        });
    }

    #[test]
    fn tolerate_mode_reports_dropped_tail_bytes() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
            w.append(b"keep-me", false).unwrap();
            let f = fs.open(&wal_file_name("db", 1)).unwrap();
            f.append(&[0x12, 0x34, 0x56, 0x78, 200, 0, 0, 0, b'x'])
                .unwrap();
            let scan = scan_wal(
                &fs,
                &wal_file_name("db", 1),
                WalRecoveryMode::TolerateCorruptedTailRecords,
            )
            .unwrap();
            assert_eq!(scan.records, vec![b"keep-me".to_vec()]);
            assert_eq!(scan.dropped_tail_bytes, 9);
        });
    }

    #[test]
    fn writer_file_crc_matches_on_disk_bytes() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 5, 0).unwrap();
            w.append(b"one", false).unwrap();
            w.append(b"two", true).unwrap();
            let f = fs.open(&wal_file_name("db", 5)).unwrap();
            let all = f.read_at(0, f.len() as usize).unwrap();
            assert_eq!(w.file_crc(), crc32c::crc32c(&all));
        });
    }

    #[test]
    fn sync_reaches_device() {
        Runtime::new().run(|| {
            let dev = SimDevice::shared(profiles::intel_530_sata());
            let fs = SimFs::new(Arc::clone(&dev) as _, FsOptions::default());
            let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
            w.append(b"payload", false).unwrap();
            assert_eq!(xlsm_device::Device::stats(&*dev).writes, 0);
            w.append(b"payload", true).unwrap();
            assert!(xlsm_device::Device::stats(&*dev).writes > 0);
        });
    }

    #[test]
    fn torn_tail_midheader_is_dropped() {
        Runtime::new().run(|| {
            let fs = fs();
            let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
            w.append(b"whole", false).unwrap();
            // Truncation inside the next record's header (only 3 bytes).
            let f = fs.open(&wal_file_name("db", 1)).unwrap();
            f.append(&[0xAA, 0xBB, 0xCC]).unwrap();
            let recs = read_wal(&fs, &wal_file_name("db", 1)).unwrap();
            assert_eq!(recs, vec![b"whole".to_vec()]);
        });
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Crash-recovery contract: a WAL truncated at ANY byte offset
        /// replays exactly the records that fit wholly before the cut and
        /// never errors on the torn final record.
        #[test]
        fn torn_tail_recovery_returns_complete_prefix(
            lens in proptest::strategies::collection::vec(0usize..300, 1..10),
            cut_frac in 0u64..10_001u64,
        ) {
            Runtime::new().run(move || {
                let fs = fs();
                let w = WalWriter::create(&fs, "db", 1, 0).unwrap();
                let mut payloads = Vec::new();
                let mut ends = Vec::new(); // record end offsets
                let mut off = 0u64;
                for (i, len) in lens.iter().enumerate() {
                    let payload: Vec<u8> =
                        (0..*len).map(|j| (i * 31 + j) as u8).collect();
                    off += w.append(&payload, false).unwrap();
                    payloads.push(payload);
                    ends.push(off);
                }
                let total = w.size();
                assert_eq!(off, total);
                // Cut at an arbitrary offset (scaled so every boundary and
                // interior byte is reachable), simulating a torn write.
                let cut = total * cut_frac / 10_000;
                let prefix = fs
                    .open(&wal_file_name("db", 1))
                    .unwrap()
                    .read_at(0, cut as usize)
                    .unwrap();
                let torn = fs.create("db2/000001.log").unwrap();
                if !prefix.is_empty() {
                    torn.append(&prefix).unwrap();
                }
                drop(torn);
                let recs = read_wal(&fs, "db2/000001.log")
                    .expect("torn tail must never be an error");
                let intact = ends.iter().filter(|e| **e <= cut).count();
                assert_eq!(
                    recs,
                    payloads[..intact].to_vec(),
                    "cut={cut} of {total} must keep exactly {intact} records"
                );
                fs.delete("db2/000001.log").unwrap();
                fs.delete(&wal_file_name("db", 1)).unwrap();
            });
        }
    }

    #[test]
    fn bytes_per_sync_pushes_periodically() {
        Runtime::new().run(|| {
            let dev = SimDevice::shared(profiles::optane_900p());
            let fs = SimFs::new(Arc::clone(&dev) as _, FsOptions::default());
            let w = WalWriter::create(&fs, "db", 1, 8 << 10).unwrap();
            for _ in 0..20 {
                w.append(&vec![7u8; 1024], false).unwrap();
            }
            let s = xlsm_device::Device::stats(&*dev);
            assert!(
                s.pages_written > 0,
                "bytes_per_sync should have pushed dirty pages"
            );
        });
    }
}
