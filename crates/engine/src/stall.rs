//! Cross-layer write-stall accounting.
//!
//! The paper's analysis (Figs. 6/7, 15/16) attributes write latency to the
//! software mechanisms that generate it: queueing in the batch group, WAL
//! appends, memtable insertion, and the two faces of Algorithm 1 throttling
//! (delay pacing and full stops). This module is the registry those
//! attributions land in:
//!
//! * every committed write records a [`WriteBreakdown`] — one duration per
//!   mechanism — via [`StallAccounting::record_op`], alongside the observed
//!   end-to-end latency, so the totals *self-reconcile*: summed components
//!   must approximately equal total observed write time (asserted in the
//!   engine's tests);
//! * every [`WriteController`](crate::controller::WriteController) level or
//!   rate transition appends a [`StallEvent`] to a bounded ring buffer,
//!   preserving the stall *timeline* the paper plots, drained cheaply via
//!   [`StallAccounting::drain_events`] (exposed through `Db::metrics()`).
//!
//! All durations are passed in by the instrumented call sites; nothing here
//! reads the virtual clock, so the registry works outside a sim runtime.

use crate::controller::StallLevel;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use xlsm_sim::Nanos;

/// Default capacity of the stall-event ring buffer.
pub const EVENT_LOG_CAPACITY: usize = 4096;

/// Why the controller moved to (or stayed at) a stall level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// Unflushed memtable count reached `max_write_buffer_number`.
    MemtableLimit,
    /// L0 file count reached `level0_stop_writes_trigger`.
    L0Stop,
    /// L0 file count reached `level0_slowdown_writes_trigger`.
    L0Slowdown,
    /// Conditions cleared; writes run unthrottled again.
    Cleared,
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StallCause::MemtableLimit => "memtable-limit",
            StallCause::L0Stop => "l0-stop",
            StallCause::L0Slowdown => "l0-slowdown",
            StallCause::Cleared => "cleared",
        })
    }
}

/// One write-controller transition, as logged into the ring buffer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StallEvent {
    /// Virtual time of the transition.
    pub at: Nanos,
    /// Why the controller is (now) at `level`.
    pub cause: StallCause,
    /// The level after the transition.
    pub level: StallLevel,
    /// The level before the transition.
    pub prev_level: StallLevel,
    /// Time spent at `prev_level` before this transition.
    pub duration: Nanos,
    /// L0 file count at the transition.
    pub l0_files: usize,
    /// Memtables counted against the write-buffer budget at the transition.
    pub memtables: usize,
    /// The adaptive delayed-write rate (bytes/s) after the transition.
    pub rate: u64,
}

/// Per-operation attribution of a write's end-to-end latency.
///
/// Each field is the nanoseconds one mechanism contributed to this write.
/// The wait to *enter* the serialized memtable stage (Algorithm 2's
/// pipeline handoff) is reported separately as `pipeline_wait_ns`, so
/// queue pressure is never misattributed to memtable insert cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteBreakdown {
    /// Queued behind other writers before this write's group committed.
    pub queue_wait_ns: u64,
    /// WAL append (group-level; shared by every member of the group).
    pub wal_append_ns: u64,
    /// Waiting to enter the memtable stage behind the previous group
    /// (Algorithm 2's pipeline handoff semaphore).
    pub pipeline_wait_ns: u64,
    /// Memtable insertion proper (the stage itself, pipeline wait excluded).
    pub memtable_insert_ns: u64,
    /// Algorithm 1 delay pacing (`DELAYWRITE` sleeps).
    pub delay_sleep_ns: u64,
    /// Fully stopped, waiting for flush/compaction to clear the condition.
    pub stop_wait_ns: u64,
}

impl WriteBreakdown {
    /// Sum of every attributed component.
    pub fn accounted_ns(&self) -> u64 {
        self.queue_wait_ns
            + self.wal_append_ns
            + self.pipeline_wait_ns
            + self.memtable_insert_ns
            + self.delay_sleep_ns
            + self.stop_wait_ns
    }
}

/// Controller-induced waiting observed during group preprocessing,
/// returned by the write backend so the queue can fold it into each
/// member's [`WriteBreakdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStalls {
    /// Time fully stopped (Algorithm 1 stop conditions).
    pub stop_wait_ns: u64,
    /// Time sleeping in delay pacing (Algorithm 1 `DELAYWRITE`).
    pub delay_sleep_ns: u64,
}

/// Aggregate totals of everything recorded so far (cheap copy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallTotals {
    /// Writes recorded.
    pub ops: u64,
    /// Summed observed end-to-end write latency.
    pub total_write_ns: u64,
    /// Summed queue wait.
    pub queue_wait_ns: u64,
    /// Summed WAL append time.
    pub wal_append_ns: u64,
    /// Summed pipeline-stage (memtable-stage handoff) wait.
    pub pipeline_wait_ns: u64,
    /// Summed memtable insertion (pipeline wait excluded).
    pub memtable_insert_ns: u64,
    /// Summed delay-pacing sleep.
    pub delay_sleep_ns: u64,
    /// Summed stop wait.
    pub stop_wait_ns: u64,
    /// Stall events ever pushed to the ring buffer.
    pub events_pushed: u64,
    /// Stall events evicted because the ring buffer was full.
    pub events_dropped: u64,
}

impl StallTotals {
    /// Sum of all attributed components.
    pub fn accounted_ns(&self) -> u64 {
        self.queue_wait_ns
            + self.wal_append_ns
            + self.pipeline_wait_ns
            + self.memtable_insert_ns
            + self.delay_sleep_ns
            + self.stop_wait_ns
    }

    /// Fraction of observed end-to-end write time the components explain
    /// (1.0 when nothing has been recorded).
    pub fn coverage(&self) -> f64 {
        if self.total_write_ns == 0 {
            1.0
        } else {
            self.accounted_ns() as f64 / self.total_write_ns as f64
        }
    }
}

/// Reconstructs stall-*episode* durations from a drained event log.
///
/// An episode is a maximal contiguous span in which the controller sat at
/// any non-`Clear` level (transitions between `GentleDelay`/`Delay`/`Stop`
/// and rate adaptations do not break it). Events must be in `at` order, as
/// [`StallAccounting::drain_events`] returns them. An episode still open at
/// `window_end` is closed there; an episode already open before the first
/// event is reconstructed from that event's `duration` and clamped to
/// `window_start`. This is the quantity behind the stability bench's
/// stall-episode CDFs: per-*transition* durations understate tails because
/// one long episode can span many transitions.
pub fn episode_durations(
    events: &[StallEvent],
    window_start: Nanos,
    window_end: Nanos,
) -> Vec<Nanos> {
    let mut episodes = Vec::new();
    let mut open: Option<Nanos> = None;
    for ev in events {
        if open.is_none() && ev.prev_level != StallLevel::Clear {
            // Already stalled before this event: recover the episode start
            // from the time spent at prev_level.
            open = Some(ev.at.saturating_sub(ev.duration).max(window_start));
        }
        match (open, ev.level) {
            (Some(start), StallLevel::Clear) => {
                episodes.push(ev.at.saturating_sub(start));
                open = None;
            }
            (None, level) if level != StallLevel::Clear => {
                open = Some(ev.at);
            }
            _ => {}
        }
    }
    if let Some(start) = open {
        episodes.push(window_end.saturating_sub(start));
    }
    episodes
}

/// The registry: per-op component totals plus the stall-event ring buffer.
pub struct StallAccounting {
    ops: AtomicU64,
    total_write_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
    wal_append_ns: AtomicU64,
    pipeline_wait_ns: AtomicU64,
    memtable_insert_ns: AtomicU64,
    delay_sleep_ns: AtomicU64,
    stop_wait_ns: AtomicU64,
    events_pushed: AtomicU64,
    events_dropped: AtomicU64,
    events: parking_lot::Mutex<VecDeque<StallEvent>>,
    capacity: usize,
}

impl fmt::Debug for StallAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.snapshot();
        f.debug_struct("StallAccounting")
            .field("ops", &t.ops)
            .field("coverage", &t.coverage())
            .field("events_pushed", &t.events_pushed)
            .finish_non_exhaustive()
    }
}

impl Default for StallAccounting {
    fn default() -> Self {
        StallAccounting::new(EVENT_LOG_CAPACITY)
    }
}

impl StallAccounting {
    /// Creates a registry whose event log holds at most `capacity` events
    /// (oldest evicted first).
    pub fn new(capacity: usize) -> StallAccounting {
        StallAccounting {
            ops: AtomicU64::new(0),
            total_write_ns: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            wal_append_ns: AtomicU64::new(0),
            pipeline_wait_ns: AtomicU64::new(0),
            memtable_insert_ns: AtomicU64::new(0),
            delay_sleep_ns: AtomicU64::new(0),
            stop_wait_ns: AtomicU64::new(0),
            events_pushed: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            events: parking_lot::Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Records one committed write: its observed end-to-end latency and the
    /// per-mechanism attribution.
    pub fn record_op(&self, end_to_end_ns: u64, bd: &WriteBreakdown) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.total_write_ns
            .fetch_add(end_to_end_ns, Ordering::Relaxed);
        self.queue_wait_ns
            .fetch_add(bd.queue_wait_ns, Ordering::Relaxed);
        self.wal_append_ns
            .fetch_add(bd.wal_append_ns, Ordering::Relaxed);
        self.pipeline_wait_ns
            .fetch_add(bd.pipeline_wait_ns, Ordering::Relaxed);
        self.memtable_insert_ns
            .fetch_add(bd.memtable_insert_ns, Ordering::Relaxed);
        self.delay_sleep_ns
            .fetch_add(bd.delay_sleep_ns, Ordering::Relaxed);
        self.stop_wait_ns
            .fetch_add(bd.stop_wait_ns, Ordering::Relaxed);
    }

    /// Appends a controller transition to the ring buffer, evicting the
    /// oldest event when full.
    pub fn record_event(&self, ev: StallEvent) {
        self.events_pushed.fetch_add(1, Ordering::Relaxed);
        let mut log = self.events.lock();
        if log.len() >= self.capacity {
            log.pop_front();
            self.events_dropped.fetch_add(1, Ordering::Relaxed);
        }
        log.push_back(ev);
    }

    /// Takes every buffered event, oldest first, leaving the log empty.
    pub fn drain_events(&self) -> Vec<StallEvent> {
        self.events.lock().drain(..).collect()
    }

    /// Buffered (undrained) event count.
    pub fn pending_events(&self) -> usize {
        self.events.lock().len()
    }

    /// Cheap copy of the aggregate totals.
    pub fn snapshot(&self) -> StallTotals {
        StallTotals {
            ops: self.ops.load(Ordering::Relaxed),
            total_write_ns: self.total_write_ns.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            wal_append_ns: self.wal_append_ns.load(Ordering::Relaxed),
            pipeline_wait_ns: self.pipeline_wait_ns.load(Ordering::Relaxed),
            memtable_insert_ns: self.memtable_insert_ns.load(Ordering::Relaxed),
            delay_sleep_ns: self.delay_sleep_ns.load(Ordering::Relaxed),
            stop_wait_ns: self.stop_wait_ns.load(Ordering::Relaxed),
            events_pushed: self.events_pushed.load(Ordering::Relaxed),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the per-op totals (the event log and its pushed/dropped
    /// counters are left alone) — used with `DbStats::reset_window` to
    /// discard warm-up effects.
    pub fn reset_window(&self) {
        self.ops.store(0, Ordering::Relaxed);
        self.total_write_ns.store(0, Ordering::Relaxed);
        self.queue_wait_ns.store(0, Ordering::Relaxed);
        self.wal_append_ns.store(0, Ordering::Relaxed);
        self.pipeline_wait_ns.store(0, Ordering::Relaxed);
        self.memtable_insert_ns.store(0, Ordering::Relaxed);
        self.delay_sleep_ns.store(0, Ordering::Relaxed);
        self.stop_wait_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Nanos) -> StallEvent {
        StallEvent {
            at,
            cause: StallCause::L0Slowdown,
            level: StallLevel::Delay,
            prev_level: StallLevel::Clear,
            duration: 10,
            l0_files: 21,
            memtables: 1,
            rate: 1 << 20,
        }
    }

    #[test]
    fn totals_accumulate_and_reconcile() {
        let acc = StallAccounting::default();
        let bd = WriteBreakdown {
            queue_wait_ns: 10,
            wal_append_ns: 20,
            pipeline_wait_ns: 12,
            memtable_insert_ns: 18,
            delay_sleep_ns: 40,
            stop_wait_ns: 0,
        };
        acc.record_op(100, &bd);
        acc.record_op(110, &bd);
        let t = acc.snapshot();
        assert_eq!(t.ops, 2);
        assert_eq!(t.total_write_ns, 210);
        assert_eq!(t.accounted_ns(), 200);
        assert_eq!(bd.accounted_ns(), 100);
        assert!((t.coverage() - 200.0 / 210.0).abs() < 1e-12);
    }

    #[test]
    fn ring_buffer_bounds_and_drains() {
        let acc = StallAccounting::new(3);
        for i in 0..5u64 {
            acc.record_event(ev(i));
        }
        let t = acc.snapshot();
        assert_eq!(t.events_pushed, 5);
        assert_eq!(t.events_dropped, 2);
        let drained = acc.drain_events();
        assert_eq!(
            drained.iter().map(|e| e.at).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest events evicted, order preserved"
        );
        assert_eq!(acc.pending_events(), 0);
        assert!(acc.drain_events().is_empty());
    }

    #[test]
    fn episodes_span_internal_transitions() {
        let mk = |at, prev, level, duration| StallEvent {
            at,
            cause: StallCause::L0Slowdown,
            level,
            prev_level: prev,
            duration,
            l0_files: 21,
            memtables: 1,
            rate: 1 << 20,
        };
        use StallLevel::{Clear, Delay, Stop};
        // Clear→Delay at 100, Delay→Stop at 250, Stop→Clear at 400:
        // one 300 ns episode. Then Clear→Delay at 900, still open at 1000.
        let events = vec![
            mk(100, Clear, Delay, 100),
            mk(250, Delay, Stop, 150),
            mk(400, Stop, Clear, 150),
            mk(900, Clear, Delay, 500),
        ];
        assert_eq!(episode_durations(&events, 0, 1000), vec![300, 100]);
        // A window that opens mid-episode: the first event's duration
        // back-dates the start, clamped to the window.
        let tail = vec![mk(400, Stop, Clear, 150)];
        assert_eq!(episode_durations(&tail, 300, 1000), vec![100]);
        assert_eq!(episode_durations(&[], 0, 1000), Vec::<Nanos>::new());
    }

    #[test]
    fn reset_window_clears_totals_not_events() {
        let acc = StallAccounting::default();
        acc.record_op(50, &WriteBreakdown::default());
        acc.record_event(ev(1));
        acc.reset_window();
        let t = acc.snapshot();
        assert_eq!(t.ops, 0);
        assert_eq!(t.total_write_ns, 0);
        assert_eq!(t.events_pushed, 1);
        assert_eq!(acc.pending_events(), 1);
        assert_eq!(t.coverage(), 1.0, "empty totals count as fully covered");
    }
}
