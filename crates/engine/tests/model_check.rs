//! Model-based testing: the engine against a `BTreeMap` reference model
//! under randomized operation sequences, interleaved with flushes,
//! compaction waits and reopens.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use xlsm_device::{profiles, SimDevice};
use xlsm_engine::{Db, DbOptions};
use xlsm_sim::Runtime;
use xlsm_simfs::{FsOptions, SimFs};

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Flush,
    Scan,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u16..400, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u16..400).prop_map(Op::Delete),
        4 => (0u16..400).prop_map(Op::Get),
        1 => Just(Op::Flush),
        1 => Just(Op::Scan),
        1 => Just(Op::Reopen),
    ]
}

fn key(k: u16) -> Vec<u8> {
    format!("key{k:05}").into_bytes()
}

fn small_opts() -> DbOptions {
    DbOptions {
        write_buffer_size: 64 << 10,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        ..DbOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn engine_matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..250)) {
        Runtime::new().run(move || {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let mut db = Db::open(Arc::clone(&fs), small_opts()).unwrap();
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for op in &ops {
                match op {
                    Op::Put(k, v) => {
                        let value = vec![*v; 64];
                        db.put(&key(*k), &value).unwrap();
                        model.insert(key(*k), value);
                    }
                    Op::Delete(k) => {
                        db.delete(&key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    Op::Get(k) => {
                        let got = db.get(&key(*k)).unwrap();
                        assert_eq!(got, model.get(&key(*k)).cloned(), "get({k}) diverged");
                    }
                    Op::Flush => {
                        db.flush().unwrap();
                    }
                    Op::Scan => {
                        let mut scan = db.scan().unwrap();
                        let mut got = Vec::new();
                        let mut ok = scan.seek_to_first().unwrap();
                        while ok {
                            got.push((scan.key().to_vec(), scan.value().to_vec()));
                            ok = scan.next().unwrap();
                        }
                        let want: Vec<(Vec<u8>, Vec<u8>)> =
                            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                        assert_eq!(got, want, "scan diverged from model");
                    }
                    Op::Reopen => {
                        db.close();
                        db = Db::open(Arc::clone(&fs), small_opts()).unwrap();
                    }
                }
            }
            // Final full verification.
            for (k, v) in &model {
                assert_eq!(db.get(k).unwrap().as_ref(), Some(v), "final check diverged");
            }
            db.wait_for_compactions();
            db.close();
        });
    }
}
