//! Equivalence and atomicity tests for concurrent memtable writes
//! (`allow_concurrent_memtable_write`):
//!
//! * a randomized interleaved multi-writer workload applied with concurrent
//!   memtable writes must leave **byte-identical** state — every internal
//!   `(user_key, sequence, type, value)` entry — to replaying the same
//!   batches through the serial path with the same sequence assignment,
//!   which makes `get(key, s)` identical at *every* snapshot sequence `s`;
//! * the `write_done_count` barrier must prevent a reader from ever
//!   observing a partially-applied write group (all-or-none per batch);
//! * a serial-mode and a concurrent-mode database fed the same per-writer
//!   operation streams over disjoint keyspaces must converge to the same
//!   final visible state;
//! * ≥32 writer threads hammering the concurrent insert path end-to-end
//!   must lose nothing.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xlsm_device::{profiles, SimDevice};
use xlsm_engine::stall::PreprocessStalls;
use xlsm_engine::types::{parse_internal_key, ValueType};
use xlsm_engine::write::{WriteBackend, WriteQueue};
use xlsm_engine::{Db, DbOptions, DbResult, DbStats, MemTable, Ticker, WriteBatch};
use xlsm_sim::Runtime;
use xlsm_simfs::{FsOptions, SimFs};

// ---------------------------------------------------------------------------
// Queue-level equivalence: concurrent apply vs. serial replay
// ---------------------------------------------------------------------------

/// Minimal backend over a bare memtable. WAL latency creates the grouping
/// window; memtable cost scales per entry so the concurrent path genuinely
/// overlaps work (and exercises CAS contention in the skiplist).
struct MemBackend {
    mem: Arc<MemTable>,
    seq: AtomicU64,
    wal_delay_ns: u64,
    per_insert_ns: u64,
}

impl MemBackend {
    fn new(wal_delay_ns: u64, per_insert_ns: u64) -> Arc<MemBackend> {
        Arc::new(MemBackend {
            mem: MemTable::new(0),
            seq: AtomicU64::new(0),
            wal_delay_ns,
            per_insert_ns,
        })
    }
}

impl WriteBackend for MemBackend {
    fn preprocess(&self, _group_bytes: u64) -> DbResult<PreprocessStalls> {
        Ok(PreprocessStalls::default())
    }
    fn allocate_seq(&self, count: u64) -> u64 {
        self.seq.fetch_add(count, Ordering::Relaxed) + 1
    }
    fn write_wal(&self, _group: &WriteBatch) -> DbResult<()> {
        if self.wal_delay_ns > 0 {
            xlsm_sim::sleep_nanos(self.wal_delay_ns);
        }
        Ok(())
    }
    fn write_memtable(&self, group: &WriteBatch) -> DbResult<()> {
        if self.per_insert_ns > 0 {
            xlsm_sim::sleep_nanos(self.per_insert_ns * u64::from(group.count()));
        }
        group.apply_to(&self.mem)
    }
    fn write_memtable_member(&self, batch: &WriteBatch) -> DbResult<()> {
        for (seq, op) in (batch.sequence()..).zip(batch.iter()) {
            let (t, key, value) = op?;
            self.mem
                .add_concurrent(seq, t, key, value, self.per_insert_ns);
        }
        Ok(())
    }
}

/// Every internal entry, in skiplist order: `(internal_key, value)` —
/// internal keys embed `(user_key, sequence, type)`, so equality here is
/// byte-identity of the whole versioned state.
fn dump_entries(mem: &Arc<MemTable>) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut it = mem.iter();
    let mut out = Vec::new();
    let mut ok = it.seek_to_first();
    while ok {
        out.push((it.key(), it.value()));
        ok = it.next();
    }
    out
}

/// One writer's batches. Each batch leads with a marker put whose value
/// uniquely names `(writer, batch)`, so the sequence the concurrent run
/// assigned to that batch can be recovered from the final state.
type WriterBatches = Vec<Vec<(bool, u8)>>; // (is_put, key) per op

fn marker(w: usize, b: usize) -> (Vec<u8>, Vec<u8>) {
    (
        format!("marker-w{w:02}-b{b:02}").into_bytes(),
        format!("seqprobe-w{w:02}-b{b:02}").into_bytes(),
    )
}

fn build_batch(w: usize, b: usize, ops: &[(bool, u8)]) -> WriteBatch {
    let mut batch = WriteBatch::new();
    let (mk, mv) = marker(w, b);
    batch.put(&mk, &mv);
    for (i, (is_put, k)) in ops.iter().enumerate() {
        let key = format!("key{k:03}");
        if *is_put {
            batch.put(key.as_bytes(), format!("val-w{w}-b{b}-o{i}").as_bytes());
        } else {
            batch.delete(key.as_bytes());
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 60,
        ..ProptestConfig::default()
    })]

    /// Concurrent memtable writes must be *observationally identical* to
    /// the serial path: replaying the same batches serially, in the order
    /// of the sequences the concurrent run assigned, yields a memtable
    /// whose full internal entry dump is byte-identical — hence any
    /// `get(key, snapshot)` at any sequence returns the same answer.
    #[test]
    fn concurrent_apply_state_equals_serial_replay(
        writers in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((any::<bool>(), 0u8..40), 0..4),
                1..5,
            ),
            2..6,
        ),
    ) {
        let writers: Vec<WriterBatches> = writers;
        Runtime::new().run(move || {
            // --- Concurrent run: interleaved writers, real grouping. ---
            let q = Arc::new(
                WriteQueue::new(true, 1 << 20).with_concurrent_apply(true, 2),
            );
            let be = MemBackend::new(20_000, 2_000);
            let stats = Arc::new(DbStats::new());
            let mut handles = Vec::new();
            for (w, batches) in writers.iter().cloned().enumerate() {
                let q = Arc::clone(&q);
                let be = Arc::clone(&be);
                let stats = Arc::clone(&stats);
                handles.push(xlsm_sim::spawn(&format!("w{w}"), move || {
                    for (b, ops) in batches.iter().enumerate() {
                        q.submit(build_batch(w, b, ops), be.as_ref(), &stats)
                            .unwrap();
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            let concurrent_dump = dump_entries(&be.mem);

            // --- Recover each batch's assigned first sequence from the
            // marker entries, then replay serially in that order. ---
            let mut order: Vec<(u64, usize, usize)> = Vec::new(); // (first_seq, w, b)
            for (ikey, _v) in &concurrent_dump {
                let (uk, seq, t) = parse_internal_key(ikey);
                if t == ValueType::Value && uk.starts_with(b"marker-w") {
                    let s = String::from_utf8_lossy(uk);
                    let w: usize = s[8..10].parse().unwrap();
                    let b: usize = s[12..14].parse().unwrap();
                    order.push((seq, w, b));
                }
            }
            order.sort_unstable();
            prop_assert_eq!(
                order.len(),
                writers.iter().map(Vec::len).sum::<usize>(),
                "every batch's marker must be present exactly once"
            );
            // Batches must occupy contiguous, non-overlapping sequence
            // ranges (the marker is the first op of its batch).
            let mut next_seq = 1u64;
            for (first, w, b) in &order {
                prop_assert_eq!(
                    *first, next_seq,
                    "batch w{}b{} has a sequence gap/overlap", w, b
                );
                next_seq += 1 + writers[*w][*b].len() as u64;
            }

            let serial_q = WriteQueue::new(false, 1 << 20);
            let serial_be = MemBackend::new(0, 0);
            let serial_stats = DbStats::new();
            for (_seq, w, b) in &order {
                serial_q
                    .submit(
                        build_batch(*w, *b, &writers[*w][*b]),
                        serial_be.as_ref(),
                        &serial_stats,
                    )
                    .unwrap();
            }
            let serial_dump = dump_entries(&serial_be.mem);
            prop_assert_eq!(
                &concurrent_dump, &serial_dump,
                "concurrent apply must be byte-identical to the serial replay"
            );
            // Spot-check reads at every snapshot sequence for a few keys.
            let last = next_seq - 1;
            for k in [0u8, 7, 23, 39] {
                let key = format!("key{k:03}");
                for s in 0..=last {
                    prop_assert_eq!(
                        be.mem.get(key.as_bytes(), s),
                        serial_be.mem.get(key.as_bytes(), s),
                        "get({}, {}) diverged", &key, s
                    );
                }
            }
            // Small inputs may never form a >=2 group; the deterministic
            // tests below assert the concurrent path actually engages.
            Ok(())
        })?;
    }
}

// ---------------------------------------------------------------------------
// Database-level tests
// ---------------------------------------------------------------------------

fn db_opts(concurrent: bool) -> DbOptions {
    DbOptions {
        write_buffer_size: 256 << 10,
        block_cache_capacity: 256 << 10,
        allow_concurrent_memtable_write: concurrent,
        // Force even solo groups through the barrier so publication is
        // all-or-none for every batch (the serial fallback publishes at
        // allocation time).
        concurrent_apply_min_batches: 1,
        ..DbOptions::default()
    }
}

fn open(opts: DbOptions) -> (Arc<Db>, Arc<SimFs>) {
    let fs = SimFs::new(
        SimDevice::shared(profiles::optane_900p()),
        FsOptions::default(),
    );
    let db = Db::open(Arc::clone(&fs), opts).unwrap();
    (Arc::new(db), fs)
}

/// Full visible key/value state via the scan cursor.
fn dump_db(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut scanner = db.scan().unwrap();
    let mut out = Vec::new();
    let mut ok = scanner.seek_to_first().unwrap();
    while ok {
        out.push((scanner.key().to_vec(), scanner.value().to_vec()));
        ok = scanner.next().unwrap();
    }
    out
}

/// The group barrier end-to-end: each writer commits two-key batches; a
/// reader snapshotting at arbitrary points must always see *both* keys of
/// a batch or *neither* — never a half-applied group member.
#[test]
fn reader_never_observes_half_applied_group() {
    Runtime::new().run(|| {
        let (db, _fs) = open(db_opts(true));
        let mut writers = Vec::new();
        for w in 0..8u32 {
            let db = Arc::clone(&db);
            writers.push(xlsm_sim::spawn(&format!("w{w}"), move || {
                for i in 0..20u32 {
                    let mut b = WriteBatch::new();
                    b.put(format!("pair-a-{w:02}-{i:03}").as_bytes(), b"v");
                    b.put(format!("pair-b-{w:02}-{i:03}").as_bytes(), b"v");
                    db.write(b).unwrap();
                }
            }));
        }
        let reader_db = Arc::clone(&db);
        let reader = xlsm_sim::spawn("reader", move || {
            for _ in 0..200 {
                xlsm_sim::sleep_nanos(3_000);
                let snap = reader_db.snapshot();
                let s = snap.sequence();
                for w in 0..8u32 {
                    for i in 0..20u32 {
                        let a = reader_db
                            .get_at(format!("pair-a-{w:02}-{i:03}").as_bytes(), s)
                            .unwrap();
                        let b = reader_db
                            .get_at(format!("pair-b-{w:02}-{i:03}").as_bytes(), s)
                            .unwrap();
                        assert_eq!(
                            a.is_some(),
                            b.is_some(),
                            "snapshot {s} observed a half-applied batch w{w} i{i}"
                        );
                    }
                }
            }
        });
        for h in writers {
            h.join();
        }
        reader.join();
        assert!(db.stats().ticker(Ticker::ConcurrentMemtableApplies) > 0);
        db.close();
    });
}

/// Serial-mode and concurrent-mode databases fed identical per-writer
/// streams over disjoint keyspaces converge to the same final state.
#[test]
fn concurrent_db_final_state_matches_serial() {
    fn run(concurrent: bool) -> Vec<(Vec<u8>, Vec<u8>)> {
        Runtime::new().run(move || {
            let (db, _fs) = open(db_opts(concurrent));
            let mut handles = Vec::new();
            for w in 0..6u32 {
                let db = Arc::clone(&db);
                handles.push(xlsm_sim::spawn(&format!("w{w}"), move || {
                    // Disjoint keyspace per writer; several overwrites and
                    // deletes so ordering within a writer matters.
                    for i in 0..120u32 {
                        let k = format!("w{w:02}-key{:03}", i % 40);
                        if i % 9 == 8 {
                            db.delete(k.as_bytes()).unwrap();
                        } else {
                            db.put(k.as_bytes(), format!("v{i:03}").as_bytes()).unwrap();
                        }
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            let state = dump_db(&db);
            db.close();
            state
        })
    }
    let serial = run(false);
    let concurrent = run(true);
    assert_eq!(
        serial, concurrent,
        "final visible state must not depend on the memtable apply mode"
    );
    assert!(!serial.is_empty());
}

/// ≥32 writer threads through the full engine with concurrent memtable
/// writes: nothing lost, everything readable, and the concurrent path was
/// actually exercised.
#[test]
fn many_writer_stress_on_concurrent_path() {
    Runtime::new().run(|| {
        let (db, _fs) = open(db_opts(true));
        let mut handles = Vec::new();
        for w in 0..36u32 {
            let db = Arc::clone(&db);
            handles.push(xlsm_sim::spawn(&format!("w{w}"), move || {
                for i in 0..40u32 {
                    db.put(
                        format!("stress-{w:02}-{i:03}").as_bytes(),
                        format!("value-{w}-{i}-{}", "x".repeat(32)).as_bytes(),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join();
        }
        for w in 0..36u32 {
            for i in 0..40u32 {
                assert!(
                    db.get(format!("stress-{w:02}-{i:03}").as_bytes())
                        .unwrap()
                        .is_some(),
                    "stress-{w:02}-{i:03} lost"
                );
            }
        }
        let applies = db.stats().ticker(Ticker::ConcurrentMemtableApplies);
        assert!(applies > 0, "concurrent path never taken under 36 writers");
        db.close();
    });
}
