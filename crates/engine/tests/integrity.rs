//! End-to-end data-integrity torture: seeded at-rest bit-flip sweeps over
//! every file kind, transient read-flip injection through the fault layer,
//! and the background scrubber's detect → read-only → resume cycle.
//!
//! The core invariant everywhere: a single flipped byte may cost an error
//! or (for tolerated tail damage) lost tail data, but **never a silently
//! wrong read** — a successful `get` returns the correct value or, where a
//! recovery mode legitimately drops data, `None`; never garbage. And every
//! sweep is byte-identically deterministic per seed.

use std::collections::BTreeMap;
use std::sync::Arc;
use xlsm_device::{profiles, SimDevice};
use xlsm_engine::{Db, DbError, DbOptions, Ticker, WalRecoveryMode};
use xlsm_sim::rng::Xoshiro256;
use xlsm_sim::Runtime;
use xlsm_simfs::{FaultPlan, FsOptions, SimFs};

fn fs() -> Arc<SimFs> {
    SimFs::new(
        SimDevice::shared(profiles::optane_900p()),
        FsOptions::default(),
    )
}

fn protected_opts() -> DbOptions {
    DbOptions {
        write_buffer_size: 64 << 10,
        wal_sync: true,
        protection_bytes_per_key: 8,
        paranoid_file_checks: true,
        wal_recovery_mode: WalRecoveryMode::AbsoluteConsistency,
        ..DbOptions::default()
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key{i:05}").into_bytes()
}

/// Builds a small database with flushed tables *and* a WAL-only tail, then
/// closes it. Returns the expected contents.
fn build_db(fs: &Arc<SimFs>, opts: &DbOptions) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let db = Db::open(Arc::clone(fs), opts.clone()).unwrap();
    let mut model = BTreeMap::new();
    for i in 0..300u32 {
        let value = vec![(i % 251) as u8; 120];
        db.put(&key(i), &value).unwrap();
        model.insert(key(i), value);
    }
    db.flush().unwrap();
    for i in 300..360u32 {
        // WAL-only: no flush before close.
        let value = vec![(i % 251) as u8; 60];
        db.put(&key(i), &value).unwrap();
        model.insert(key(i), value);
    }
    db.close();
    model
}

/// Full snapshot of every file under `db/`, for restore-all between trials
/// (a trial's open may flush, purge WALs, or reap orphans).
fn snapshot_dir(fs: &Arc<SimFs>) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for path in fs.list("db/") {
        let f = fs.open(&path).unwrap();
        let len = f.len() as usize;
        let bytes = if len == 0 {
            Vec::new()
        } else {
            f.read_at(0, len).unwrap()
        };
        out.push((path, bytes));
    }
    out.sort();
    out
}

fn restore_dir(fs: &Arc<SimFs>, snap: &[(String, Vec<u8>)]) {
    for path in fs.list("db/") {
        fs.delete(&path).unwrap();
    }
    for (path, bytes) in snap {
        let f = fs.create(path).unwrap();
        if !bytes.is_empty() {
            f.append(bytes).unwrap();
        }
        f.sync().unwrap();
    }
}

/// Rewrites `path` with one byte XOR-flipped at `off` (SimFs has no
/// write-at-offset, so at-rest damage = whole-file rewrite).
fn flip_byte_at_rest(fs: &Arc<SimFs>, path: &str, off: u64) {
    let f = fs.open(path).unwrap();
    let len = f.len() as usize;
    let mut bytes = f.read_at(0, len).unwrap();
    bytes[off as usize] ^= 0x40;
    fs.delete(path).unwrap();
    let f = fs.create(path).unwrap();
    f.append(&bytes).unwrap();
    f.sync().unwrap();
}

/// One flip trial: damage `path` at `off`, try to open and read everything,
/// and return an outcome string for the determinism log. Panics on any
/// silently wrong read.
fn run_flip_trial(
    fs: &Arc<SimFs>,
    opts: &DbOptions,
    model: &BTreeMap<Vec<u8>, Vec<u8>>,
    path: &str,
    off: u64,
) -> String {
    let is_sst = path.ends_with(".sst");
    flip_byte_at_rest(fs, path, off);
    let outcome = match Db::open(Arc::clone(fs), opts.clone()) {
        Err(e) => {
            assert!(
                matches!(e, DbError::Corruption(_)),
                "{path}@{off}: open failed with non-corruption error: {e}"
            );
            format!("{path}@{off}: open=corruption")
        }
        Ok(db) => {
            let mut correct = 0u32;
            let mut lost = 0u32;
            let mut errors = 0u32;
            for (k, want) in model {
                match db.get(k) {
                    Ok(Some(got)) => {
                        assert_eq!(
                            &got,
                            want,
                            "{path}@{off}: SILENTLY WRONG value for {}",
                            String::from_utf8_lossy(k)
                        );
                        correct += 1;
                    }
                    Ok(None) => {
                        // Legal only where a recovery mode may drop tail
                        // data; an SST flip with an intact manifest must
                        // never lose a key silently.
                        assert!(
                            !is_sst,
                            "{path}@{off}: silent loss of {} from an SST flip",
                            String::from_utf8_lossy(k)
                        );
                        lost += 1;
                    }
                    Err(DbError::Corruption(_)) => errors += 1,
                    Err(e) => panic!("{path}@{off}: unexpected error kind: {e}"),
                }
            }
            db.close();
            format!("{path}@{off}: open=ok correct={correct} lost={lost} detected={errors}")
        }
    };
    outcome
}

/// Runs the full seeded sweep once and returns the outcome log.
fn run_sweep(seed: u64) -> Vec<String> {
    Runtime::new().run(move || {
        let fs = fs();
        let opts = protected_opts();
        let model = build_db(&fs, &opts);
        let baseline = snapshot_dir(&fs);
        let mut rng = Xoshiro256::new(seed);
        let mut log = Vec::new();
        let targets: Vec<String> = baseline
            .iter()
            .map(|(p, _)| p.clone())
            .filter(|p| p.ends_with(".sst") || p.ends_with(".log") || p.ends_with("MANIFEST"))
            .collect();
        assert!(
            targets.iter().any(|p| p.ends_with(".sst"))
                && targets.iter().any(|p| p.ends_with(".log"))
                && targets.iter().any(|p| p.ends_with("MANIFEST")),
            "sweep must cover all three file kinds: {targets:?}"
        );
        for path in &targets {
            let len = baseline
                .iter()
                .find(|(p, _)| p == path)
                .map(|(_, b)| b.len() as u64)
                .unwrap();
            if len == 0 {
                continue;
            }
            for _ in 0..4 {
                let off = rng.next_below(len);
                log.push(run_flip_trial(&fs, &opts, &model, path, off));
                restore_dir(&fs, &baseline);
            }
        }
        // Sanity: pristine state still fully readable after the last restore.
        let db = Db::open(Arc::clone(&fs), opts).unwrap();
        for (k, want) in &model {
            assert_eq!(db.get(k).unwrap().as_ref(), Some(want));
        }
        db.close();
        log
    })
}

#[test]
fn seeded_flip_sweep_never_silently_wrong_and_deterministic() {
    let a = run_sweep(0xfeed_beef);
    let b = run_sweep(0xfeed_beef);
    assert_eq!(a, b, "same seed must produce a byte-identical outcome log");
    assert!(
        a.iter()
            .any(|l| l.contains("open=corruption") || l.contains("detected=")),
        "the sweep should detect at least some flips: {a:?}"
    );
}

#[test]
fn transient_read_flips_detected_never_wrong() {
    // Transient (bus/DRAM-style) bit flips injected by the fault layer on
    // SST reads: every get is correct or a detected corruption, and the
    // injected fault stream is deterministic per seed.
    let run = |seed: u64| {
        Runtime::new().run(move || {
            let fs = fs();
            let opts = protected_opts();
            let db = Db::open(Arc::clone(&fs), opts).unwrap();
            let mut model = BTreeMap::new();
            for i in 0..400u32 {
                let value = vec![(i % 249) as u8; 100];
                db.put(&key(i), &value).unwrap();
                model.insert(key(i), value);
            }
            db.flush().unwrap();
            fs.set_fault_plan(FaultPlan {
                seed,
                path_filter: Some(".sst".into()),
                // High rate on purpose: after the first pass the block
                // cache absorbs most reads, so only a few dozen disk reads
                // are exposed to the injector.
                bit_flip_read_prob: 0.3,
                ..FaultPlan::default()
            });
            let mut outcomes = Vec::new();
            for (k, want) in &model {
                match db.get(k) {
                    Ok(Some(got)) => {
                        assert_eq!(&got, want, "silently wrong value under read flips");
                        outcomes.push(b'c');
                    }
                    Ok(None) => panic!("silent miss under read flips"),
                    Err(DbError::Corruption(_)) => outcomes.push(b'x'),
                    Err(e) => panic!("unexpected error kind: {e}"),
                }
            }
            fs.clear_fault_plan();
            db.close();
            outcomes
        })
    };
    for seed in [1u64, 7, 42] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "fault stream must be deterministic for seed {seed}");
        assert!(
            a.contains(&b'x'),
            "at p=0.3 some disk reads should hit an injected flip"
        );
    }
}

#[test]
fn scrubber_finds_cold_sst_flip_within_one_pass_and_resumes() {
    Runtime::new().run(|| {
        let fs = fs();
        let mut opts = protected_opts();
        opts.scrub_rate_bytes_per_sec = 8 << 20;
        let model = build_db(&fs, &opts);

        // Plant a flip in the middle of a cold table. Nothing will read it
        // in the foreground — only the scrubber touches it.
        let victim = fs
            .list("db/")
            .into_iter()
            .find(|p| p.ends_with(".sst"))
            .expect("build_db flushed at least one table");
        let orig = {
            let f = fs.open(&victim).unwrap();
            f.read_at(0, f.len() as usize).unwrap()
        };
        flip_byte_at_rest(&fs, &victim, orig.len() as u64 / 2);

        let db = Db::open(Arc::clone(&fs), opts).unwrap();
        // One pass over every live table at 8 MiB/s is well under this
        // budget of virtual time.
        let mut waited = 0u64;
        while db.stats().ticker(Ticker::ScrubCorruptionsFound) == 0 && waited < 60 {
            xlsm_sim::sleep_nanos(1_000_000_000);
            waited += 1;
        }
        assert!(
            db.stats().ticker(Ticker::ScrubCorruptionsFound) >= 1,
            "scrubber never found the planted flip"
        );
        assert!(db.metrics().read_only, "corruption must flip to read-only");
        assert!(matches!(db.put(b"k", b"v"), Err(DbError::ReadOnly(_))));

        // Heal the file at rest, resume, and verify the database serves
        // reads and writes again.
        fs.delete(&victim).unwrap();
        let f = fs.create(&victim).unwrap();
        f.append(&orig).unwrap();
        f.sync().unwrap();
        db.resume().unwrap();
        assert!(!db.metrics().read_only);
        db.put(b"after-resume", b"ok").unwrap();
        assert_eq!(db.get(b"after-resume").unwrap(), Some(b"ok".to_vec()));
        for (k, want) in &model {
            assert_eq!(db.get(k).unwrap().as_ref(), Some(want));
        }
        db.close();
    });
}

#[test]
fn scrubber_verifies_clean_db_and_records_pass_while_writes_proceed() {
    Runtime::new().run(|| {
        let fs = fs();
        let mut opts = protected_opts();
        opts.scrub_rate_bytes_per_sec = 4 << 20;
        let db = Db::open(Arc::clone(&fs), opts).unwrap();
        for i in 0..300u32 {
            db.put(&key(i), &[b'v'; 120]).unwrap();
        }
        db.flush().unwrap();
        // Writes keep landing while the scrubber churns in the background.
        let mut passes = 0u64;
        let mut waited = 0u64;
        while passes < 2 && waited < 120 {
            for i in 0..20u32 {
                db.put(&key(10_000 + i), &[b'w'; 64]).unwrap();
            }
            xlsm_sim::sleep_nanos(1_000_000_000);
            waited += 1;
            passes = db.metrics().scrub_pass.count;
        }
        assert!(passes >= 2, "scrubber should complete repeated passes");
        assert!(db.stats().ticker(Ticker::ScrubBytesVerified) > 0);
        assert_eq!(db.stats().ticker(Ticker::ScrubCorruptionsFound), 0);
        assert!(!db.metrics().read_only);
        db.close();
    });
}

#[test]
fn verify_checksums_walks_everything_and_pins_planted_flip() {
    Runtime::new().run(|| {
        let fs = fs();
        let opts = protected_opts();
        let db = Db::open(Arc::clone(&fs), opts.clone()).unwrap();
        for i in 0..300u32 {
            db.put(&key(i), &[b'v'; 120]).unwrap();
        }
        db.flush().unwrap();
        for i in 300..320u32 {
            db.put(&key(i), &[b'w'; 40]).unwrap();
        }
        let report = db.verify_checksums().unwrap();
        assert!(report.sst_files >= 1);
        assert!(report.sst_bytes > 0);
        assert!(report.manifest_records >= 1);
        db.close();

        // Damage one table at rest; the foreground verifier must name the
        // file and must NOT flip the database read-only.
        let victim = fs
            .list("db/")
            .into_iter()
            .find(|p| p.ends_with(".sst"))
            .unwrap();
        let len = fs.open(&victim).unwrap().len();
        flip_byte_at_rest(&fs, &victim, len / 3);
        let db = Db::open(Arc::clone(&fs), opts).unwrap();
        match db.verify_checksums() {
            Err(DbError::Corruption(detail)) => {
                let name = victim.rsplit('/').next().unwrap();
                assert_eq!(
                    detail.file.as_deref(),
                    Some(name),
                    "error must name the file"
                );
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        assert!(
            !db.metrics().read_only,
            "foreground verify must not escalate"
        );
        db.close();
    });
}
