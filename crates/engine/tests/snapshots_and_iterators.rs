//! Snapshot/compaction interaction and iterator behaviors that need a full
//! database to exercise.

use std::sync::Arc;
use xlsm_device::{profiles, SimDevice};
use xlsm_engine::controller::NoThrottlePolicy;
use xlsm_engine::{Db, DbOptions, Ticker};
use xlsm_sim::Runtime;
use xlsm_simfs::{FsOptions, SimFs};

fn small_opts() -> DbOptions {
    DbOptions {
        write_buffer_size: 64 << 10,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        level0_file_num_compaction_trigger: 2,
        ..DbOptions::default()
    }
}

fn open_db() -> (Db, Arc<SimFs>) {
    let fs = SimFs::new(
        SimDevice::shared(profiles::optane_900p()),
        FsOptions::default(),
    );
    let db = Db::open(Arc::clone(&fs), small_opts()).unwrap();
    (db, fs)
}

#[test]
fn snapshot_survives_flush_and_compaction() {
    Runtime::new().run(|| {
        let (db, _fs) = open_db();
        db.put(b"pinned", b"v1").unwrap();
        let snap = db.snapshot();
        // Overwrite and churn enough to force flushes and compactions.
        for round in 0..4u32 {
            db.put(b"pinned", format!("v{}", round + 2).as_bytes())
                .unwrap();
            for i in 0..400u32 {
                db.put(format!("fill{round}-{i:04}").as_bytes(), &[b'x'; 200])
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.wait_for_compactions();
        assert!(db.stats().ticker(Ticker::CompactionCount) > 0);
        // The snapshot still sees the original version...
        assert_eq!(
            db.get_at(b"pinned", snap.sequence()).unwrap(),
            Some(b"v1".to_vec()),
            "compaction must not drop versions visible to a live snapshot"
        );
        // ...and the head sees the newest.
        assert_eq!(db.get(b"pinned").unwrap(), Some(b"v5".to_vec()));
        drop(snap);
        db.close();
    });
}

#[test]
fn snapshot_shields_from_deletion() {
    Runtime::new().run(|| {
        let (db, _fs) = open_db();
        db.put(b"ghost", b"alive").unwrap();
        let snap = db.snapshot();
        db.delete(b"ghost").unwrap();
        db.flush().unwrap();
        db.wait_for_compactions();
        assert_eq!(db.get(b"ghost").unwrap(), None);
        assert_eq!(
            db.get_at(b"ghost", snap.sequence()).unwrap(),
            Some(b"alive".to_vec())
        );
        drop(snap);
        db.close();
    });
}

#[test]
fn scanner_pins_files_against_compaction_deletes() {
    Runtime::new().run(|| {
        let (db, _fs) = open_db();
        for i in 0..800u32 {
            db.put(format!("k{i:05}").as_bytes(), &[b'a'; 128]).unwrap();
        }
        db.flush().unwrap();
        // Open a scanner positioned mid-way, then force compactions that
        // delete the underlying files.
        let mut scan = db.scan().unwrap();
        assert!(scan.seek(b"k00400").unwrap());
        for i in 0..800u32 {
            db.put(format!("k{i:05}").as_bytes(), &[b'b'; 128]).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions();
        // The scanner still walks its pinned version without errors.
        let mut n = 0;
        while scan.valid() {
            n += 1;
            scan.next().unwrap();
        }
        assert_eq!(n, 400, "scanner should see keys k00400..k00799");
        drop(scan);
        db.close();
    });
}

#[test]
fn no_throttle_policy_never_delays() {
    Runtime::new().run(|| {
        let fs = SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        );
        let opts = DbOptions {
            throttle_policy: Arc::new(NoThrottlePolicy),
            level0_slowdown_writes_trigger: 2, // would throttle almost instantly
            level0_stop_writes_trigger: 1000,
            ..small_opts()
        };
        let db = Db::open(fs, opts).unwrap();
        for i in 0..2000u32 {
            db.put(format!("k{i:05}").as_bytes(), &vec![b'x'; 256])
                .unwrap();
        }
        assert_eq!(
            db.stats().ticker(Ticker::StallDelayedWrites),
            0,
            "the no-throttle ablation must never delay"
        );
        db.flush().unwrap();
        db.wait_for_compactions();
        db.close();
    });
}

#[test]
fn bloom_filters_cut_l0_block_reads() {
    // Same workload with and without blooms: the bloom run must burn far
    // fewer block-cache misses on absent keys.
    fn misses(bloom_bits: usize) -> (u64, u64) {
        Runtime::new().run(move || {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let db = Db::open(
                fs,
                DbOptions {
                    bloom_bits_per_key: bloom_bits,
                    // Keep several L0 files alive so absent-key probes cost.
                    level0_file_num_compaction_trigger: 64,
                    level0_slowdown_writes_trigger: 128,
                    level0_stop_writes_trigger: 256,
                    ..small_opts()
                },
            )
            .unwrap();
            for i in 0..600u32 {
                db.put(format!("present{i:05}").as_bytes(), &[b'v'; 128])
                    .unwrap();
            }
            db.flush().unwrap();
            for i in 0..600u32 {
                // Absent keys *inside* the present key range, so L0 files
                // cover them and only a bloom can skip the probe.
                assert_eq!(db.get(format!("present{i:05}x").as_bytes()).unwrap(), None);
            }
            let useful = db.stats().ticker(Ticker::BloomUseful);
            let (_, cache_misses) = db.block_cache_counters();
            db.close();
            (useful, cache_misses)
        })
    }
    let (useful_off, misses_off) = misses(0);
    let (useful_on, misses_on) = misses(10);
    assert_eq!(useful_off, 0);
    assert!(useful_on > 400, "blooms should reject most absent probes");
    assert!(
        misses_on < misses_off / 2,
        "blooms should cut block reads: {misses_on} vs {misses_off}"
    );
}

#[test]
fn pipelined_and_plain_write_paths_agree_on_content() {
    fn checksum(pipelined: bool) -> u64 {
        Runtime::new().run(move || {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let db = Arc::new(
                Db::open(
                    fs,
                    DbOptions {
                        pipelined_write: pipelined,
                        ..small_opts()
                    },
                )
                .unwrap(),
            );
            let mut handles = Vec::new();
            for t in 0..6u64 {
                let db = Arc::clone(&db);
                handles.push(xlsm_sim::spawn(&format!("w{t}"), move || {
                    for i in 0..300u64 {
                        let k = format!("t{t}k{i:04}");
                        db.put(k.as_bytes(), k.as_bytes()).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            db.flush().unwrap();
            // Fold the full scan into a checksum.
            let mut scan = db.scan().unwrap();
            let mut sum = 0u64;
            let mut ok = scan.seek_to_first().unwrap();
            while ok {
                for &b in scan.key() {
                    sum = sum.wrapping_mul(31).wrapping_add(b as u64);
                }
                ok = scan.next().unwrap();
            }
            db.close();
            sum
        })
    }
    assert_eq!(
        checksum(true),
        checksum(false),
        "both write paths must produce identical database contents"
    );
}
