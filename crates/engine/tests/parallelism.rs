//! Equivalence and speedup tests for the parallelism layer:
//! range-partitioned subcompactions and batched MultiGet.
//!
//! * `multi_get` must return exactly what per-key `get` returns at the same
//!   snapshot, including while a concurrent writer mutates the database;
//! * a database compacted with `max_subcompactions = 4` must hold exactly
//!   the same key/value state as one compacted serially from the same
//!   operation sequence;
//! * a batched MultiGet must not be slower (in virtual time) than issuing
//!   the same keys as sequential gets once data sits in SSTs.

use proptest::prelude::*;
use std::sync::Arc;
use xlsm_device::{profiles, SimDevice};
use xlsm_engine::{Db, DbOptions, Ticker};
use xlsm_sim::Runtime;
use xlsm_simfs::{FsOptions, SimFs};

fn key(k: u16) -> Vec<u8> {
    format!("key{k:05}").into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    format!("val{k:05}-{v:03}-{}", "x".repeat(64)).into_bytes()
}

fn opts(max_subcompactions: usize) -> DbOptions {
    DbOptions {
        write_buffer_size: 64 << 10,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        block_cache_capacity: 256 << 10,
        max_subcompactions,
        multi_get_parallelism: 4,
        ..DbOptions::default()
    }
}

fn open(opts: DbOptions) -> (Arc<Db>, Arc<SimFs>) {
    let fs = SimFs::new(
        SimDevice::shared(profiles::optane_900p()),
        FsOptions::default(),
    );
    let db = Db::open(Arc::clone(&fs), opts).unwrap();
    (Arc::new(db), fs)
}

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u16..600, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u16..600).prop_map(Op::Delete),
        1 => Just(Op::Flush),
    ]
}

fn apply_ops(db: &Db, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => db.put(&key(*k), &value(*k, *v)).unwrap(),
            Op::Delete(k) => db.delete(&key(*k)).unwrap(),
            Op::Flush => db.flush().unwrap(),
        }
    }
}

/// Full visible key/value state via the scan cursor.
fn dump(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut scanner = db.scan().unwrap();
    let mut out = Vec::new();
    let mut ok = scanner.seek_to_first().unwrap();
    while ok {
        out.push((scanner.key().to_vec(), scanner.value().to_vec()));
        ok = scanner.next().unwrap();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 100,
        ..ProptestConfig::default()
    })]

    #[test]
    fn multi_get_matches_per_key_get_under_concurrent_writes(
        ops in prop::collection::vec(op_strategy(), 1..200),
        batch in prop::collection::vec(0u16..600, 1..24),
    ) {
        Runtime::new().run(move || {
            let (db, _fs) = open(opts(1));
            apply_ops(&db, &ops);

            // Concurrent writer: keeps mutating while the batch reads run,
            // interleaving at every simulated sleep.
            let writer_db = Arc::clone(&db);
            let writer = xlsm_sim::spawn("writer", move || {
                for i in 0..300u16 {
                    writer_db.put(&key(i % 600), &value(i % 600, 255)).unwrap();
                }
            });

            let snap = db.snapshot();
            let keys: Vec<Vec<u8>> = batch.iter().map(|k| key(*k)).collect();
            let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            let batched = db.multi_get_at(&refs, snap.sequence()).unwrap();
            for (i, k) in refs.iter().enumerate() {
                let single = db.get_at(k, snap.sequence()).unwrap();
                prop_assert_eq!(
                    &batched[i], &single,
                    "key {:?} diverged at snapshot {}", String::from_utf8_lossy(k), snap.sequence()
                );
            }
            // The unpinned entry point stays well-formed under concurrency.
            let live = db.multi_get(&refs).unwrap();
            prop_assert_eq!(live.len(), refs.len());

            writer.join();
            drop(snap);
            db.close();
            Ok(())
        })?;
    }

    #[test]
    fn subcompacted_state_equals_serial_state(
        ops in prop::collection::vec(op_strategy(), 50..250),
    ) {
        Runtime::new().run(move || {
            let (serial, _fs1) = open(opts(1));
            let (parallel, _fs2) = open(opts(4));
            for db in [&serial, &parallel] {
                apply_ops(db, &ops);
                db.flush().unwrap();
                db.wait_for_compactions();
            }
            prop_assert_eq!(dump(&serial), dump(&parallel));
            serial.close();
            parallel.close();
            Ok(())
        })?;
    }
}

/// Deterministic heavy-write run that must actually fan out: with four
/// subcompactions configured and several megabytes of overlapping updates,
/// at least one compaction gets range-partitioned, and every key stays
/// readable afterwards.
#[test]
fn subcompactions_launch_and_preserve_data() {
    Runtime::new().run(|| {
        let (db, _fs) = open(opts(4));
        let value = vec![b'x'; 512];
        for i in 0..8000u32 {
            db.put(format!("key{:06}", i % 2000).as_bytes(), &value)
                .unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions();
        assert!(
            db.stats().ticker(Ticker::SubcompactionsLaunched) > 0,
            "no compaction fanned out despite max_subcompactions=4"
        );
        for i in 0..2000u32 {
            assert_eq!(
                db.get(format!("key{i:06}").as_bytes()).unwrap(),
                Some(value.clone()),
                "key{i:06} lost after subcompacted compaction"
            );
        }
        db.close();
    });
}

/// Batched MultiGet of N keys must not take longer (virtual time) than the
/// same N keys issued as sequential gets once the data lives in SSTs.
#[test]
fn multi_get_batch_beats_sequential_gets() {
    Runtime::new().run(|| {
        let (db, _fs) = open(opts(1));
        for i in 0..2000u16 {
            db.put(&key(i), &value(i, 1)).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions();

        let keys: Vec<Vec<u8>> = (0..16u16).map(|i| key(i * 113)).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();

        let t0 = xlsm_sim::now_nanos();
        for k in &refs {
            db.get(k).unwrap();
        }
        let sequential_ns = xlsm_sim::now_nanos() - t0;

        let t1 = xlsm_sim::now_nanos();
        let batched = db.multi_get(&refs).unwrap();
        let batched_ns = xlsm_sim::now_nanos() - t1;

        assert_eq!(batched.len(), refs.len());
        assert!(batched.iter().all(Option::is_some));
        assert!(
            batched_ns <= sequential_ns,
            "multi_get ({batched_ns} ns) slower than {} sequential gets ({sequential_ns} ns)",
            refs.len()
        );
        assert!(db.stats().ticker(Ticker::MultiGetBatches) > 0);
        db.close();
    });
}
