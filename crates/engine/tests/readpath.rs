//! Read-path equivalence: every read-path acceleration knob — block
//! compression, whole-key + prefix bloom filters, the memtable bloom, and
//! table-cache sharding — must be invisible to results. A database opened
//! with all of them on must answer every `get`, `multi_get`, full scan,
//! and prefix scan byte-identically to a plain database fed the same
//! operations. A separate test drives the memtable bloom from many
//! concurrent writers and checks it never yields a false negative.

use proptest::prelude::*;
use std::sync::Arc;
use xlsm_device::{profiles, SimDevice};
use xlsm_engine::{CompressionType, Db, DbOptions, MemTable};
use xlsm_sim::Runtime;
use xlsm_simfs::{FsOptions, SimFs};

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u8),
    Delete(u16),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0u16..400, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (0u16..400).prop_map(Op::Delete),
        1 => Just(Op::Flush),
    ]
}

/// Keys share 2-byte prefixes (`p0`..`p9`) so prefix blooms and prefix
/// scans both have something to chew on.
fn key(k: u16) -> Vec<u8> {
    format!("p{}{:05}", k % 10, k).into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    // Run-structured so RLE actually compresses some blocks.
    let mut out = vec![b'a' + (v % 23); 40 + (k as usize % 60)];
    out.extend_from_slice(format!("{k}:{v}").as_bytes());
    out
}

fn plain_opts() -> DbOptions {
    DbOptions {
        write_buffer_size: 64 << 10,
        block_size: 1024,
        target_file_size_base: 64 << 10,
        max_bytes_for_level_base: 256 << 10,
        table_cache_shards: 1,
        ..DbOptions::default()
    }
}

fn fancy_opts() -> DbOptions {
    DbOptions {
        compression: CompressionType::Rle,
        bloom_bits_per_key: 10,
        prefix_extractor: Some(2),
        memtable_bloom_bits: 10,
        table_cache_shards: 8,
        multi_get_parallelism: 4,
        ..plain_opts()
    }
}

fn run_workload(opts: DbOptions, ops: &[Op]) -> WorkloadResult {
    let mut out = WorkloadResult::default();
    Runtime::new().run(|| {
        let fs = SimFs::new(
            SimDevice::shared(profiles::optane_900p()),
            FsOptions::default(),
        );
        let db = Db::open(Arc::clone(&fs), opts).unwrap();
        for op in ops {
            match op {
                Op::Put(k, v) => db.put(&key(*k), &value(*k, *v)).unwrap(),
                Op::Delete(k) => db.delete(&key(*k)).unwrap(),
                Op::Flush => db.flush().unwrap(),
            }
        }
        // Point reads: every possible key plus guaranteed misses.
        for k in 0..400u16 {
            out.gets.push(db.get(&key(k)).unwrap());
        }
        for k in 0..50u16 {
            out.gets
                .push(db.get(format!("zz{k:05}").as_bytes()).unwrap());
        }
        // Batched reads, mixing hits and misses.
        let keys: Vec<Vec<u8>> = (0..400u16)
            .step_by(3)
            .map(key)
            .chain((0..20u16).map(|k| format!("zz{k:05}").into_bytes()))
            .collect();
        for chunk in keys.chunks(32) {
            let refs: Vec<&[u8]> = chunk.iter().map(|k| k.as_slice()).collect();
            out.multi_gets.extend(db.multi_get(&refs).unwrap());
        }
        // Full scan.
        let mut scan = db.scan().unwrap();
        let mut ok = scan.seek_to_first().unwrap();
        while ok {
            out.scan.push((scan.key().to_vec(), scan.value().to_vec()));
            ok = scan.next().unwrap();
        }
        // Prefix scans: every family, one of them at the configured
        // extractor length (2), plus longer and absent prefixes.
        for p in ["p0", "p3", "p9", "p400", "qq"] {
            let mut scan = db.scan_prefix(p.as_bytes()).unwrap();
            let mut ok = scan.valid();
            while ok {
                out.prefix
                    .push((scan.key().to_vec(), scan.value().to_vec()));
                ok = scan.next().unwrap();
            }
        }
        db.close();
    });
    out
}

#[derive(Clone, Debug, Default, PartialEq)]
struct WorkloadResult {
    gets: Vec<Option<Vec<u8>>>,
    multi_gets: Vec<Option<Vec<u8>>>,
    scan: Vec<(Vec<u8>, Vec<u8>)>,
    prefix: Vec<(Vec<u8>, Vec<u8>)>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Compression + blooms + sharding change costs, never answers.
    #[test]
    fn accelerated_reads_equal_plain_reads(
        ops in prop::collection::vec(op_strategy(), 1..220),
    ) {
        let plain = run_workload(plain_opts(), &ops);
        let fancy = run_workload(fancy_opts(), &ops);
        prop_assert_eq!(plain, fancy);
    }
}

/// The scan results themselves must agree with a model: prefix scan ==
/// full scan filtered by starts_with.
#[test]
fn prefix_scan_equals_filtered_full_scan() {
    let ops: Vec<Op> = (0..300u16)
        .map(|k| Op::Put(k, (k % 251) as u8))
        .chain([Op::Flush])
        .chain((0..300u16).step_by(5).map(Op::Delete))
        .collect();
    let got = run_workload(fancy_opts(), &ops);
    for p in ["p0", "p3", "p9"] {
        let expect: Vec<_> = got
            .scan
            .iter()
            .filter(|(k, _)| k.starts_with(p.as_bytes()))
            .cloned()
            .collect();
        let actual: Vec<_> = got
            .prefix
            .iter()
            .filter(|(k, _)| k.starts_with(p.as_bytes()))
            .cloned()
            .collect();
        assert_eq!(actual, expect, "prefix {p} diverged");
    }
}

/// Memtable bloom under the concurrent-insert path: keys inserted from
/// many threads are all visible through `may_contain` the instant their
/// insert returns — bits are published before the skiplist node links in.
#[test]
fn concurrent_memtable_bloom_has_no_false_negatives() {
    use xlsm_engine::types::ValueType;
    Runtime::new().run(|| {
        let mem = MemTable::with_bloom(1, 10, 4096);
        let mut handles = Vec::new();
        for t in 0..12u64 {
            let m = Arc::clone(&mem);
            handles.push(xlsm_sim::spawn("bloom-writer", move || {
                for i in 0..96u64 {
                    let k = format!("w{t:02}k{i:04}");
                    m.add_concurrent(t * 96 + i + 1, ValueType::Value, k.as_bytes(), b"v", 500);
                    assert!(
                        m.may_contain(k.as_bytes()),
                        "bloom lost {k} right after its own insert"
                    );
                    xlsm_sim::sleep_nanos(250);
                }
            }));
        }
        for h in handles {
            h.join();
        }
        for t in 0..12u64 {
            for i in 0..96u64 {
                let k = format!("w{t:02}k{i:04}");
                assert!(mem.may_contain(k.as_bytes()), "bloom false negative on {k}");
            }
        }
    });
}
