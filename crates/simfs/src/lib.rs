//! # xlsm-simfs — an in-memory filesystem over simulated devices
//!
//! The engine's file I/O path (WAL appends, SST builds, manifest updates,
//! compaction reads) runs against this layer. Payload bytes live in host
//! memory; *timing* comes from the [`xlsm_device`] device underneath plus an
//! OS page-cache model:
//!
//! * **Appends** are buffered: they memcpy into the file and mark pages dirty
//!   in the page cache — the cheap path the paper describes for WAL updates
//!   ("first written to the write buffer … flushed to disk asynchronously").
//!   When the global dirty-page count exceeds the configured ratio, the
//!   appender synchronously writes back the oldest dirty pages (Linux
//!   dirty-throttling behavior).
//! * **Reads** check the page cache; misses coalesce into ranged device
//!   reads, and inserted pages may evict older ones (clock/second-chance).
//! * **`sync`** writes back a file's dirty pages and issues a device barrier,
//!   which on flash waits for the write-buffer drain.
//!
//! The cache capacity is how experiments reproduce the paper's 8 GB RAM /
//! 100 GB dataset ratio at scale.
//!
//! The layer also hosts deterministic **fault injection** ([`FaultPlan`]):
//! scripted or probabilistic I/O errors, torn writes, read bit-flips, and
//! [`SimFs::power_cut`], which discards everything not durably synced past
//! the device barrier — the substrate for the crash-consistency harness.
//!
//! ```
//! use xlsm_device::{profiles, SimDevice};
//! use xlsm_simfs::{FsOptions, SimFs};
//!
//! xlsm_sim::Runtime::new().run(|| {
//!     let dev = SimDevice::shared(profiles::optane_900p());
//!     let fs = SimFs::new(dev, FsOptions::default());
//!     let f = fs.create("db/000001.log").unwrap();
//!     f.append(b"hello world").unwrap();
//!     f.sync().unwrap();
//!     assert_eq!(&f.read_at(0, 5).unwrap()[..], b"hello");
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod error;
mod fault;
mod fs;
mod pagecache;

pub use error::{FsError, FsResult};
pub use fault::{FaultOp, FaultPlan};
pub use fs::{FileHandle, FsOptions, FsStats, SimFs};
