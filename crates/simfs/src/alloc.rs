//! First-fit extent allocator for device pages.

/// Allocates contiguous page ranges from the device's logical address space,
/// merging freed neighbors so long-running compaction churn does not
/// fragment the space unboundedly.
#[derive(Debug)]
pub(crate) struct ExtentAllocator {
    /// Sorted, non-adjacent free ranges `(start, len)`.
    free: Vec<(u64, u64)>,
    capacity: u64,
}

impl ExtentAllocator {
    pub fn new(capacity_pages: u64) -> ExtentAllocator {
        ExtentAllocator {
            free: vec![(0, capacity_pages)],
            capacity: capacity_pages,
        }
    }

    /// First-fit allocation of exactly `pages` contiguous pages.
    pub fn allocate(&mut self, pages: u64) -> Option<u64> {
        debug_assert!(pages > 0);
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            if len >= pages {
                if len == pages {
                    self.free.remove(i);
                } else {
                    self.free[i] = (start + pages, len - pages);
                }
                return Some(start);
            }
        }
        None
    }

    /// Returns a range to the pool, merging with adjacent free ranges.
    pub fn free(&mut self, start: u64, pages: u64) {
        debug_assert!(pages > 0);
        debug_assert!(start + pages <= self.capacity);
        let idx = self.free.partition_point(|&(s, _)| s < start);
        // Check overlap with neighbors in debug builds.
        if idx > 0 {
            let (ps, pl) = self.free[idx - 1];
            debug_assert!(ps + pl <= start, "double free (prev overlap)");
        }
        if idx < self.free.len() {
            debug_assert!(
                start + pages <= self.free[idx].0,
                "double free (next overlap)"
            );
        }
        let merges_prev = idx > 0 && {
            let (ps, pl) = self.free[idx - 1];
            ps + pl == start
        };
        let merges_next = idx < self.free.len() && start + pages == self.free[idx].0;
        match (merges_prev, merges_next) {
            (true, true) => {
                let next_len = self.free[idx].1;
                self.free[idx - 1].1 += pages + next_len;
                self.free.remove(idx);
            }
            (true, false) => self.free[idx - 1].1 += pages,
            (false, true) => {
                self.free[idx].0 = start;
                self.free[idx].1 += pages;
            }
            (false, false) => self.free.insert(idx, (start, pages)),
        }
    }

    /// Total free pages remaining.
    pub fn free_pages(&self) -> u64 {
        self.free.iter().map(|&(_, l)| l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_and_exhaust() {
        let mut a = ExtentAllocator::new(10);
        assert_eq!(a.allocate(4), Some(0));
        assert_eq!(a.allocate(4), Some(4));
        assert_eq!(a.allocate(4), None);
        assert_eq!(a.allocate(2), Some(8));
        assert_eq!(a.free_pages(), 0);
    }

    #[test]
    fn free_merges_neighbors() {
        let mut a = ExtentAllocator::new(12);
        let x = a.allocate(4).unwrap();
        let y = a.allocate(4).unwrap();
        let z = a.allocate(4).unwrap();
        a.free(x, 4);
        a.free(z, 4);
        a.free(y, 4);
        assert_eq!(a.free_pages(), 12);
        // Fully merged back into a single extent.
        assert_eq!(a.allocate(12), Some(0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Random alloc/free interleavings conserve pages and never hand out
        /// overlapping ranges.
        #[test]
        fn conservation(ops in prop::collection::vec(1u64..16, 1..200)) {
            let cap = 256u64;
            let mut a = ExtentAllocator::new(cap);
            let mut held: Vec<(u64, u64)> = Vec::new();
            for (i, n) in ops.into_iter().enumerate() {
                if i % 3 == 2 && !held.is_empty() {
                    let (s, l) = held.swap_remove(i % held.len());
                    a.free(s, l);
                } else if let Some(s) = a.allocate(n) {
                    // No overlap with anything currently held.
                    for &(hs, hl) in &held {
                        prop_assert!(s + n <= hs || hs + hl <= s, "overlap");
                    }
                    held.push((s, n));
                }
                let held_total: u64 = held.iter().map(|&(_, l)| l).sum();
                prop_assert_eq!(a.free_pages() + held_total, cap);
            }
        }
    }
}
