//! Deterministic fault injection for the simulated filesystem.
//!
//! A [`FaultPlan`] describes *what* should go wrong — probabilistic I/O
//! errors keyed on the sim RNG, scripted triggers on the Nth read/write/
//! sync, torn-write truncation on append, bit-flip corruption on read, and
//! a scripted power cut — and the filesystem consults it at the top of
//! every [`crate::FileHandle`] operation. Because the plan is driven by a
//! seeded [`Xoshiro256`] stream and per-operation counters, a given
//! `(plan, workload)` pair always injects the exact same faults at the
//! exact same points: failures found by the crash harness replay
//! deterministically.

use xlsm_sim::rng::Xoshiro256;

/// The class of filesystem operation a fault decision applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// [`crate::FileHandle::read_at`].
    Read,
    /// [`crate::FileHandle::append`].
    Append,
    /// [`crate::FileHandle::sync`] and [`crate::FileHandle::flush_data`].
    Sync,
}

impl FaultOp {
    /// Short name used in [`crate::FsError::Io::op`].
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Append => "append",
            FaultOp::Sync => "sync",
        }
    }
}

/// A deterministic description of the faults to inject.
///
/// Scripted `*_nth_*` triggers are 1-based and fire exactly once; the
/// probabilistic knobs draw from the plan's seeded RNG on every matching
/// operation. When [`FaultPlan::path_filter`] is set, error/torn/bit-flip
/// triggers (and their per-class counters) only consider files whose path
/// contains the filter substring; the global operation counter that drives
/// [`FaultPlan::power_cut_at_op`] counts *every* operation regardless,
/// since power loss is not file-scoped.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's private RNG stream.
    pub seed: u64,
    /// Only operations on paths containing this substring are candidates
    /// for error/torn/bit-flip injection (`None` = all files).
    pub path_filter: Option<String>,
    /// Probability that a matching read fails with an I/O error.
    pub read_error_prob: f64,
    /// Probability that a matching append fails with an I/O error.
    pub write_error_prob: f64,
    /// Probability that a matching sync/flush fails with an I/O error.
    pub sync_error_prob: f64,
    /// Fail the Nth matching read (1-based).
    pub fail_nth_read: Option<u64>,
    /// Fail the Nth matching append (1-based).
    pub fail_nth_write: Option<u64>,
    /// Fail the Nth matching sync/flush (1-based).
    pub fail_nth_sync: Option<u64>,
    /// Tear the Nth matching append (1-based): a random strict prefix of
    /// the payload is applied before the error is returned, modelling a
    /// torn write.
    pub torn_write_nth: Option<u64>,
    /// Flip one random bit in the payload returned by the Nth matching
    /// read (1-based). The stored bytes are untouched — the corruption is
    /// transient, as with a bus/DRAM flip.
    pub bit_flip_nth_read: Option<u64>,
    /// Probability that a matching read's payload gets one bit flipped.
    pub bit_flip_read_prob: f64,
    /// Simulate a power cut when the global operation counter (reads +
    /// appends + syncs, all files) reaches this value (1-based).
    pub power_cut_at_op: Option<u64>,
    /// Whether injected errors are reported as retryable (transient) or
    /// hard. Power-cut failures are always hard.
    pub retryable: bool,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            path_filter: None,
            read_error_prob: 0.0,
            write_error_prob: 0.0,
            sync_error_prob: 0.0,
            fail_nth_read: None,
            fail_nth_write: None,
            fail_nth_sync: None,
            torn_write_nth: None,
            bit_flip_nth_read: None,
            bit_flip_read_prob: 0.0,
            power_cut_at_op: None,
            retryable: true,
        }
    }
}

/// What the injector decided for one operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum FaultOutcome {
    /// Proceed normally.
    None,
    /// Fail the operation with an I/O error.
    Error {
        /// Whether the error should be reported as retryable.
        retryable: bool,
    },
    /// Apply only the first `keep` payload bytes, then fail (append only).
    Torn {
        /// Bytes of the payload to apply before failing (`keep < len`).
        keep: usize,
        /// Whether the error should be reported as retryable.
        retryable: bool,
    },
    /// Flip `bit` of `byte` in the returned payload (read only).
    BitFlip {
        /// Byte index within the returned payload.
        byte: usize,
        /// Bit index within that byte (0..8).
        bit: u32,
    },
    /// Cut power to the filesystem and fail the operation.
    PowerCut,
}

/// Live injector state: the plan plus its RNG stream and counters.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: Xoshiro256,
    ops: u64,
    reads: u64,
    writes: u64,
    syncs: u64,
}

impl FaultState {
    /// Total operations observed (the counter [`FaultPlan::power_cut_at_op`]
    /// triggers against) — lets a harness run a workload clean under an
    /// empty plan, read the op count, and then enumerate cut points.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    pub fn new(plan: FaultPlan) -> FaultState {
        let rng = Xoshiro256::new(plan.seed);
        FaultState {
            plan,
            rng,
            ops: 0,
            reads: 0,
            writes: 0,
            syncs: 0,
        }
    }

    fn matches(&self, path: &str) -> bool {
        match &self.plan.path_filter {
            Some(needle) => path.contains(needle.as_str()),
            None => true,
        }
    }

    fn chance(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.next_f64() < prob
    }

    /// Decides the fate of one operation on `path` moving `len` payload
    /// bytes.
    pub fn decide(&mut self, op: FaultOp, path: &str, len: usize) -> FaultOutcome {
        self.ops += 1;
        if self.plan.power_cut_at_op == Some(self.ops) {
            return FaultOutcome::PowerCut;
        }
        if !self.matches(path) {
            return FaultOutcome::None;
        }
        let retryable = self.plan.retryable;
        match op {
            FaultOp::Read => {
                self.reads += 1;
                if self.plan.fail_nth_read == Some(self.reads)
                    || self.chance(self.plan.read_error_prob)
                {
                    return FaultOutcome::Error { retryable };
                }
                if len > 0
                    && (self.plan.bit_flip_nth_read == Some(self.reads)
                        || self.chance(self.plan.bit_flip_read_prob))
                {
                    return FaultOutcome::BitFlip {
                        byte: self.rng.next_below(len as u64) as usize,
                        bit: self.rng.next_below(8) as u32,
                    };
                }
            }
            FaultOp::Append => {
                self.writes += 1;
                if self.plan.torn_write_nth == Some(self.writes) {
                    let keep = if len > 0 {
                        self.rng.next_below(len as u64) as usize
                    } else {
                        0
                    };
                    return FaultOutcome::Torn { keep, retryable };
                }
                if self.plan.fail_nth_write == Some(self.writes)
                    || self.chance(self.plan.write_error_prob)
                {
                    return FaultOutcome::Error { retryable };
                }
            }
            FaultOp::Sync => {
                self.syncs += 1;
                if self.plan.fail_nth_sync == Some(self.syncs)
                    || self.chance(self.plan.sync_error_prob)
                {
                    return FaultOutcome::Error { retryable };
                }
            }
        }
        FaultOutcome::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_nth_write_fires_once() {
        let mut s = FaultState::new(FaultPlan {
            fail_nth_write: Some(2),
            ..FaultPlan::default()
        });
        assert_eq!(s.decide(FaultOp::Append, "a", 10), FaultOutcome::None);
        assert_eq!(
            s.decide(FaultOp::Append, "a", 10),
            FaultOutcome::Error { retryable: true }
        );
        assert_eq!(s.decide(FaultOp::Append, "a", 10), FaultOutcome::None);
    }

    #[test]
    fn path_filter_scopes_counters() {
        let mut s = FaultState::new(FaultPlan {
            fail_nth_write: Some(1),
            path_filter: Some(".sst".into()),
            ..FaultPlan::default()
        });
        // Non-matching appends neither fail nor advance the write counter.
        assert_eq!(
            s.decide(FaultOp::Append, "db/000001.log", 8),
            FaultOutcome::None
        );
        assert_eq!(
            s.decide(FaultOp::Append, "db/000001.log", 8),
            FaultOutcome::None
        );
        assert_eq!(
            s.decide(FaultOp::Append, "db/000002.sst", 8),
            FaultOutcome::Error { retryable: true }
        );
    }

    #[test]
    fn torn_write_keeps_strict_prefix() {
        let mut s = FaultState::new(FaultPlan {
            torn_write_nth: Some(1),
            retryable: false,
            ..FaultPlan::default()
        });
        match s.decide(FaultOp::Append, "f", 100) {
            FaultOutcome::Torn { keep, retryable } => {
                assert!(keep < 100);
                assert!(!retryable);
            }
            other => panic!("expected torn outcome, got {other:?}"),
        }
    }

    #[test]
    fn power_cut_counts_all_ops() {
        let mut s = FaultState::new(FaultPlan {
            power_cut_at_op: Some(3),
            path_filter: Some("never-matches".into()),
            ..FaultPlan::default()
        });
        assert_eq!(s.decide(FaultOp::Read, "a", 1), FaultOutcome::None);
        assert_eq!(s.decide(FaultOp::Sync, "b", 0), FaultOutcome::None);
        assert_eq!(s.decide(FaultOp::Append, "c", 1), FaultOutcome::PowerCut);
    }

    #[test]
    fn probabilistic_stream_is_deterministic() {
        let plan = FaultPlan {
            read_error_prob: 0.3,
            seed: 42,
            ..FaultPlan::default()
        };
        let run = |plan: FaultPlan| {
            let mut s = FaultState::new(plan);
            (0..64)
                .map(|_| s.decide(FaultOp::Read, "x", 16) != FaultOutcome::None)
                .collect::<Vec<bool>>()
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f), "some reads should fail at p=0.3");
        assert!(!a.iter().all(|&f| f), "not all reads should fail at p=0.3");
    }

    #[test]
    fn bit_flip_targets_payload_range() {
        let mut s = FaultState::new(FaultPlan {
            bit_flip_nth_read: Some(1),
            ..FaultPlan::default()
        });
        match s.decide(FaultOp::Read, "f", 17) {
            FaultOutcome::BitFlip { byte, bit } => {
                assert!(byte < 17);
                assert!(bit < 8);
            }
            other => panic!("expected bit flip, got {other:?}"),
        }
    }
}
