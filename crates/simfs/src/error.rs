//! Filesystem error type.

use std::error::Error;
use std::fmt;

/// Result alias for filesystem operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors returned by [`crate::SimFs`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// The named file does not exist.
    NotFound(String),
    /// A file with that name already exists.
    AlreadyExists(String),
    /// Read past the end of a file.
    OutOfRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Actual file size.
        size: u64,
    },
    /// The underlying device has no free pages left.
    DeviceFull,
    /// The handle refers to a file that was deleted.
    Stale(String),
    /// An I/O failure, either injected by the fault layer
    /// ([`crate::FaultPlan`]) or caused by a simulated power cut.
    Io {
        /// The operation that failed (`"read"`, `"append"`, `"sync"`, ...).
        op: &'static str,
        /// Path of the file the operation targeted.
        path: String,
        /// Whether a retry may succeed (transient fault) or the failure is
        /// permanent for this incarnation of the filesystem (e.g. power
        /// loss).
        retryable: bool,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "file not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            FsError::OutOfRange { offset, len, size } => write!(
                f,
                "read of {len} bytes at offset {offset} past end of {size}-byte file"
            ),
            FsError::DeviceFull => write!(f, "simulated device is full"),
            FsError::Stale(p) => write!(f, "handle refers to deleted file: {p}"),
            FsError::Io {
                op,
                path,
                retryable,
            } => {
                let kind = if *retryable { "transient" } else { "hard" };
                write!(f, "{kind} i/o error during {op} of {path}")
            }
        }
    }
}

impl Error for FsError {}
