//! Clock (second-chance) page cache model.
//!
//! The cache tracks *which* 4-KiB pages are resident and dirty — payloads
//! live in the files themselves — so it is purely a timing/accounting
//! structure. Eviction prefers clean pages; when pressure forces a dirty
//! eviction the caller receives the victims and must charge device writes
//! for them (the "kswapd runs in your context" simplification).

use std::collections::HashMap;

/// Identifies one cached page: `(file id, page index within file)`.
pub(crate) type PageKey = (u64, u64);

#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    key: PageKey,
    occupied: bool,
    referenced: bool,
    dirty: bool,
}

#[derive(Debug)]
pub(crate) struct PageCache {
    capacity: usize,
    map: HashMap<PageKey, usize>,
    slots: Vec<Slot>,
    hand: usize,
    dirty: usize,
    pub hits: u64,
    pub misses: u64,
    pub dirty_evictions: u64,
}

impl PageCache {
    pub fn new(capacity: usize) -> PageCache {
        assert!(capacity > 0, "page cache needs at least one page");
        PageCache {
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            slots: vec![Slot::default(); capacity],
            hand: 0,
            dirty: 0,
            hits: 0,
            misses: 0,
            dirty_evictions: 0,
        }
    }

    pub fn dirty_count(&self) -> usize {
        self.dirty
    }

    pub fn resident_count(&self) -> usize {
        self.map.len()
    }

    /// Lookup for a read; marks the page referenced on hit.
    pub fn touch(&mut self, key: PageKey) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].referenced = true;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Clock sweep: find a victim slot, preferring clean unreferenced pages.
    /// Returns `(slot index, evicted dirty key if any)`.
    fn evict_one(&mut self) -> (usize, Option<PageKey>) {
        // Pass 1..=3: clear reference bits, skip dirty; final pass accepts dirty.
        for pass in 0..4 {
            let allow_dirty = pass == 3;
            for _ in 0..self.capacity {
                let i = self.hand;
                self.hand = (self.hand + 1) % self.capacity;
                let s = &mut self.slots[i];
                if !s.occupied {
                    return (i, None);
                }
                if s.referenced {
                    s.referenced = false;
                    continue;
                }
                if s.dirty && !allow_dirty {
                    continue;
                }
                let key = s.key;
                let was_dirty = s.dirty;
                if was_dirty {
                    self.dirty -= 1;
                    self.dirty_evictions += 1;
                }
                s.occupied = false;
                self.map.remove(&key);
                return (i, if was_dirty { Some(key) } else { None });
            }
        }
        unreachable!("clock sweep must find a victim within four passes");
    }

    /// Inserts a page (no-op if already resident; `dirty` is OR-ed in).
    /// Returns the key of a dirty page that had to be evicted, if any.
    pub fn insert(&mut self, key: PageKey, dirty: bool) -> Option<PageKey> {
        if let Some(&slot) = self.map.get(&key) {
            let s = &mut self.slots[slot];
            s.referenced = true;
            if dirty && !s.dirty {
                s.dirty = true;
                self.dirty += 1;
            }
            return None;
        }
        let (slot, victim) = self.evict_one();
        self.slots[slot] = Slot {
            key,
            occupied: true,
            referenced: true,
            dirty,
        };
        if dirty {
            self.dirty += 1;
        }
        self.map.insert(key, slot);
        victim
    }

    /// Clears the dirty bit of every resident page of `file`, returning the
    /// page indices that were dirty (in ascending order, for coalescing).
    pub fn clean_file(&mut self, file: u64) -> Vec<u64> {
        let mut pages = Vec::new();
        for s in &mut self.slots {
            if s.occupied && s.dirty && s.key.0 == file {
                s.dirty = false;
                self.dirty -= 1;
                pages.push(s.key.1);
            }
        }
        pages.sort_unstable();
        pages
    }

    /// Drops every page of `file` (delete); dirty pages of a deleted file
    /// need no writeback. Returns how many pages were resident.
    pub fn remove_file(&mut self, file: u64) -> usize {
        let mut removed = 0;
        for s in &mut self.slots {
            if s.occupied && s.key.0 == file {
                if s.dirty {
                    self.dirty -= 1;
                }
                s.occupied = false;
                self.map.remove(&s.key);
                removed += 1;
            }
        }
        removed
    }

    /// Drops every resident page (power cut: RAM contents vanish) while
    /// keeping the hit/miss/eviction counters intact.
    pub fn drop_all(&mut self) {
        for s in &mut self.slots {
            *s = Slot::default();
        }
        self.map.clear();
        self.dirty = 0;
        self.hand = 0;
    }

    /// Takes up to `n` dirty pages in clock order (oldest-ish first) for
    /// dirty-ratio writeback, marking them clean. Returns `(file, page)`
    /// pairs.
    pub fn take_dirty_batch(&mut self, n: usize) -> Vec<PageKey> {
        let mut out = Vec::with_capacity(n);
        if self.dirty == 0 {
            return out;
        }
        let start = self.hand;
        for off in 0..self.capacity {
            if out.len() >= n || self.dirty == 0 {
                break;
            }
            let i = (start + off) % self.capacity;
            let s = &mut self.slots[i];
            if s.occupied && s.dirty {
                s.dirty = false;
                self.dirty -= 1;
                out.push(s.key);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = PageCache::new(4);
        assert!(!c.touch((1, 0)));
        c.insert((1, 0), false);
        assert!(c.touch((1, 0)));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn eviction_prefers_clean() {
        let mut c = PageCache::new(2);
        c.insert((1, 0), true); // dirty
        c.insert((1, 1), false); // clean
                                 // Next insert must evict the clean page, keeping the dirty one.
        let victim = c.insert((1, 2), false);
        assert_eq!(victim, None);
        assert!(c.touch((1, 0)), "dirty page should survive");
        assert!(!c.touch((1, 1)), "clean page should be evicted");
    }

    #[test]
    fn dirty_eviction_reported_when_unavoidable() {
        let mut c = PageCache::new(2);
        c.insert((1, 0), true);
        c.insert((1, 1), true);
        let victim = c.insert((1, 2), false);
        assert!(victim.is_some(), "all-dirty cache must report a writeback");
        assert_eq!(c.dirty_evictions, 1);
    }

    #[test]
    fn clean_file_returns_sorted_pages() {
        let mut c = PageCache::new(8);
        c.insert((3, 5), true);
        c.insert((3, 1), true);
        c.insert((4, 2), true);
        c.insert((3, 3), false);
        assert_eq!(c.clean_file(3), vec![1, 5]);
        assert_eq!(c.dirty_count(), 1); // file 4's page remains dirty
        assert_eq!(c.clean_file(3), Vec::<u64>::new());
    }

    #[test]
    fn remove_file_drops_everything() {
        let mut c = PageCache::new(8);
        c.insert((7, 0), true);
        c.insert((7, 1), false);
        c.insert((8, 0), false);
        assert_eq!(c.remove_file(7), 2);
        assert_eq!(c.dirty_count(), 0);
        assert!(!c.touch((7, 0)));
        assert!(c.touch((8, 0)));
    }

    #[test]
    fn take_dirty_batch_drains() {
        let mut c = PageCache::new(8);
        for i in 0..6 {
            c.insert((1, i), true);
        }
        let batch = c.take_dirty_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(c.dirty_count(), 2);
        let batch2 = c.take_dirty_batch(10);
        assert_eq!(batch2.len(), 2);
        assert_eq!(c.dirty_count(), 0);
        assert!(c.take_dirty_batch(1).is_empty());
    }

    #[test]
    fn reinsert_dirty_upgrades() {
        let mut c = PageCache::new(4);
        c.insert((1, 0), false);
        assert_eq!(c.dirty_count(), 0);
        c.insert((1, 0), true);
        assert_eq!(c.dirty_count(), 1);
        // Idempotent.
        c.insert((1, 0), true);
        assert_eq!(c.dirty_count(), 1);
    }
}
