//! The filesystem proper: namespace, file handles, page-cache integration.

use crate::alloc::ExtentAllocator;
use crate::error::{FsError, FsResult};
use crate::fault::{FaultOp, FaultOutcome, FaultPlan, FaultState};
use crate::pagecache::{PageCache, PageKey};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use xlsm_device::{Device, PAGE_SIZE};

/// Tunables for the filesystem and its OS page-cache model.
#[derive(Clone, Debug, PartialEq)]
pub struct FsOptions {
    /// Page-cache capacity in 4-KiB pages. This is the knob that reproduces
    /// the paper's 8 GB RAM vs. 100 GB dataset ratio at scale.
    pub page_cache_pages: usize,
    /// Fraction of the cache that may be dirty before the *background
    /// writeback daemon* starts draining (Linux `dirty_background_ratio`
    /// analogue). Appenders are only stalled synchronously at twice this
    /// fraction (`dirty_ratio` analogue).
    pub dirty_limit_fraction: f64,
    /// Host-side fixed cost per read call (syscall + VFS), nanoseconds.
    pub host_read_ns: u64,
    /// Host-side fixed cost per append call, nanoseconds.
    pub host_write_ns: u64,
    /// Memcpy cost per KiB moved between user and page cache, nanoseconds.
    pub memcpy_ns_per_kib: u64,
    /// Device pages allocated per extent-growth step.
    pub alloc_chunk_pages: u64,
}

impl Default for FsOptions {
    fn default() -> FsOptions {
        FsOptions {
            page_cache_pages: 16_384, // 64 MiB
            dirty_limit_fraction: 0.25,
            host_read_ns: 1_800,
            host_write_ns: 1_200,
            memcpy_ns_per_kib: 30, // ≈ 33 GB/s
            alloc_chunk_pages: 256,
        }
    }
}

/// Point-in-time filesystem counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Page-cache hits.
    pub cache_hits: u64,
    /// Page-cache misses (device reads incurred).
    pub cache_misses: u64,
    /// Dirty pages written back because of eviction pressure.
    pub dirty_evictions: u64,
    /// Dirty pages written back by the dirty-ratio throttle (appender
    /// stalled at the hard limit).
    pub throttle_writebacks: u64,
    /// Dirty pages written back asynchronously by the writeback daemon.
    pub background_writebacks: u64,
    /// Pages written back by explicit `sync` calls.
    pub sync_writebacks: u64,
    /// Currently resident pages.
    pub resident_pages: u64,
    /// Currently dirty pages.
    pub dirty_pages: u64,
    /// Live files.
    pub files: u64,
    /// I/O errors injected by the fault layer (including torn writes).
    pub injected_errors: u64,
    /// Torn (partially applied) appends injected.
    pub torn_writes: u64,
    /// Bit flips injected into read payloads.
    pub bit_flips: u64,
    /// Power cuts simulated.
    pub power_cuts: u64,
}

/// Per-file crash-durability bookkeeping. Files are append-only, so a
/// page's "valid bytes" count only ever grows; tracking byte counts per
/// page (rather than whole pages) lets a power cut keep a partially
/// written final page exactly as far as it was persisted.
#[derive(Debug, Default)]
struct Durability {
    /// page index -> bytes of that page pushed to the device (possibly
    /// still in its volatile write buffer, awaiting a barrier).
    device: HashMap<u64, u32>,
    /// page index -> bytes of that page made durable by a device barrier
    /// (or by write-through on devices without a write buffer).
    durable: HashMap<u64, u32>,
}

impl Durability {
    /// Records that `bytes` of `page` reached the device; `write_through`
    /// devices (no volatile buffer) persist immediately.
    fn record_device_write(&mut self, page: u64, bytes: u32, write_through: bool) {
        let e = self.device.entry(page).or_insert(0);
        *e = (*e).max(bytes);
        if write_through {
            let d = self.durable.entry(page).or_insert(0);
            *d = (*d).max(bytes);
        }
    }

    /// A device barrier completed: everything previously pushed to the
    /// device is now durable.
    fn promote(&mut self) {
        for (&page, &bytes) in &self.device {
            let d = self.durable.entry(page).or_insert(0);
            *d = (*d).max(bytes);
        }
    }

    /// Length of the longest durable prefix of the file: full pages until
    /// the first page that is missing or partially durable.
    fn durable_prefix_bytes(&self) -> u64 {
        let mut len = 0u64;
        let mut page = 0u64;
        loop {
            match self.durable.get(&page) {
                Some(&bytes) => {
                    len += bytes as u64;
                    if (bytes as usize) < xlsm_device::PAGE_SIZE {
                        return len;
                    }
                    page += 1;
                }
                None => return len,
            }
        }
    }
}

struct FileData {
    id: u64,
    name: parking_lot::Mutex<String>,
    content: parking_lot::RwLock<Vec<u8>>,
    /// Allocated device extents `(start_lpn, pages)` covering the file.
    extents: parking_lot::Mutex<Vec<(u64, u64)>>,
    deleted: AtomicBool,
    durability: parking_lot::Mutex<Durability>,
}

impl FileData {
    /// Device LPN of the file's `page`-th page, if allocated.
    fn lpn_of(&self, page: u64) -> Option<u64> {
        let extents = self.extents.lock();
        let mut base = 0u64;
        for &(start, len) in extents.iter() {
            if page < base + len {
                return Some(start + (page - base));
            }
            base += len;
        }
        None
    }

    fn allocated_pages(&self) -> u64 {
        self.extents.lock().iter().map(|&(_, l)| l).sum()
    }
}

/// A simulated filesystem bound to one device.
pub struct SimFs {
    device: Arc<dyn Device>,
    opts: FsOptions,
    files: parking_lot::Mutex<BTreeMap<String, Arc<FileData>>>,
    by_id: parking_lot::Mutex<HashMap<u64, Arc<FileData>>>,
    cache: parking_lot::Mutex<PageCache>,
    alloc: parking_lot::Mutex<ExtentAllocator>,
    next_id: AtomicU64,
    throttle_writebacks: AtomicU64,
    sync_writebacks: AtomicU64,
    bg_writebacks: AtomicU64,
    wb_wake: xlsm_sim::sync::WaitSet,
    fault: parking_lot::Mutex<Option<FaultState>>,
    /// Set by [`SimFs::power_cut`]; every operation fails until
    /// [`SimFs::power_restore`].
    dead: AtomicBool,
    /// Devices without a volatile write buffer (e.g. 3D XPoint) persist
    /// writes as they land; buffered devices need a barrier.
    write_through: bool,
    injected_errors: AtomicU64,
    torn_writes: AtomicU64,
    bit_flips: AtomicU64,
    power_cuts: AtomicU64,
}

impl fmt::Debug for SimFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimFs")
            .field("device", &self.device.profile().name)
            .field("files", &self.files.lock().len())
            .finish_non_exhaustive()
    }
}

impl SimFs {
    /// Creates a filesystem over `device` and starts its background
    /// writeback daemon (must be called inside a sim runtime).
    pub fn new(device: Arc<dyn Device>, opts: FsOptions) -> Arc<SimFs> {
        let capacity = device.profile().capacity_pages;
        let write_through = device.profile().write_buffer_pages == 0;
        let fs = Arc::new(SimFs {
            device,
            cache: parking_lot::Mutex::new(PageCache::new(opts.page_cache_pages)),
            alloc: parking_lot::Mutex::new(ExtentAllocator::new(capacity)),
            files: parking_lot::Mutex::new(BTreeMap::new()),
            by_id: parking_lot::Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            throttle_writebacks: AtomicU64::new(0),
            sync_writebacks: AtomicU64::new(0),
            bg_writebacks: AtomicU64::new(0),
            wb_wake: xlsm_sim::sync::WaitSet::new("fs-writeback"),
            fault: parking_lot::Mutex::new(None),
            dead: AtomicBool::new(false),
            write_through,
            injected_errors: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            power_cuts: AtomicU64::new(0),
            opts,
        });
        // Background writeback (the pdflush/kworker analogue): drains dirty
        // pages above the soft limit so appenders normally never block on
        // the device. A parked daemon thread per filesystem.
        let fs2 = Arc::clone(&fs);
        xlsm_sim::spawn_daemon("fs-writeback", move || loop {
            fs2.wb_wake.wait();
            loop {
                let batch = {
                    let mut cache = fs2.cache.lock();
                    if cache.dirty_count() <= fs2.soft_dirty_limit() * 4 / 5 {
                        break;
                    }
                    cache.take_dirty_batch(32)
                };
                if batch.is_empty() {
                    break;
                }
                fs2.bg_writebacks
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                fs2.write_back(&batch);
            }
        });
        fs
    }

    fn soft_dirty_limit(&self) -> usize {
        ((self.opts.page_cache_pages as f64) * self.opts.dirty_limit_fraction) as usize
    }

    fn hard_dirty_limit(&self) -> usize {
        self.soft_dirty_limit() * 2
    }

    /// The device underneath (for stats or direct raw benchmarks).
    pub fn device(&self) -> &Arc<dyn Device> {
        &self.device
    }

    /// The options this filesystem was built with.
    pub fn options(&self) -> &FsOptions {
        &self.opts
    }

    /// Creates a new empty file.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] if the path is taken.
    pub fn create(self: &Arc<Self>, path: &str) -> FsResult<FileHandle> {
        let data = Arc::new(FileData {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            name: parking_lot::Mutex::new(path.to_owned()),
            content: parking_lot::RwLock::new(Vec::new()),
            extents: parking_lot::Mutex::new(Vec::new()),
            deleted: AtomicBool::new(false),
            durability: parking_lot::Mutex::new(Durability::default()),
        });
        {
            let mut files = self.files.lock();
            if files.contains_key(path) {
                return Err(FsError::AlreadyExists(path.to_owned()));
            }
            files.insert(path.to_owned(), Arc::clone(&data));
        }
        self.by_id.lock().insert(data.id, Arc::clone(&data));
        Ok(FileHandle {
            fs: Arc::clone(self),
            data,
        })
    }

    /// Opens an existing file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    pub fn open(self: &Arc<Self>, path: &str) -> FsResult<FileHandle> {
        let data = self
            .files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        Ok(FileHandle {
            fs: Arc::clone(self),
            data,
        })
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.lock().contains_key(path)
    }

    /// Lists paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .lock()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Deletes a file: drops cached pages, frees and TRIMs its extents.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if absent.
    pub fn delete(&self, path: &str) -> FsResult<()> {
        let data = self
            .files
            .lock()
            .remove(path)
            .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        self.by_id.lock().remove(&data.id);
        data.deleted.store(true, Ordering::Relaxed);
        self.cache.lock().remove_file(data.id);
        let extents = std::mem::take(&mut *data.extents.lock());
        {
            let mut alloc = self.alloc.lock();
            for &(start, len) in &extents {
                alloc.free(start, len);
            }
        }
        for (start, len) in extents {
            self.device.trim(start, len);
        }
        Ok(())
    }

    /// Atomically renames a file.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if `from` is absent; [`FsError::AlreadyExists`]
    /// if `to` is taken.
    pub fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let mut files = self.files.lock();
        if files.contains_key(to) {
            return Err(FsError::AlreadyExists(to.to_owned()));
        }
        let data = files
            .remove(from)
            .ok_or_else(|| FsError::NotFound(from.to_owned()))?;
        *data.name.lock() = to.to_owned();
        files.insert(to.to_owned(), data);
        Ok(())
    }

    /// Unallocated device pages remaining.
    pub fn free_space_pages(&self) -> u64 {
        self.alloc.lock().free_pages()
    }

    /// Current counters.
    pub fn stats(&self) -> FsStats {
        let cache = self.cache.lock();
        FsStats {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            dirty_evictions: cache.dirty_evictions,
            throttle_writebacks: self.throttle_writebacks.load(Ordering::Relaxed),
            background_writebacks: self.bg_writebacks.load(Ordering::Relaxed),
            sync_writebacks: self.sync_writebacks.load(Ordering::Relaxed),
            resident_pages: cache.resident_count() as u64,
            dirty_pages: cache.dirty_count() as u64,
            files: self.files.lock().len() as u64,
            injected_errors: self.injected_errors.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            power_cuts: self.power_cuts.load(Ordering::Relaxed),
        }
    }

    /// Installs a fault-injection plan, replacing any previous one. The
    /// plan's RNG stream and operation counters start fresh.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(FaultState::new(plan));
    }

    /// Removes the active fault plan; subsequent operations run clean.
    pub fn clear_fault_plan(&self) {
        *self.fault.lock() = None;
    }

    /// Operations counted by the active fault plan so far — the counter
    /// [`FaultPlan::power_cut_at_op`] triggers against. Returns 0 with no
    /// plan installed. A crash harness runs its workload once under an
    /// empty [`FaultPlan`], reads this, and then sweeps cut points over
    /// `1..=fault_ops()` knowing each replay counts identically.
    pub fn fault_ops(&self) -> u64 {
        self.fault.lock().as_ref().map_or(0, FaultState::ops)
    }

    /// Whether a power cut is in effect (operations fail until
    /// [`SimFs::power_restore`]).
    pub fn is_powered_off(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Simulates a power failure: every file is truncated to its durable
    /// prefix (bytes persisted past the device barrier — or at write time
    /// on write-through devices), all cached pages are dropped, the
    /// device's volatile write buffer is discarded, and every subsequent
    /// operation fails with a hard [`FsError::Io`] until
    /// [`SimFs::power_restore`].
    ///
    /// The namespace itself (file names, allocations) survives, modelling
    /// a journaled-metadata filesystem where only data buffered in RAM or
    /// the device write buffer is lost.
    pub fn power_cut(&self) {
        self.power_cuts.fetch_add(1, Ordering::Relaxed);
        self.dead.store(true, Ordering::Relaxed);
        self.device.power_cut();
        let by_id = self.by_id.lock();
        for data in by_id.values() {
            let mut dur = data.durability.lock();
            dur.device.clear();
            let keep = dur.durable_prefix_bytes() as usize;
            let mut content = data.content.write();
            if content.len() > keep {
                content.truncate(keep);
            }
        }
        drop(by_id);
        self.cache.lock().drop_all();
    }

    /// Restores power after [`SimFs::power_cut`] so files can be reopened
    /// (crash recovery). Any active fault plan is dropped: the restored
    /// incarnation starts clean.
    pub fn power_restore(&self) {
        self.clear_fault_plan();
        self.dead.store(false, Ordering::Relaxed);
    }

    /// Fails the operation if a power cut is in effect.
    fn fail_if_dead(&self, op: &'static str, path: &str) -> FsResult<()> {
        if self.dead.load(Ordering::Relaxed) {
            Err(FsError::Io {
                op,
                path: path.to_owned(),
                retryable: false,
            })
        } else {
            Ok(())
        }
    }

    /// Consults the fault plan for one operation and bumps the injection
    /// counters. [`FaultOutcome::PowerCut`] is executed here.
    fn fault_decide(&self, op: FaultOp, path: &str, len: usize) -> FaultOutcome {
        let outcome = {
            let mut guard = self.fault.lock();
            match guard.as_mut() {
                Some(state) => state.decide(op, path, len),
                None => FaultOutcome::None,
            }
        };
        match outcome {
            FaultOutcome::Error { .. } => {
                self.injected_errors.fetch_add(1, Ordering::Relaxed);
            }
            FaultOutcome::Torn { .. } => {
                self.injected_errors.fetch_add(1, Ordering::Relaxed);
                self.torn_writes.fetch_add(1, Ordering::Relaxed);
            }
            FaultOutcome::BitFlip { .. } => {
                self.bit_flips.fetch_add(1, Ordering::Relaxed);
            }
            FaultOutcome::PowerCut => self.power_cut(),
            FaultOutcome::None => {}
        }
        outcome
    }

    /// Promotes device-buffered bytes to durable for every file: called
    /// after a device barrier completes.
    fn promote_durable(&self) {
        let by_id = self.by_id.lock();
        for data in by_id.values() {
            data.durability.lock().promote();
        }
    }

    fn memcpy_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.opts.memcpy_ns_per_kib) / 1024
    }

    /// Writes back the given cache victims to the device (coalescing
    /// LPN-contiguous runs). Must be called with no locks held.
    fn write_back(&self, victims: &[PageKey]) {
        if victims.is_empty() {
            return;
        }
        // A dead filesystem writes nothing: pages "pushed" after the cut
        // must not enter the durability ledger, or a later barrier would
        // promote data the cut already destroyed.
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        // Resolve LPNs; skip pages of deleted files. This is the single
        // point where data reaches the device, so durability bookkeeping
        // (for power-cut simulation) is recorded here too.
        let by_id = self.by_id.lock();
        let mut lpns: Vec<u64> = victims
            .iter()
            .filter_map(|&(file, page)| {
                let f = by_id.get(&file)?;
                let lpn = f.lpn_of(page)?;
                let len = f.content.read().len() as u64;
                let valid = len
                    .saturating_sub(page * PAGE_SIZE as u64)
                    .min(PAGE_SIZE as u64) as u32;
                if valid > 0 {
                    f.durability
                        .lock()
                        .record_device_write(page, valid, self.write_through);
                }
                Some(lpn)
            })
            .collect();
        drop(by_id);
        lpns.sort_unstable();
        let mut i = 0;
        while i < lpns.len() {
            let start = lpns[i];
            let mut run = 1u32;
            while i + (run as usize) < lpns.len() && lpns[i + run as usize] == start + run as u64 {
                run += 1;
            }
            self.device.write(start, run);
            i += run as usize;
        }
    }

    /// Dirty-page policy, called by appenders after dirtying pages: above
    /// the soft limit, kick the background daemon; above the hard limit,
    /// the appender writes back synchronously (dirty throttling).
    fn maybe_throttle_dirty(&self) {
        let dirty = self.cache.lock().dirty_count();
        if dirty > self.soft_dirty_limit() {
            self.wb_wake.notify_one();
        }
        let hard = self.hard_dirty_limit();
        loop {
            let batch = {
                let mut cache = self.cache.lock();
                if cache.dirty_count() <= hard {
                    return;
                }
                cache.take_dirty_batch(64)
            };
            if batch.is_empty() {
                return;
            }
            self.throttle_writebacks
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.write_back(&batch);
        }
    }
}

/// A handle to one file; clones share the same underlying file.
pub struct FileHandle {
    fs: Arc<SimFs>,
    data: Arc<FileData>,
}

impl Clone for FileHandle {
    fn clone(&self) -> Self {
        FileHandle {
            fs: Arc::clone(&self.fs),
            data: Arc::clone(&self.data),
        }
    }
}

impl fmt::Debug for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileHandle")
            .field("name", &*self.data.name.lock())
            .field("len", &self.len())
            .finish()
    }
}

impl FileHandle {
    /// Current file size in bytes.
    pub fn len(&self) -> u64 {
        self.data.content.read().len() as u64
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The file's current path.
    pub fn name(&self) -> String {
        self.data.name.lock().clone()
    }

    fn check_live(&self) -> FsResult<()> {
        if self.data.deleted.load(Ordering::Relaxed) {
            Err(FsError::Stale(self.name()))
        } else {
            Ok(())
        }
    }

    /// Appends `data`, returning the offset it was written at.
    ///
    /// The append is *buffered*: it lands in the page cache as dirty pages
    /// and reaches the device on [`FileHandle::sync`], eviction pressure, or
    /// the dirty-ratio throttle.
    ///
    /// # Errors
    ///
    /// [`FsError::Stale`] if the file was deleted; [`FsError::DeviceFull`]
    /// if extent allocation fails; [`FsError::Io`] if the fault layer
    /// injects a failure (a torn-write fault applies a strict prefix of
    /// `data` before failing).
    pub fn append(&self, data: &[u8]) -> FsResult<u64> {
        self.check_live()?;
        let name = self.name();
        self.fs.fail_if_dead("append", &name)?;
        match self.fs.fault_decide(FaultOp::Append, &name, data.len()) {
            FaultOutcome::None => self.append_inner(data),
            FaultOutcome::Error { retryable } => Err(FsError::Io {
                op: "append",
                path: name,
                retryable,
            }),
            FaultOutcome::Torn { keep, retryable } => {
                // A torn write: part of the payload lands before the fault.
                let _ = self.append_inner(&data[..keep]);
                Err(FsError::Io {
                    op: "append",
                    path: name,
                    retryable,
                })
            }
            FaultOutcome::PowerCut => Err(FsError::Io {
                op: "append",
                path: name,
                retryable: false,
            }),
            FaultOutcome::BitFlip { .. } => unreachable!("bit flips only target reads"),
        }
    }

    fn append_inner(&self, data: &[u8]) -> FsResult<u64> {
        let fs = &self.fs;
        xlsm_sim::sleep_nanos(fs.opts.host_write_ns + fs.memcpy_ns(data.len()));
        if data.is_empty() {
            return Ok(self.len());
        }
        // Extend content.
        let (offset, new_len) = {
            let mut content = self.data.content.write();
            let offset = content.len() as u64;
            content.extend_from_slice(data);
            (offset, content.len() as u64)
        };
        // Ensure device extents cover the new size.
        let needed_pages = new_len.div_ceil(PAGE_SIZE as u64);
        let have = self.data.allocated_pages();
        if needed_pages > have {
            let grow = (needed_pages - have).max(fs.opts.alloc_chunk_pages);
            let start = fs.alloc.lock().allocate(grow).ok_or(FsError::DeviceFull)?;
            self.data.extents.lock().push((start, grow));
        }
        // Mark the touched pages dirty.
        let first_page = offset / PAGE_SIZE as u64;
        let last_page = (new_len - 1) / PAGE_SIZE as u64;
        let mut victims = Vec::new();
        {
            let mut cache = fs.cache.lock();
            for page in first_page..=last_page {
                if let Some(v) = cache.insert((self.data.id, page), true) {
                    victims.push(v);
                }
            }
        }
        fs.write_back(&victims);
        fs.maybe_throttle_dirty();
        Ok(offset)
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`FsError::OutOfRange`] if the range exceeds the file;
    /// [`FsError::Stale`] if the file was deleted; [`FsError::Io`] if the
    /// fault layer injects a failure (a bit-flip fault corrupts one bit of
    /// the returned payload instead of erroring).
    pub fn read_at(&self, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.check_live()?;
        let name = self.name();
        self.fs.fail_if_dead("read", &name)?;
        let flip = match self.fs.fault_decide(FaultOp::Read, &name, len) {
            FaultOutcome::None => None,
            FaultOutcome::BitFlip { byte, bit } => Some((byte, bit)),
            FaultOutcome::Error { retryable } => {
                return Err(FsError::Io {
                    op: "read",
                    path: name,
                    retryable,
                })
            }
            FaultOutcome::PowerCut => {
                return Err(FsError::Io {
                    op: "read",
                    path: name,
                    retryable: false,
                })
            }
            FaultOutcome::Torn { .. } => unreachable!("torn faults only target appends"),
        };
        let fs = &self.fs;
        xlsm_sim::sleep_nanos(fs.opts.host_read_ns + fs.memcpy_ns(len));
        let size = self.len();
        if offset + len as u64 > size {
            return Err(FsError::OutOfRange { offset, len, size });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let first_page = offset / PAGE_SIZE as u64;
        let last_page = (offset + len as u64 - 1) / PAGE_SIZE as u64;
        // Classify hits/misses and insert the missing pages (clean).
        let mut missing = Vec::new();
        let mut victims = Vec::new();
        {
            let mut cache = fs.cache.lock();
            for page in first_page..=last_page {
                let key = (self.data.id, page);
                if !cache.touch(key) {
                    missing.push(page);
                    if let Some(v) = cache.insert(key, false) {
                        victims.push(v);
                    }
                }
            }
        }
        fs.write_back(&victims);
        // Charge device reads for LPN-contiguous runs of missing pages.
        if !missing.is_empty() {
            let mut lpns: Vec<u64> = missing
                .iter()
                .filter_map(|&p| self.data.lpn_of(p))
                .collect();
            lpns.sort_unstable();
            let mut i = 0;
            while i < lpns.len() {
                let start = lpns[i];
                let mut run = 1u32;
                while i + (run as usize) < lpns.len()
                    && lpns[i + run as usize] == start + run as u64
                {
                    run += 1;
                }
                fs.device.read(start, run);
                i += run as usize;
            }
        }
        let content = self.data.content.read();
        let mut out = content[offset as usize..offset as usize + len].to_vec();
        if let Some((byte, bit)) = flip {
            // Transient corruption: only the returned copy is flipped.
            out[byte] ^= 1u8 << bit;
        }
        Ok(out)
    }

    /// Populates the page cache for `[offset, offset + len)` with coalesced
    /// device reads, without copying any data to the caller — the readahead
    /// primitive (`posix_fadvise(WILLNEED)` analogue) used by compaction's
    /// sequential scans.
    ///
    /// # Errors
    ///
    /// [`FsError::Stale`] if the file was deleted. Ranges beyond EOF are
    /// clamped silently.
    pub fn prefetch(&self, offset: u64, len: usize) -> FsResult<()> {
        self.check_live()?;
        self.fs.fail_if_dead("prefetch", &self.name())?;
        let fs = &self.fs;
        let size = self.len();
        if offset >= size || len == 0 {
            return Ok(());
        }
        let end = (offset + len as u64).min(size);
        xlsm_sim::sleep_nanos(fs.opts.host_read_ns);
        let first_page = offset / PAGE_SIZE as u64;
        let last_page = (end - 1) / PAGE_SIZE as u64;
        let mut missing = Vec::new();
        let mut victims = Vec::new();
        {
            let mut cache = fs.cache.lock();
            for page in first_page..=last_page {
                let key = (self.data.id, page);
                if !cache.touch(key) {
                    missing.push(page);
                    if let Some(v) = cache.insert(key, false) {
                        victims.push(v);
                    }
                }
            }
        }
        fs.write_back(&victims);
        if !missing.is_empty() {
            let mut lpns: Vec<u64> = missing
                .iter()
                .filter_map(|&p| self.data.lpn_of(p))
                .collect();
            lpns.sort_unstable();
            let mut i = 0;
            while i < lpns.len() {
                let start = lpns[i];
                let mut run = 1u32;
                while i + (run as usize) < lpns.len()
                    && lpns[i + run as usize] == start + run as u64
                {
                    run += 1;
                }
                fs.device.read(start, run);
                i += run as usize;
            }
        }
        Ok(())
    }

    /// Writes back this file's dirty pages and issues a device barrier
    /// (waits for the flash write-buffer drain).
    ///
    /// # Errors
    ///
    /// [`FsError::Stale`] if the file was deleted; [`FsError::Io`] if the
    /// fault layer injects a failure (nothing is written back then).
    pub fn sync(&self) -> FsResult<()> {
        self.check_live()?;
        self.fault_check_sync()?;
        let pages = self.fs.cache.lock().clean_file(self.data.id);
        self.fs
            .sync_writebacks
            .fetch_add(pages.len() as u64, Ordering::Relaxed);
        let keys: Vec<PageKey> = pages.into_iter().map(|p| (self.data.id, p)).collect();
        self.fs.write_back(&keys);
        self.fs.device.sync();
        // The write-back above yields to the runtime, so a scripted power
        // cut can land *inside* this sync. A sync that did not complete
        // before power died must fail — the cut has already discarded the
        // device write buffer, so reporting success here would let the
        // caller acknowledge a write that was never durable.
        self.fs.fail_if_dead("sync", &self.name())?;
        // The barrier has completed: everything previously pushed to the
        // device (any file) is now durable.
        self.fs.promote_durable();
        Ok(())
    }

    /// Shared fault hook for [`FileHandle::sync`] / [`FileHandle::flush_data`].
    fn fault_check_sync(&self) -> FsResult<()> {
        let name = self.name();
        self.fs.fail_if_dead("sync", &name)?;
        match self.fs.fault_decide(FaultOp::Sync, &name, 0) {
            FaultOutcome::None => Ok(()),
            FaultOutcome::Error { retryable } => Err(FsError::Io {
                op: "sync",
                path: name,
                retryable,
            }),
            FaultOutcome::PowerCut => Err(FsError::Io {
                op: "sync",
                path: name,
                retryable: false,
            }),
            other => unreachable!("sync faults cannot be {other:?}"),
        }
    }

    /// Like [`FileHandle::sync`] but without the device barrier — pushes the
    /// dirty pages to the device write buffer only (`sync_file_range`
    /// analogue, used for WAL `bytes_per_sync` style background flushing).
    ///
    /// # Errors
    ///
    /// [`FsError::Stale`] if the file was deleted; [`FsError::Io`] if the
    /// fault layer injects a failure.
    pub fn flush_data(&self) -> FsResult<()> {
        self.check_live()?;
        self.fault_check_sync()?;
        let pages = self.fs.cache.lock().clean_file(self.data.id);
        self.fs
            .sync_writebacks
            .fetch_add(pages.len() as u64, Ordering::Relaxed);
        let keys: Vec<PageKey> = pages.into_iter().map(|p| (self.data.id, p)).collect();
        self.fs.write_back(&keys);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;

    fn fixture(cache_pages: usize) -> (Arc<SimFs>, Arc<SimDevice>) {
        let dev = SimDevice::shared(profiles::optane_900p());
        let fs = SimFs::new(
            Arc::clone(&dev) as Arc<dyn Device>,
            FsOptions {
                page_cache_pages: cache_pages,
                ..FsOptions::default()
            },
        );
        (fs, dev)
    }

    #[test]
    fn create_append_read_roundtrip() {
        Runtime::new().run(|| {
            let (fs, _dev) = fixture(64);
            let f = fs.create("a/b.sst").unwrap();
            let off = f.append(b"hello").unwrap();
            assert_eq!(off, 0);
            let off2 = f.append(b" world").unwrap();
            assert_eq!(off2, 5);
            assert_eq!(f.read_at(0, 11).unwrap(), b"hello world");
            assert_eq!(f.read_at(6, 5).unwrap(), b"world");
        });
    }

    #[test]
    fn read_past_end_errors() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            let f = fs.create("x").unwrap();
            f.append(b"abc").unwrap();
            assert!(matches!(f.read_at(2, 5), Err(FsError::OutOfRange { .. })));
        });
    }

    #[test]
    fn namespace_operations() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            fs.create("db/1.sst").unwrap();
            fs.create("db/2.sst").unwrap();
            fs.create("wal/1.log").unwrap();
            assert!(fs.exists("db/1.sst"));
            assert_eq!(fs.list("db/"), vec!["db/1.sst", "db/2.sst"]);
            assert!(matches!(
                fs.create("db/1.sst"),
                Err(FsError::AlreadyExists(_))
            ));
            fs.rename("db/1.sst", "db/3.sst").unwrap();
            assert!(!fs.exists("db/1.sst"));
            assert_eq!(fs.open("db/3.sst").unwrap().read_at(0, 0).unwrap(), b"");
            fs.delete("db/3.sst").unwrap();
            assert!(matches!(fs.open("db/3.sst"), Err(FsError::NotFound(_))));
        });
    }

    #[test]
    fn stale_handle_after_delete() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            let f = fs.create("gone").unwrap();
            f.append(b"data").unwrap();
            fs.delete("gone").unwrap();
            assert!(matches!(f.append(b"x"), Err(FsError::Stale(_))));
            assert!(matches!(f.read_at(0, 1), Err(FsError::Stale(_))));
        });
    }

    #[test]
    fn cached_read_is_cheaper_than_cold_read() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(1024);
            let f = fs.create("f").unwrap();
            f.append(&vec![7u8; 64 * 1024]).unwrap();
            f.sync().unwrap();
            // Evict by filling the cache with another file's pages? Instead:
            // first read is a hit (pages still dirty-resident from append).
            let t0 = xlsm_sim::now_nanos();
            f.read_at(0, 4096).unwrap();
            let warm = xlsm_sim::now_nanos() - t0;
            // Build a cold read by creating a fresh fs whose cache is tiny.
            let (fs2, _) = fixture(16);
            let f2 = fs2.create("f2").unwrap();
            f2.append(&vec![7u8; 256 * 1024]).unwrap();
            f2.sync().unwrap();
            // Touch later pages to evict page 0, then read page 0 cold.
            f2.read_at(128 * 1024, 64 * 1024).unwrap();
            let t1 = xlsm_sim::now_nanos();
            f2.read_at(0, 4096).unwrap();
            let cold = xlsm_sim::now_nanos() - t1;
            assert!(
                cold > warm + 10_000,
                "cold {cold} should exceed warm {warm} by a device read"
            );
        });
    }

    #[test]
    fn sync_pushes_dirty_pages_to_device() {
        Runtime::new().run(|| {
            let (fs, dev) = fixture(1024);
            let f = fs.create("f").unwrap();
            f.append(&vec![1u8; 40 * 1024]).unwrap();
            assert_eq!(dev.stats().writes, 0, "append must be buffered");
            f.sync().unwrap();
            let s = dev.stats();
            assert!(s.writes >= 1);
            assert_eq!(s.pages_written, 10);
            // Second sync is a no-op.
            f.sync().unwrap();
            assert_eq!(dev.stats().pages_written, 10);
        });
    }

    #[test]
    fn dirty_throttle_forces_writeback() {
        Runtime::new().run(|| {
            let (fs, dev) = fixture(128); // dirty limit = 32 pages
            let f = fs.create("big").unwrap();
            f.append(&vec![0u8; 512 * 1024]).unwrap(); // 128 pages dirty
            let s = fs.stats();
            assert!(
                s.throttle_writebacks > 0,
                "appender should have been throttled: {s:?}"
            );
            assert!(dev.stats().pages_written > 0);
            assert!(s.dirty_pages <= 32);
        });
    }

    #[test]
    fn delete_trims_device() {
        Runtime::new().run(|| {
            let (fs, dev) = fixture(1024);
            let f = fs.create("f").unwrap();
            f.append(&vec![1u8; 64 * 1024]).unwrap();
            f.sync().unwrap();
            fs.delete("f").unwrap();
            assert!(dev.stats().trims >= 1);
        });
    }

    #[test]
    fn extent_reuse_after_delete() {
        Runtime::new().run(|| {
            // Tiny device: 2 MiB = 512 pages; chunk 256. Two files exhaust
            // it; delete must make room for a third.
            let dev = SimDevice::shared(profiles::optane_900p().with_capacity_bytes(2 << 20));
            let fs = SimFs::new(
                dev as Arc<dyn Device>,
                FsOptions {
                    page_cache_pages: 64,
                    ..FsOptions::default()
                },
            );
            let a = fs.create("a").unwrap();
            a.append(&vec![0u8; 1 << 20]).unwrap();
            let b = fs.create("b").unwrap();
            b.append(&vec![0u8; 1 << 20]).unwrap();
            let c = fs.create("c").unwrap();
            assert!(matches!(
                c.append(&vec![0u8; 1 << 20]),
                Err(FsError::DeviceFull)
            ));
            fs.delete("a").unwrap();
            let c2 = fs.create("c2").unwrap();
            c2.append(&vec![0u8; 1 << 20]).unwrap();
        });
    }

    #[test]
    fn concurrent_appenders_and_readers() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(2048);
            let f = fs.create("shared").unwrap();
            f.append(&vec![9u8; 8192]).unwrap();
            let mut handles = Vec::new();
            for i in 0..4 {
                let f = f.clone();
                handles.push(xlsm_sim::spawn(&format!("w{i}"), move || {
                    for _ in 0..50 {
                        f.append(&[i as u8; 100]).unwrap();
                    }
                }));
            }
            for i in 0..4 {
                let f = f.clone();
                handles.push(xlsm_sim::spawn(&format!("r{i}"), move || {
                    for _ in 0..50 {
                        f.read_at(0, 4096).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(f.len(), 8192 + 4 * 50 * 100);
        });
    }

    #[test]
    fn power_cut_loses_unsynced_keeps_synced() {
        Runtime::new().run(|| {
            // SATA flash: has a volatile write buffer, so only barriered
            // data survives.
            let dev = SimDevice::shared(profiles::intel_530_sata());
            let fs = SimFs::new(Arc::clone(&dev) as Arc<dyn Device>, FsOptions::default());
            let f = fs.create("f").unwrap();
            f.append(&vec![1u8; 10_000]).unwrap();
            f.sync().unwrap();
            f.append(&vec![2u8; 10_000]).unwrap(); // buffered only
            fs.power_cut();
            assert!(fs.is_powered_off());
            assert!(matches!(
                f.read_at(0, 1),
                Err(FsError::Io {
                    retryable: false,
                    ..
                })
            ));
            fs.power_restore();
            let g = fs.open("f").unwrap();
            assert_eq!(g.len(), 10_000, "synced prefix survives, tail is lost");
            assert_eq!(g.read_at(9_999, 1).unwrap(), vec![1u8]);
            assert_eq!(fs.stats().power_cuts, 1);
        });
    }

    #[test]
    fn power_cut_partial_page_durable_prefix() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(1024);
            let f = fs.create("f").unwrap();
            f.append(&vec![7u8; 5000]).unwrap(); // 1 full + 1 partial page
            f.sync().unwrap();
            f.append(&[8u8; 3]).unwrap(); // extends the partial page
            fs.power_cut();
            fs.power_restore();
            assert_eq!(fs.open("f").unwrap().len(), 5000);
        });
    }

    #[test]
    fn write_through_device_survives_without_barrier() {
        Runtime::new().run(|| {
            // Optane has no volatile write buffer: anything written back to
            // the device (even without a barrier) is durable.
            let (fs, _) = fixture(16); // tiny cache forces writeback
            let f = fs.create("f").unwrap();
            f.append(&vec![3u8; 256 * 1024]).unwrap(); // evictions push pages out
            let pushed = fs.stats().dirty_evictions + fs.stats().throttle_writebacks;
            assert!(pushed > 0, "tiny cache must have forced writebacks");
            fs.power_cut();
            fs.power_restore();
            let g = fs.open("f").unwrap();
            assert!(
                g.len() >= pushed * 4096,
                "written-back pages must be durable on write-through devices"
            );
        });
    }

    #[test]
    fn injected_append_error_is_reported() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            let f = fs.create("a.sst").unwrap();
            let g = fs.create("b.log").unwrap();
            fs.set_fault_plan(crate::FaultPlan {
                fail_nth_write: Some(1),
                path_filter: Some(".sst".into()),
                ..crate::FaultPlan::default()
            });
            g.append(b"unaffected").unwrap();
            assert!(matches!(
                f.append(b"doomed"),
                Err(FsError::Io {
                    op: "append",
                    retryable: true,
                    ..
                })
            ));
            assert_eq!(f.len(), 0, "a scripted error applies nothing");
            f.append(b"fine now").unwrap();
            assert_eq!(fs.stats().injected_errors, 1);
            fs.clear_fault_plan();
        });
    }

    #[test]
    fn torn_write_applies_strict_prefix() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            let f = fs.create("wal.log").unwrap();
            f.append(b"intact-record").unwrap();
            fs.set_fault_plan(crate::FaultPlan {
                torn_write_nth: Some(1),
                seed: 9,
                ..crate::FaultPlan::default()
            });
            let err = f.append(&vec![5u8; 1000]).unwrap_err();
            assert!(matches!(err, FsError::Io { .. }));
            let len = f.len();
            assert!(
                (13..13 + 1000).contains(&len),
                "torn append must keep a strict prefix, len={len}"
            );
            assert_eq!(fs.stats().torn_writes, 1);
        });
    }

    #[test]
    fn bit_flip_corrupts_only_returned_copy() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            let f = fs.create("f").unwrap();
            f.append(&[0u8; 100]).unwrap();
            fs.set_fault_plan(crate::FaultPlan {
                bit_flip_nth_read: Some(1),
                ..crate::FaultPlan::default()
            });
            let flipped = f.read_at(0, 100).unwrap();
            assert_eq!(
                flipped.iter().filter(|&&b| b != 0).count(),
                1,
                "exactly one byte should differ"
            );
            let clean = f.read_at(0, 100).unwrap();
            assert_eq!(clean, vec![0u8; 100], "stored bytes stay intact");
            assert_eq!(fs.stats().bit_flips, 1);
        });
    }

    #[test]
    fn scripted_power_cut_fires_mid_workload() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            let f = fs.create("f").unwrap();
            fs.set_fault_plan(crate::FaultPlan {
                power_cut_at_op: Some(3),
                ..crate::FaultPlan::default()
            });
            f.append(b"one").unwrap();
            f.append(b"two").unwrap();
            assert!(matches!(f.append(b"three"), Err(FsError::Io { .. })));
            assert!(fs.is_powered_off());
            assert_eq!(fs.stats().power_cuts, 1);
        });
    }

    #[test]
    fn stats_accumulate() {
        Runtime::new().run(|| {
            let (fs, _) = fixture(64);
            let f = fs.create("s").unwrap();
            f.append(&vec![0u8; 4096]).unwrap();
            f.read_at(0, 100).unwrap();
            let s = fs.stats();
            assert_eq!(s.files, 1);
            assert!(s.cache_hits >= 1);
        });
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use xlsm_device::{profiles, SimDevice};
    use xlsm_sim::Runtime;

    #[test]
    fn prefetch_warms_the_cache_in_one_device_read() {
        Runtime::new().run(|| {
            let dev = SimDevice::shared(profiles::intel_530_sata());
            let fs = SimFs::new(
                Arc::clone(&dev) as Arc<dyn Device>,
                FsOptions {
                    page_cache_pages: 4096,
                    ..FsOptions::default()
                },
            );
            let f = fs.create("big").unwrap();
            f.append(&vec![7u8; 256 << 10]).unwrap();
            f.sync().unwrap();
            // Evict by recreating a cold filesystem? Instead drop residency:
            // pages are resident from the append; delete + rebuild cold.
            let reads_before = dev.stats().reads;
            f.prefetch(0, 256 << 10).unwrap();
            let reads_mid = dev.stats().reads;
            assert_eq!(
                reads_mid, reads_before,
                "already-resident pages need no I/O"
            );
            // Cold path: new fs over same device style — use a fresh file
            // whose pages we explicitly push out with a tiny cache.
            let fs2 = SimFs::new(
                Arc::clone(&dev) as Arc<dyn Device>,
                FsOptions {
                    page_cache_pages: 1024,
                    ..FsOptions::default()
                },
            );
            let g = fs2.create("cold").unwrap();
            g.append(&vec![9u8; 8 << 20]).unwrap(); // far beyond the cache
            g.sync().unwrap();
            let r0 = dev.stats().reads;
            g.prefetch(0, 256 << 10).unwrap();
            let r1 = dev.stats().reads;
            assert!(r1 > r0, "cold prefetch must read the device");
            assert!(
                r1 - r0 <= 4,
                "prefetch must coalesce into few large reads, got {}",
                r1 - r0
            );
            // Now the reads are cache hits (no further device reads).
            let t0 = xlsm_sim::now_nanos();
            g.read_at(0, 64 << 10).unwrap();
            let warm = xlsm_sim::now_nanos() - t0;
            assert_eq!(dev.stats().reads, r1, "post-prefetch read must hit cache");
            assert!(warm < 100_000, "warm read should be CPU-cheap: {warm} ns");
        });
    }

    #[test]
    fn prefetch_clamps_past_eof() {
        Runtime::new().run(|| {
            let fs = SimFs::new(
                SimDevice::shared(profiles::optane_900p()),
                FsOptions::default(),
            );
            let f = fs.create("short").unwrap();
            f.append(b"tiny").unwrap();
            f.prefetch(0, 1 << 20).unwrap(); // way past EOF: fine
            f.prefetch(1 << 30, 4096).unwrap(); // fully past EOF: no-op
        });
    }
    /// Regression: a power cut landing *inside* a sync (the device
    /// write-back yields to the runtime) must fail that sync. Reporting
    /// success would let a WAL writer acknowledge a commit whose bytes the
    /// cut already discarded — an acked write would silently vanish.
    #[test]
    fn sync_straddling_power_cut_fails_instead_of_acking() {
        Runtime::new().run(|| {
            let fs = SimFs::new(
                SimDevice::shared(profiles::intel_530_sata()),
                FsOptions::default(),
            );
            let f = fs.create("db/000007.log").unwrap();
            f.append(&[7u8; 256]).unwrap();
            // Cut power 1 µs into the sync: the device write for the dirty
            // page takes far longer, so the cut interleaves with it.
            let killer = {
                let fs = Arc::clone(&fs);
                xlsm_sim::spawn("killer", move || {
                    xlsm_sim::sleep_nanos(1_000);
                    fs.power_cut();
                })
            };
            let res = f.sync();
            killer.join();
            assert!(res.is_err(), "interrupted sync must not report success");
            fs.power_restore();
            let g = fs.open("db/000007.log").unwrap();
            assert_eq!(g.len(), 0, "nothing unacknowledged may survive the cut");
        });
    }
}
