//! Lock-free device counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counter block (one per device).
#[derive(Debug, Default)]
pub(crate) struct Stats {
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub pages_read: AtomicU64,
    pub pages_written: AtomicU64,
    pub read_queue_ns: AtomicU64,
    pub read_service_ns: AtomicU64,
    pub write_service_ns: AtomicU64,
    pub write_stall_ns: AtomicU64,
    pub syncs: AtomicU64,
    pub sync_wait_ns: AtomicU64,
    pub trims: AtomicU64,
    pub power_cuts: AtomicU64,
}

impl Stats {
    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a device's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceSnapshot {
    /// Read commands served.
    pub reads: u64,
    /// Write commands served.
    pub writes: u64,
    /// 4-KiB pages read.
    pub pages_read: u64,
    /// 4-KiB pages written.
    pub pages_written: u64,
    /// Total virtual time read commands spent queued for a channel.
    pub read_queue_ns: u64,
    /// Total read service time (media + bus).
    pub read_service_ns: u64,
    /// Total write service time (bus + buffer insert or media).
    pub write_service_ns: u64,
    /// Total time writers stalled on a full write buffer.
    pub write_stall_ns: u64,
    /// `sync` commands served.
    pub syncs: u64,
    /// Total time spent waiting in `sync` for the buffer to drain.
    pub sync_wait_ns: u64,
    /// TRIM commands served.
    pub trims: u64,
    /// Power cuts simulated (volatile write buffer discarded).
    pub power_cuts: u64,
    /// Host pages written as seen by the FTL (flash only).
    pub ftl_host_pages: u64,
    /// GC-relocated pages (flash only).
    pub gc_moved_pages: u64,
    /// Block erases (flash only).
    pub erases: u64,
    /// Cumulative write amplification (1.0 for non-flash).
    pub write_amp: f64,
}

impl DeviceSnapshot {
    /// Mean read latency (queue + service) in nanoseconds, or 0 if no reads.
    pub fn mean_read_ns(&self) -> u64 {
        (self.read_queue_ns + self.read_service_ns)
            .checked_div(self.reads)
            .unwrap_or(0)
    }

    /// Mean write latency (service + stall) in nanoseconds, or 0 if none.
    pub fn mean_write_ns(&self) -> u64 {
        (self.write_service_ns + self.write_stall_ns)
            .checked_div(self.writes)
            .unwrap_or(0)
    }

    /// Difference of two snapshots (for interval measurements).
    pub fn delta_since(&self, earlier: &DeviceSnapshot) -> DeviceSnapshot {
        DeviceSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            read_queue_ns: self.read_queue_ns - earlier.read_queue_ns,
            read_service_ns: self.read_service_ns - earlier.read_service_ns,
            write_service_ns: self.write_service_ns - earlier.write_service_ns,
            write_stall_ns: self.write_stall_ns - earlier.write_stall_ns,
            syncs: self.syncs - earlier.syncs,
            sync_wait_ns: self.sync_wait_ns - earlier.sync_wait_ns,
            trims: self.trims - earlier.trims,
            power_cuts: self.power_cuts - earlier.power_cuts,
            ftl_host_pages: self.ftl_host_pages - earlier.ftl_host_pages,
            gc_moved_pages: self.gc_moved_pages - earlier.gc_moved_pages,
            erases: self.erases - earlier.erases,
            write_amp: self.write_amp,
        }
    }
}
