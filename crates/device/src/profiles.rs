//! Calibrated device parameter sets.
//!
//! Each profile is fit to the paper's own reported measurements, not to
//! datasheets alone. The two hard anchors come from Fig. 1 (raw 4-KiB random
//! I/O, 8 threads, 1:1 read/write over the first fraction of the device):
//! **26 kop/s** on the Intel 530 SATA flash SSD and **408 kop/s** on the
//! Optane 900P. Secondary anchors are the read/write tail-latency orderings
//! of Figs. 6–7 and 14–15, and the NAND timing constants quoted in the
//! paper's background section (read ≈ 50 µs, program ≈ 500 µs – 1 ms,
//! erase ≈ 2.5 ms).
//!
//! Capacities are scaled ~32× below the physical devices so that scaled
//! experiments (see `DESIGN.md`) keep the same utilization ratios.

use crate::PAGE_SIZE;

/// Broad device family; selects the timing code path in [`crate::SimDevice`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// NAND flash behind a SATA interface (Intel 530-class).
    SataFlash,
    /// NAND flash behind a PCIe/NVMe interface (Intel 750-class).
    PcieFlash,
    /// 3D XPoint behind PCIe/NVMe (Optane 900P-class).
    XPoint,
    /// Byte-addressable non-volatile memory (DRAM-emulated in the paper).
    Nvm,
}

impl DeviceKind {
    /// Short label used in reports and figure output.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::SataFlash => "sata-flash",
            DeviceKind::PcieFlash => "pcie-flash",
            DeviceKind::XPoint => "3d-xpoint",
            DeviceKind::Nvm => "nvm",
        }
    }
}

/// Full parameter set for one simulated device.
///
/// Construct via the functions in this module and tweak with the builder
/// methods; all fields are public for inspection.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable model name.
    pub name: &'static str,
    /// Device family.
    pub kind: DeviceKind,
    /// Logical capacity in 4-KiB pages.
    pub capacity_pages: u64,
    /// Independent internal units serving media reads (and direct writes).
    pub channels: u64,
    /// Media read latency per command, nanoseconds.
    pub read_lat_ns: u64,
    /// Media program/write latency per page, nanoseconds.
    pub prog_lat_ns: u64,
    /// Block erase latency, nanoseconds (flash only; 0 otherwise).
    pub erase_lat_ns: u64,
    /// Pages per erase block (flash only; 0 disables the FTL).
    pub pages_per_block: u32,
    /// Physical over-provisioning fraction (flash only).
    pub overprovision: f64,
    /// DRAM write-buffer capacity in pages (flash only; 0 = direct writes).
    pub write_buffer_pages: u64,
    /// Latency to accept one buffered write into the DRAM buffer, ns.
    pub buf_insert_ns: u64,
    /// Effective parallelism of the background program path for small
    /// random writes (partial-stripe programming); the drain server retires
    /// one page every `prog_lat_ns / drain_ways` ns.
    pub drain_ways: u64,
    /// Effective parallelism for large sequential writes (full-stripe
    /// programming) — flush/compaction traffic drains at this pace.
    pub drain_ways_seq: u64,
    /// Host interface transfer time per 4-KiB page, nanoseconds.
    pub bus_ns_per_page: u64,
    /// Fixed per-command interface/controller overhead, nanoseconds.
    pub bus_fixed_ns: u64,
}

impl DeviceProfile {
    /// Returns the capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_pages * PAGE_SIZE as u64
    }

    /// Overrides the capacity (in bytes, rounded down to whole pages).
    pub fn with_capacity_bytes(mut self, bytes: u64) -> DeviceProfile {
        self.capacity_pages = bytes / PAGE_SIZE as u64;
        self
    }

    /// Overrides the channel count.
    pub fn with_channels(mut self, channels: u64) -> DeviceProfile {
        self.channels = channels;
        self
    }

    /// Whether this profile carries an FTL (i.e., is NAND flash).
    pub fn has_ftl(&self) -> bool {
        self.pages_per_block > 0
    }
}

/// Intel 530-class SATA flash SSD.
///
/// Anchors: raw mixed 4-KiB throughput ≈ 26 kop/s @ 8 threads (Fig. 1);
/// RocksDB read p90 ≈ 839 µs under 90 % writes (Fig. 6); low-queue-depth
/// write latency similar to Optane because of the DRAM write buffer (Fig. 7).
pub fn intel_530_sata() -> DeviceProfile {
    DeviceProfile {
        name: "intel-530-sata",
        kind: DeviceKind::SataFlash,
        capacity_pages: 8 << 18, // 8 GiB simulated (240 GB physical / ~32)
        channels: 6,
        read_lat_ns: 105_000,
        prog_lat_ns: 1_000_000,
        erase_lat_ns: 2_500_000,
        pages_per_block: 64,
        overprovision: 0.07,
        write_buffer_pages: 2048, // 8 MiB DRAM buffer
        buf_insert_ns: 4_000,
        drain_ways: 9,          // sustained 4 KiB random ≈ 36 MB/s
        drain_ways_seq: 48,     // sustained sequential ≈ 200 MB/s
        bus_ns_per_page: 7_400, // ~550 MB/s SATA III
        bus_fixed_ns: 20_000,   // AHCI/SATA command overhead
    }
}

/// Intel 750-class PCIe (NVMe) flash SSD.
///
/// Anchors: RocksDB throughput 32 → 41.3 kop/s as insertion ratio rises
/// (Fig. 3); tail latencies strictly between the SATA flash and the Optane.
pub fn intel_750_pcie() -> DeviceProfile {
    DeviceProfile {
        name: "intel-750-pcie",
        kind: DeviceKind::PcieFlash,
        capacity_pages: 12 << 18, // 12 GiB simulated (400 GB physical / ~32)
        channels: 18,
        read_lat_ns: 75_000,
        prog_lat_ns: 900_000,
        erase_lat_ns: 2_500_000,
        pages_per_block: 64,
        overprovision: 0.20,
        write_buffer_pages: 8192, // 32 MiB DRAM buffer
        buf_insert_ns: 3_000,
        drain_ways: 64,         // sustained 4 KiB random ≈ 280 MB/s
        drain_ways_seq: 220,    // sustained sequential ≈ 900 MB/s
        bus_ns_per_page: 1_400, // ~2.9 GB/s PCIe 3.0 x4
        bus_fixed_ns: 3_000,    // NVMe command overhead
    }
}

/// Intel Optane 900P-class 3D XPoint SSD.
///
/// Anchors: raw mixed 4-KiB throughput ≈ 408 kop/s @ 8 threads (Fig. 1);
/// read ≈ write latency ≈ 10–20 µs; no GC, no erase, no write buffer.
pub fn optane_900p() -> DeviceProfile {
    DeviceProfile {
        name: "optane-900p",
        kind: DeviceKind::XPoint,
        capacity_pages: 9 << 18, // 9 GiB simulated (280 GB physical / ~32)
        channels: 7,
        read_lat_ns: 12_000,
        prog_lat_ns: 12_000,
        erase_lat_ns: 0,
        pages_per_block: 0,
        overprovision: 0.0,
        write_buffer_pages: 0,
        buf_insert_ns: 0,
        drain_ways: 0,
        drain_ways_seq: 0,
        bus_ns_per_page: 1_400,
        bus_fixed_ns: 3_000,
    }
}

/// Byte-addressable NVM (the paper emulates this with tmpfs in DRAM for the
/// WAL-relocation case study, Section V-C).
pub fn nvm_dram() -> DeviceProfile {
    DeviceProfile {
        name: "nvm-dram",
        kind: DeviceKind::Nvm,
        capacity_pages: 1 << 18, // 1 GiB
        channels: 16,
        read_lat_ns: 200,
        prog_lat_ns: 300,
        erase_lat_ns: 0,
        pages_per_block: 0,
        overprovision: 0.0,
        write_buffer_pages: 0,
        buf_insert_ns: 0,
        drain_ways: 0,
        drain_ways_seq: 0,
        bus_ns_per_page: 400, // ~10 GB/s
        bus_fixed_ns: 100,
    }
}

/// The three SSD profiles the paper compares, in presentation order
/// (SATA flash, PCIe flash, 3D XPoint).
pub fn paper_devices() -> Vec<DeviceProfile> {
    vec![intel_530_sata(), intel_750_pcie(), optane_900p()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_invariants() {
        for p in paper_devices().into_iter().chain([nvm_dram()]) {
            assert!(p.capacity_pages > 0, "{}", p.name);
            assert!(p.channels > 0, "{}", p.name);
            assert!(p.read_lat_ns > 0, "{}", p.name);
            if p.has_ftl() {
                assert!(p.write_buffer_pages > 0, "{}", p.name);
                assert!(p.drain_ways > 0, "{}", p.name);
                assert!(p.erase_lat_ns > 0, "{}", p.name);
                assert!(p.overprovision > 0.0, "{}", p.name);
            }
        }
    }

    #[test]
    fn latency_orderings_match_paper() {
        let sata = intel_530_sata();
        let pcie = intel_750_pcie();
        let xp = optane_900p();
        let nvm = nvm_dram();
        // Read latency: SATA > PCIe > XPoint > NVM.
        assert!(sata.read_lat_ns + sata.bus_fixed_ns > pcie.read_lat_ns + pcie.bus_fixed_ns);
        assert!(pcie.read_lat_ns > xp.read_lat_ns);
        assert!(xp.read_lat_ns > nvm.read_lat_ns);
        // XPoint has no read/write disparity; flash does.
        assert_eq!(xp.read_lat_ns, xp.prog_lat_ns);
        assert!(sata.prog_lat_ns > 5 * sata.read_lat_ns);
    }

    #[test]
    fn builders_adjust_fields() {
        let p = optane_900p().with_capacity_bytes(1 << 30).with_channels(3);
        assert_eq!(p.capacity_pages, 1 << 18);
        assert_eq!(p.channels, 3);
    }
}
